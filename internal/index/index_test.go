package index

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/storage"
)

func buildTable(t *testing.T, vals []int64, withNull bool) *storage.Table {
	t.Helper()
	tbl := storage.NewTable("t", storage.MustSchema(
		storage.ColumnDef{Name: "k", Type: storage.TypeInt64},
		storage.ColumnDef{Name: "v", Type: storage.TypeInt64},
	))
	for i, v := range vals {
		tbl.MustAppendRow(storage.Int64(v), storage.Int64(int64(i)))
	}
	if withNull {
		tbl.MustAppendRow(storage.Null(storage.TypeInt64), storage.Int64(-1))
	}
	return tbl
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, "k"); err == nil {
		t.Error("nil table should error")
	}
	tbl := buildTable(t, []int64{1}, false)
	if _, err := Build(tbl, "missing"); err == nil {
		t.Error("missing column should error")
	}
}

func TestLookupEquality(t *testing.T) {
	tbl := buildTable(t, []int64{5, 3, 5, 1, 5, 2}, true)
	ix, err := Build(tbl, "k")
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 6 {
		t.Errorf("Len = %d, want 6 (NULL excluded)", ix.Len())
	}
	rows := ix.Lookup(storage.Int64(5))
	if len(rows) != 3 {
		t.Fatalf("Lookup(5) = %v", rows)
	}
	for _, r := range rows {
		if tbl.Value(r, 0).Int() != 5 {
			t.Errorf("row %d has key %v", r, tbl.Value(r, 0))
		}
	}
	if got := ix.Lookup(storage.Int64(99)); got != nil {
		t.Errorf("missing key = %v", got)
	}
	if got := ix.Lookup(storage.Null(storage.TypeInt64)); got != nil {
		t.Errorf("NULL probe must match nothing: %v", got)
	}
	if ix.Table() != tbl || ix.Column() != 0 {
		t.Error("accessors wrong")
	}
}

func TestLookupRange(t *testing.T) {
	tbl := buildTable(t, []int64{10, 20, 30, 40, 50}, false)
	ix, _ := Build(tbl, "k")
	keysOf := func(rows []int) []int64 {
		out := make([]int64, len(rows))
		for i, r := range rows {
			out[i] = tbl.Value(r, 0).Int()
		}
		sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
		return out
	}
	got := keysOf(ix.LookupRange(storage.Int64(20), storage.Int64(40), true, true))
	if len(got) != 3 || got[0] != 20 || got[2] != 40 {
		t.Errorf("[20,40] = %v", got)
	}
	got = keysOf(ix.LookupRange(storage.Int64(20), storage.Int64(40), false, false))
	if len(got) != 1 || got[0] != 30 {
		t.Errorf("(20,40) = %v", got)
	}
	got = keysOf(ix.LookupRange(Unbounded, storage.Int64(25), true, true))
	if len(got) != 2 {
		t.Errorf("(-inf,25] = %v", got)
	}
	got = keysOf(ix.LookupRange(storage.Int64(45), Unbounded, true, true))
	if len(got) != 1 || got[0] != 50 {
		t.Errorf("[45,inf) = %v", got)
	}
	if ix.LookupRange(storage.Int64(41), storage.Int64(49), true, true) != nil {
		t.Error("empty range should be nil")
	}
}

func TestEmptyIndex(t *testing.T) {
	tbl := buildTable(t, nil, false)
	ix, err := Build(tbl, "k")
	if err != nil {
		t.Fatal(err)
	}
	if ix.Lookup(storage.Int64(1)) != nil || ix.Len() != 0 {
		t.Error("empty index should match nothing")
	}
}

// Property: Lookup agrees with a linear scan for random data.
func TestLookupMatchesScanProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(200)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(20))
		}
		tbl := buildTable(t, vals, trial%2 == 0)
		ix, err := Build(tbl, "k")
		if err != nil {
			t.Fatal(err)
		}
		for probe := int64(-1); probe <= 21; probe += 3 {
			want := 0
			for _, v := range vals {
				if v == probe {
					want++
				}
			}
			if got := len(ix.Lookup(storage.Int64(probe))); got != want {
				t.Fatalf("trial %d probe %d: got %d rows, want %d", trial, probe, got, want)
			}
		}
	}
}
