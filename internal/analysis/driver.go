package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Schedule expands roots into the full analyzer schedule: the transitive
// Requires closure, topologically sorted so every analyzer runs after its
// prerequisites, deterministically (ties broken by name). It rejects
// duplicate analyzer names, nil entries, and Requires cycles — the
// registry test in internal/analyzers pins all three properties for the
// shipped suite.
func Schedule(roots []*Analyzer) ([]*Analyzer, error) {
	var (
		out    []*Analyzer
		state  = make(map[*Analyzer]int) // 0 unvisited, 1 visiting, 2 done
		byName = make(map[string]*Analyzer)
		visit  func(a *Analyzer, path []string) error
		sorted = func(as []*Analyzer) []*Analyzer {
			cp := append([]*Analyzer(nil), as...)
			sort.Slice(cp, func(i, j int) bool { return cp[i].Name < cp[j].Name })
			return cp
		}
	)
	visit = func(a *Analyzer, path []string) error {
		if a == nil {
			return fmt.Errorf("nil analyzer in Requires of %v", path)
		}
		if prev, ok := byName[a.Name]; ok && prev != a {
			return fmt.Errorf("two analyzers share the name %q", a.Name)
		}
		byName[a.Name] = a
		switch state[a] {
		case 2:
			return nil
		case 1:
			return fmt.Errorf("analyzer requirement cycle: %v -> %s", path, a.Name)
		}
		state[a] = 1
		for _, req := range sorted(a.Requires) {
			if err := visit(req, append(path, a.Name)); err != nil {
				return err
			}
		}
		state[a] = 2
		out = append(out, a)
		return nil
	}
	for _, a := range sorted(roots) {
		if err := visit(a, nil); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Finding is one diagnostic, attributed to its analyzer and package.
type Finding struct {
	// Package is the import path of the package the finding is in.
	Package string
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Pos is the resolved source position.
	Pos token.Position
	// Message states the contract violation.
	Message string
}

// Malfunction records an analyzer failure (a Run error or panic) —
// distinct from findings: a malfunctioning analyzer means the run's
// verdict on its invariant is unknown, which cmd/elslint surfaces as exit
// status 2 rather than 1.
type Malfunction struct {
	// Package is the package being analyzed when the analyzer failed.
	Package string
	// Analyzer is the failing analyzer's name.
	Analyzer string
	// Err describes the failure.
	Err string
}

// runProtected applies one analyzer to one pass, converting panics into
// malfunction errors so a crashing checker cannot take down the whole
// run (the other eight analyzers' verdicts still count).
func runProtected(a *Analyzer, pass *Pass) (result any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return a.Run(pass)
}

// SortPackages orders pkgs dependency-first among themselves (imports
// before importers), with deterministic ties (import-path order). The
// ordering is what makes single-pass fact flow sound: by the time a
// package is analyzed, every fact its dependencies export is already in
// the database.
func SortPackages(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	indeg := make(map[string]int, len(pkgs))
	dependents := make(map[string][]string, len(pkgs))
	for _, p := range pkgs {
		if _, ok := indeg[p.Path]; !ok {
			indeg[p.Path] = 0
		}
		for _, imp := range p.Types.Imports() {
			if _, ours := byPath[imp.Path()]; ours {
				indeg[p.Path]++
				dependents[imp.Path()] = append(dependents[imp.Path()], p.Path)
			}
		}
	}
	ready := make([]string, 0, len(pkgs))
	for path, d := range indeg {
		if d == 0 {
			ready = append(ready, path)
		}
	}
	sort.Strings(ready)
	out := make([]*Package, 0, len(pkgs))
	for len(ready) > 0 {
		path := ready[0]
		ready = ready[1:]
		out = append(out, byPath[path])
		next := append([]string(nil), dependents[path]...)
		sort.Strings(next)
		for _, dep := range next {
			if indeg[dep]--; indeg[dep] == 0 {
				ready = append(ready, dep)
				sort.Strings(ready)
			}
		}
	}
	// An import cycle among the analyzed packages is impossible in a
	// compiling module; if type information was somehow inconsistent, fall
	// back to appending the leftovers in path order rather than dropping
	// them.
	if len(out) < len(pkgs) {
		missing := make([]string, 0)
		for path, d := range indeg {
			if d > 0 {
				missing = append(missing, path)
			}
		}
		sort.Strings(missing)
		for _, path := range missing {
			out = append(out, byPath[path])
		}
	}
	return out
}

// RunPackages applies the analyzer schedule derived from roots to every
// package, dependency-first, threading facts through facts (pass a fresh
// NewFactSet(schedule), or one pre-seeded from dependency vetx files in
// the vettool protocol). Packages are type-checked once, before this call
// — the schedule shares each Package across all analyzers. It returns
// every finding and every malfunction; the error covers driver-level
// problems (schedule cycles) only.
func RunPackages(pkgs []*Package, roots []*Analyzer, facts *FactSet) ([]Finding, []Malfunction, error) {
	schedule, err := Schedule(roots)
	if err != nil {
		return nil, nil, err
	}
	var (
		findings []Finding
		mals     []Malfunction
	)
	for _, pkg := range SortPackages(pkgs) {
		results := make(map[*Analyzer]any, len(schedule))
		failed := make(map[*Analyzer]bool)
		for _, a := range schedule {
			resultOf := make(map[*Analyzer]any, len(a.Requires))
			skip := false
			for _, req := range a.Requires {
				if failed[req] {
					skip = true // prerequisite malfunctioned; its facts/results are unreliable
					break
				}
				resultOf[req] = results[req]
			}
			if skip {
				failed[a] = true
				mals = append(mals, Malfunction{Package: pkg.Path, Analyzer: a.Name,
					Err: "skipped: a required analyzer malfunctioned"})
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				ResultOf:  resultOf,
				facts:     facts,
			}
			pass.Report = func(d Diagnostic) {
				findings = append(findings, Finding{
					Package:  pkg.Path,
					Analyzer: a.Name,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			res, err := runProtected(a, pass)
			if err != nil {
				failed[a] = true
				mals = append(mals, Malfunction{Package: pkg.Path, Analyzer: a.Name, Err: err.Error()})
				continue
			}
			results[a] = res
		}
	}
	return findings, mals, nil
}
