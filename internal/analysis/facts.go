package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"sync"
)

// A Fact is a serializable message an analyzer attaches to a package or to
// one of its objects while analyzing it, for later consumption when a
// downstream package (or a downstream analyzer, via Requires) is analyzed.
// Mirroring x/tools, fact types are pointers to structs and carry the
// AFact marker method; unlike x/tools, facts are namespaced by their Go
// type alone rather than by (analyzer, type), so an analyzer listed in
// another's Requires may import the facts its prerequisite exported (the
// wirecover analyzer reads errtaxonomy's sentinel-set fact this way).
type Fact interface {
	AFact()
}

// PackageFact pairs one package-level fact with the package that exported
// it, for FactSet/Pass.AllPackageFacts enumeration.
type PackageFact struct {
	// Path is the import path of the exporting package.
	Path string
	// Fact is a freshly decoded copy of the fact.
	Fact Fact
}

// factKey addresses one fact: the exporting package, the object within it
// ("" for package-level facts), and the registered fact type.
type factKey struct {
	pkg string
	obj string
	typ string
}

// FactSet is the driver's fact database. Facts are stored gob-encoded —
// every export round-trips through gob immediately, so a fact type that
// does not serialize fails loudly at the export site (not when it first
// crosses a process boundary via a vetx file), and every import decodes a
// fresh copy, so mutation by one consumer can never corrupt another's
// view.
type FactSet struct {
	//lockorder:level 90
	mu    sync.Mutex
	types map[string]reflect.Type
	facts map[factKey][]byte
}

// NewFactSet returns an empty fact database with the fact types of every
// analyzer in schedule registered.
func NewFactSet(schedule []*Analyzer) *FactSet {
	fs := &FactSet{
		types: make(map[string]reflect.Type),
		facts: make(map[factKey][]byte),
	}
	for _, a := range schedule {
		for _, f := range a.FactTypes {
			fs.register(f)
		}
	}
	return fs
}

// typeName returns the registration name of a fact value's type,
// qualified by the declaring package so fact types from different
// analyzer packages can never collide.
func typeName(f Fact) string {
	t := reflect.TypeOf(f)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.PkgPath() + "." + t.Name()
}

func (fs *FactSet) register(f Fact) {
	t := reflect.TypeOf(f)
	if t.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("fact type %T must be a pointer to a struct", f))
	}
	fs.types[typeName(f)] = t
}

// export validates, encodes, and stores one fact.
func (fs *FactSet) export(pkg, obj string, f Fact) error {
	name := typeName(f)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.types[name]; !ok {
		return fmt.Errorf("fact type %T is not declared in any scheduled analyzer's FactTypes", f)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).EncodeValue(reflect.ValueOf(f).Elem()); err != nil {
		return fmt.Errorf("gob-encoding fact %T: %v", f, err)
	}
	fs.facts[factKey{pkg, obj, name}] = buf.Bytes()
	return nil
}

// importInto decodes the addressed fact into f, reporting whether it was
// present.
func (fs *FactSet) importInto(pkg, obj string, f Fact) (bool, error) {
	name := typeName(f)
	fs.mu.Lock()
	data, ok := fs.facts[factKey{pkg, obj, name}]
	fs.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).DecodeValue(reflect.ValueOf(f).Elem()); err != nil {
		return false, fmt.Errorf("gob-decoding fact %s for %s.%s: %v", name, pkg, obj, err)
	}
	return true, nil
}

// AllPackageFacts decodes every package-level fact in the set, sorted by
// package path then fact type for deterministic consumers (the lock-order
// DOT artifact diffs stably across runs).
func (fs *FactSet) AllPackageFacts() []PackageFact {
	fs.mu.Lock()
	keys := make([]factKey, 0, len(fs.facts))
	for k := range fs.facts {
		if k.obj == "" {
			keys = append(keys, k)
		}
	}
	fs.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pkg != keys[j].pkg {
			return keys[i].pkg < keys[j].pkg
		}
		return keys[i].typ < keys[j].typ
	})
	var out []PackageFact
	for _, k := range keys {
		t := fs.types[k.typ]
		f := reflect.New(t.Elem()).Interface().(Fact)
		if ok, err := fs.importInto(k.pkg, "", f); err == nil && ok {
			out = append(out, PackageFact{Path: k.pkg, Fact: f})
		}
	}
	return out
}

// ObjectKey names an object within its package for fact addressing:
// "Name" for package-level functions and variables, "Type.Method" for
// methods (pointer and value receivers collapse to the same key). The key
// is stable across processes, which position-based identity is not — it
// is what lets vetx fact files written while analyzing one package be
// resolved against objects re-imported from export data in another.
func ObjectKey(obj types.Object) string {
	if fn, ok := obj.(*types.Func); ok {
		sig, ok := fn.Type().(*types.Signature)
		if ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return named.Obj().Name() + "." + fn.Name()
			}
		}
	}
	return obj.Name()
}

// wireFact is the serialized form of one fact for vetx files.
type wireFact struct {
	Pkg, Obj, Type string
	Data           []byte
}

// Encode serializes the whole fact set (deterministically ordered) for a
// vetx file, so facts flow across the per-package process boundaries of
// the go vet -vettool protocol exactly as they flow in memory in the
// standalone driver.
func (fs *FactSet) Encode() ([]byte, error) {
	fs.mu.Lock()
	wire := make([]wireFact, 0, len(fs.facts))
	for k, data := range fs.facts {
		wire = append(wire, wireFact{Pkg: k.pkg, Obj: k.obj, Type: k.typ, Data: data})
	}
	fs.mu.Unlock()
	sort.Slice(wire, func(i, j int) bool {
		a, b := wire[i], wire[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Obj != b.Obj {
			return a.Obj < b.Obj
		}
		return a.Type < b.Type
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return nil, fmt.Errorf("encoding fact set: %v", err)
	}
	return buf.Bytes(), nil
}

// Decode merges a serialized fact set (a dependency's vetx file) into fs.
// Facts of unregistered types are skipped, not rejected: a dependency may
// have been analyzed by a larger analyzer suite than this run schedules.
func (fs *FactSet) Decode(data []byte) error {
	if len(data) == 0 {
		return nil // empty vetx: dependency exported nothing
	}
	var wire []wireFact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&wire); err != nil {
		return fmt.Errorf("decoding fact set: %v", err)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, w := range wire {
		if _, ok := fs.types[w.Type]; !ok {
			continue
		}
		fs.facts[factKey{w.Pkg, w.Obj, w.Type}] = w.Data
	}
	return nil
}
