package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed, and type-checked package ready for
// analysis.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the package's source directory.
	Dir string
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files are the parsed non-test Go files (test files are not part of
	// the package proper; the vettool path analyzes them separately).
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checking results.
	Info *types.Info
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
}

// ExportIndex maps import paths to compiled export-data files, the key to
// type-checking packages offline: instead of recursively type-checking
// every dependency from source, dependencies are imported from the export
// data the go toolchain already produced (`go list -export` populates the
// build cache as needed, with no network access).
type ExportIndex struct {
	exports map[string]string
}

// NewExportIndex builds an index from an explicit path→file map (the
// vettool protocol hands one over in vet.cfg).
func NewExportIndex(exports map[string]string) *ExportIndex {
	return &ExportIndex{exports: exports}
}

// Lookup returns a reader of the export data for path.
func (ix *ExportIndex) Lookup(path string) (io.ReadCloser, error) {
	f, ok := ix.exports[path]
	if !ok || f == "" {
		return nil, fmt.Errorf("no export data for package %q", path)
	}
	return os.Open(f)
}

// Importer returns a types.Importer that resolves imports through the
// index.
func (ix *ExportIndex) Importer(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "gc", ix.Lookup)
}

// goList runs `go list -deps -export -json` in dir for the given patterns
// and decodes the package stream.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Module",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ResolveExports builds an ExportIndex covering the given import-path
// patterns and their transitive dependencies.
func ResolveExports(dir string, patterns ...string) (*ExportIndex, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	ix := &ExportIndex{exports: make(map[string]string, len(pkgs))}
	for _, p := range pkgs {
		if p.Export != "" {
			ix.exports[p.ImportPath] = p.Export
		}
	}
	return ix, nil
}

// newInfo allocates a fully populated types.Info.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// CheckFiles parses and type-checks one package from explicit file paths,
// resolving imports through imp. Used by the standalone loader, the
// analysistest harness, and the vettool protocol alike.
func CheckFiles(fset *token.FileSet, path string, filenames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	dir := ""
	if len(filenames) > 0 {
		dir = filepath.Dir(filenames[0])
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// Load lists, parses, and type-checks the packages matching patterns
// (relative to dir, e.g. "./..."), skipping packages that were pulled in
// only as dependencies. It is the standalone elslint loader: everything
// resolves through the local toolchain and build cache, offline.
func Load(dir string, patterns ...string) ([]*Package, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	ix := &ExportIndex{exports: make(map[string]string, len(pkgs))}
	for _, p := range pkgs {
		if p.Export != "" {
			ix.exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := ix.Importer(fset)
	var out []*Package
	for _, p := range pkgs {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		filenames := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			filenames[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := CheckFiles(fset, p.ImportPath, filenames, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// Run applies one analyzer to one package in isolation — no Requires, no
// facts — and returns its diagnostics. The facts-capable entry point is
// RunPackages; this survives for one-off programmatic use of a
// self-contained checker.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	if len(a.Requires) > 0 {
		return nil, fmt.Errorf("%s requires other analyzers; use RunPackages", a.Name)
	}
	findings, mals, err := RunPackages([]*Package{pkg}, []*Analyzer{a}, NewFactSet([]*Analyzer{a}))
	if err != nil {
		return nil, err
	}
	if len(mals) > 0 {
		return nil, fmt.Errorf("%s: %s: %s", mals[0].Analyzer, mals[0].Package, mals[0].Err)
	}
	var diags []Diagnostic
	for _, f := range findings {
		diags = append(diags, Diagnostic{Pos: posOf(pkg.Fset, f.Pos), Message: f.Message})
	}
	return diags, nil
}

// posOf maps a resolved position back to a token.Pos in fset (best
// effort; diagnostics keep their resolved file:line either way).
func posOf(fset *token.FileSet, pos token.Position) token.Pos {
	var found token.Pos
	fset.Iterate(func(f *token.File) bool {
		if f.Name() == pos.Filename && pos.Offset < f.Size() {
			found = f.Pos(pos.Offset)
			return false
		}
		return true
	})
	return found
}
