// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis driver API, just large enough to host the
// elslint invariant checkers (internal/analyzers) and their analysistest
// suites without adding a module dependency.
//
// The shapes mirror x/tools deliberately — Analyzer{Name, Doc, Run},
// Pass{Fset, Files, Pkg, TypesInfo, Report} — so every analyzer written
// against this package ports to the real go/analysis API verbatim if the
// dependency is ever vendored. Facts, analyzer requirements, and result
// passing are intentionally omitted: the elslint suite is five independent
// single-package checkers.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -json output.
	Name string
	// Doc states the enforced invariant, first line first.
	Doc string
	// Run applies the analyzer to one package. It reports findings through
	// Pass.Report/Reportf and returns an error only for analyzer
	// malfunctions, never for findings.
	Run func(*Pass) (any, error)
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files are the package's parsed files (comments included).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checking results for Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Pos
	// Message states the contract violation and the expected idiom.
	Message string
}

// IsTestFile reports whether file was parsed from a _test.go file. The
// elslint contracts deliberately exempt tests (tests spawn goroutines,
// build root contexts, and fabricate errors by design).
func IsTestFile(fset *token.FileSet, file *ast.File) bool {
	return strings.HasSuffix(fset.Position(file.Pos()).Filename, "_test.go")
}

// PathHasSuffix reports whether the import path equals suffix or ends with
// "/"+suffix. Analyzers match packages by path suffix so that their
// analysistest testdata packages (loaded under short synthetic paths such
// as "internal/workpool") exercise the same allow/deny decisions as the
// real module packages ("repro/internal/workpool").
func PathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
