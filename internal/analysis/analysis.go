// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis driver API, just large enough to host the
// elslint invariant checkers (internal/analyzers) and their analysistest
// suites without adding a module dependency.
//
// The shapes mirror x/tools deliberately — Analyzer{Name, Doc, Requires,
// FactTypes, Run}, Pass{Fset, Files, Pkg, TypesInfo, ResultOf, Report,
// ExportObjectFact, ImportObjectFact, ExportPackageFact,
// ImportPackageFact} — so every analyzer written against this package
// ports to the real go/analysis API near-verbatim if the dependency is
// ever vendored. The driver (RunPackages) applies a Requires-ordered
// analyzer schedule to packages in `go list` dependency order, with
// gob-serialized facts flowing from each package to its dependents; see
// facts.go for the one deliberate deviation from x/tools (facts are
// namespaced by type, not by analyzer, so a dependent analyzer can read
// its prerequisite's facts).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -json output.
	Name string
	// Doc states the enforced invariant, first line first.
	Doc string
	// Requires lists analyzers that must run on each package before this
	// one; their results for the same package arrive via Pass.ResultOf and
	// their facts (for this package's dependencies) are importable. The
	// driver schedules the transitive closure and rejects cycles.
	Requires []*Analyzer
	// FactTypes declares the fact types this analyzer exports, each a
	// pointer to a gob-serializable struct. An analyzer with no declared
	// fact types may still import facts declared by its Requires.
	FactTypes []Fact
	// Run applies the analyzer to one package. It reports findings through
	// Pass.Report/Reportf and returns an error only for analyzer
	// malfunctions, never for findings.
	Run func(*Pass) (any, error)
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files are the package's parsed files (comments included).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checking results for Files.
	TypesInfo *types.Info
	// ResultOf holds the results the Analyzer.Requires analyzers returned
	// for this same package.
	ResultOf map[*Analyzer]any
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)

	facts *FactSet
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ExportObjectFact attaches fact to obj, which must belong to the package
// being analyzed. The fact is gob-encoded immediately; a non-serializable
// fact panics here (the driver converts the panic into an analyzer
// malfunction) rather than corrupting a vetx file later.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts == nil {
		panic(fmt.Sprintf("%s: ExportObjectFact outside a facts-capable driver run", p.Analyzer.Name))
	}
	if obj == nil || obj.Pkg() == nil || obj.Pkg() != p.Pkg {
		panic(fmt.Sprintf("%s: ExportObjectFact: object %v is not from package %s", p.Analyzer.Name, obj, p.Pkg.Path()))
	}
	if err := p.facts.export(p.Pkg.Path(), ObjectKey(obj), fact); err != nil {
		panic(fmt.Sprintf("%s: %v", p.Analyzer.Name, err))
	}
}

// ImportObjectFact decodes the fact of fact's type attached to obj (by
// this package's run or by any dependency's) into fact, reporting whether
// one was found.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.facts == nil || obj == nil || obj.Pkg() == nil {
		return false
	}
	ok, err := p.facts.importInto(obj.Pkg().Path(), ObjectKey(obj), fact)
	if err != nil {
		panic(fmt.Sprintf("%s: %v", p.Analyzer.Name, err))
	}
	return ok
}

// ExportPackageFact attaches fact to the package being analyzed.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.facts == nil {
		panic(fmt.Sprintf("%s: ExportPackageFact outside a facts-capable driver run", p.Analyzer.Name))
	}
	if err := p.facts.export(p.Pkg.Path(), "", fact); err != nil {
		panic(fmt.Sprintf("%s: %v", p.Analyzer.Name, err))
	}
}

// ImportPackageFact decodes the package-level fact of fact's type
// exported by pkg into fact, reporting whether one was found.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	if p.facts == nil || pkg == nil {
		return false
	}
	ok, err := p.facts.importInto(pkg.Path(), "", fact)
	if err != nil {
		panic(fmt.Sprintf("%s: %v", p.Analyzer.Name, err))
	}
	return ok
}

// AllPackageFacts returns every package-level fact currently in the fact
// database (this package's and all previously analyzed packages'), in
// deterministic order. The lockorder analyzer assembles the global
// lock-acquisition graph from these.
func (p *Pass) AllPackageFacts() []PackageFact {
	if p.facts == nil {
		return nil
	}
	return p.facts.AllPackageFacts()
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Pos
	// Message states the contract violation and the expected idiom.
	Message string
}

// IsTestFile reports whether file was parsed from a _test.go file. The
// elslint contracts deliberately exempt tests (tests spawn goroutines,
// build root contexts, and fabricate errors by design).
func IsTestFile(fset *token.FileSet, file *ast.File) bool {
	return strings.HasSuffix(fset.Position(file.Pos()).Filename, "_test.go")
}

// PathHasSuffix reports whether the import path equals suffix or ends with
// "/"+suffix. Analyzers match packages by path suffix so that their
// analysistest testdata packages (loaded under short synthetic paths such
// as "internal/workpool") exercise the same allow/deny decisions as the
// real module packages ("repro/internal/workpool").
func PathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
