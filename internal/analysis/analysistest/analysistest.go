// Package analysistest runs an analyzer over testdata packages and checks
// its diagnostics against expectations written in the sources, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// Each expectation is a comment of the form
//
//	// want "regexp" "another regexp"
//
// on the line where a diagnostic is expected. Every diagnostic must match
// exactly one expectation on its line and every expectation must be
// consumed, so tests pin both that violations are caught and that accepted
// idioms stay silent.
//
// Testdata layout follows the x/tools convention: the files of package
// pattern P live in testdata/src/P/ relative to the test. Testdata may
// import standard-library and repro/... packages; imports are resolved
// offline through the build cache (see analysis.ResolveExports).
package analysistest

import (
	"fmt"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run applies a to each testdata package named by patterns and reports
// mismatches between diagnostics and // want expectations through t.
func Run(t *testing.T, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	for _, pat := range patterns {
		runPkg(t, a, pat)
	}
}

func runPkg(t *testing.T, a *analysis.Analyzer, pattern string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(pattern))
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("%s: no testdata sources in %s (%v)", pattern, dir, err)
	}
	sort.Strings(names)

	imp, err := testdataImporter(names)
	if err != nil {
		t.Fatalf("%s: resolving imports: %v", pattern, err)
	}
	fset := token.NewFileSet()
	pkg, err := analysis.CheckFiles(fset, pattern, names, imp)
	if err != nil {
		t.Fatalf("%s: %v", pattern, err)
	}

	diags, err := analysis.Run(a, pkg)
	if err != nil {
		t.Fatalf("%s: %v", pattern, err)
	}

	expects := collectExpectations(t, fset, pkg)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := posKey{filepath.Base(pos.Filename), pos.Line}
		matched := false
		for _, e := range expects[key] {
			if !e.used && e.re.MatchString(d.Message) {
				e.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s: %s", pattern, pos, d.Message)
		}
	}
	for key, es := range expects {
		for _, e := range es {
			if !e.used {
				t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none",
					pattern, key.file, key.line, e.re.String())
			}
		}
	}
}

// importerFunc adapts a function to types.Importer; the nil function
// serves import-free testdata packages.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) {
	if f == nil {
		return nil, fmt.Errorf("testdata package imports nothing, cannot import %q", path)
	}
	return f(path)
}

// testdataImporter resolves the testdata files' imports (and their
// transitive dependencies) into a types.Importer backed by export data.
func testdataImporter(names []string) (importerFunc, error) {
	seen := map[string]bool{}
	ifset := token.NewFileSet()
	for _, name := range names {
		f, err := parser.ParseFile(ifset, name, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, im := range f.Imports {
			if p, err := strconv.Unquote(im.Path.Value); err == nil {
				seen[p] = true
			}
		}
	}
	if len(seen) == 0 {
		return nil, nil
	}
	patterns := make([]string, 0, len(seen))
	for p := range seen {
		patterns = append(patterns, p)
	}
	sort.Strings(patterns)
	wd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	ix, err := analysis.ResolveExports(wd, patterns...)
	if err != nil {
		return nil, err
	}
	return ix.Importer(token.NewFileSet()).Import, nil
}

type posKey struct {
	file string
	line int
}

type expectation struct {
	re   *regexp.Regexp
	used bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// collectExpectations scans every comment of the package for // want
// clauses and indexes them by (file, line).
func collectExpectations(t *testing.T, fset *token.FileSet, pkg *analysis.Package) map[posKey][]*expectation {
	t.Helper()
	out := make(map[posKey][]*expectation)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := posKey{filepath.Base(pos.Filename), pos.Line}
				for _, pat := range splitQuoted(m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					out[key] = append(out[key], &expectation{re: re})
				}
			}
		}
	}
	return out
}

// splitQuoted extracts the double-quoted or backquoted regexps from a want
// clause tail such as `"first" "second"`.
func splitQuoted(s string) []string {
	var out []string
	for {
		s = strings.TrimLeft(s, " \t")
		if s == "" {
			return out
		}
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '"' && s[i-1] != '\\' {
					end = i
					break
				}
			}
			if end < 0 {
				return out
			}
			if unq, err := strconv.Unquote(s[:end+1]); err == nil {
				out = append(out, unq)
			}
			s = s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return out
			}
			out = append(out, s[1:1+end])
			s = s[2+end:]
		default:
			return out
		}
	}
}
