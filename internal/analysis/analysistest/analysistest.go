// Package analysistest runs an analyzer over testdata packages and checks
// its diagnostics against expectations written in the sources, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// Each expectation is a comment of the form
//
//	// want "regexp" "another regexp"
//
// on the line where a diagnostic is expected. Every diagnostic must match
// exactly one expectation on its line and every expectation must be
// consumed, so tests pin both that violations are caught and that accepted
// idioms stay silent.
//
// Testdata layout follows the x/tools convention: the files of package
// pattern P live in testdata/src/P/ relative to the test, and a testdata
// package may import another testdata package by its pattern path —
// imports resolve into testdata/src/ first, which is how multi-package
// fixtures exercise cross-package facts (a lockorder fixture's dependent
// package imports the package whose locks it misorders). Imports with no
// testdata directory (standard library, repro/...) are resolved offline
// through the build cache (see analysis.ResolveExports; the resolution is
// memoized process-wide, so a test file with many Run calls pays for one
// `go list` only).
//
// Run drives the facts-capable driver: the analyzer's Requires closure is
// scheduled over every loaded testdata package in dependency order with a
// shared fact database, then the named analyzer's diagnostics — from all
// loaded packages — are matched against the want expectations.
package analysistest

import (
	"fmt"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

// Run applies a (preceded by its Requires closure, sharing facts) to each
// testdata package named by patterns plus their testdata imports, and
// reports mismatches between a's diagnostics and // want expectations
// through t.
func Run(t *testing.T, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	ld := &loader{
		fset: token.NewFileSet(),
		pkgs: make(map[string]*analysis.Package),
		busy: make(map[string]bool),
	}
	for _, pat := range patterns {
		if _, err := ld.load(pat); err != nil {
			t.Fatalf("%s: %v", pat, err)
		}
	}
	pkgs := make([]*analysis.Package, 0, len(ld.pkgs))
	for _, pkg := range ld.pkgs {
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })

	roots := []*analysis.Analyzer{a}
	schedule, err := analysis.Schedule(roots)
	if err != nil {
		t.Fatalf("scheduling %s: %v", a.Name, err)
	}
	findings, mals, err := analysis.RunPackages(pkgs, roots, analysis.NewFactSet(schedule))
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	for _, m := range mals {
		t.Fatalf("%s: analyzer %s malfunctioned on %s: %s", a.Name, m.Analyzer, m.Package, m.Err)
	}

	expects := collectExpectations(t, ld.fset, pkgs)
	for _, f := range findings {
		if f.Analyzer != a.Name {
			continue // a prerequisite's diagnostics are not under test
		}
		key := posKey{filepath.Base(f.Pos.Filename), f.Pos.Line}
		matched := false
		for _, e := range expects[key] {
			if !e.used && e.re.MatchString(f.Message) {
				e.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s: %s", f.Package, f.Pos, f.Message)
		}
	}
	for key, es := range expects {
		for _, e := range es {
			if !e.used {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none",
					key.file, key.line, e.re.String())
			}
		}
	}
}

// loader type-checks testdata packages, recursing through testdata-local
// imports and falling back to build-cache export data for everything
// else.
type loader struct {
	fset *token.FileSet
	pkgs map[string]*analysis.Package
	busy map[string]bool // import-cycle guard

	fallbackOnce sync.Once
	fallback     types.Importer
	fallbackErr  error
}

// testdataDir returns the source directory for pattern, or "" if the
// pattern names no testdata package.
func testdataDir(pattern string) string {
	dir := filepath.Join("testdata", "src", filepath.FromSlash(pattern))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return dir
	}
	return ""
}

func (ld *loader) load(pattern string) (*analysis.Package, error) {
	if pkg, ok := ld.pkgs[pattern]; ok {
		return pkg, nil
	}
	if ld.busy[pattern] {
		return nil, fmt.Errorf("testdata import cycle through %q", pattern)
	}
	ld.busy[pattern] = true
	defer delete(ld.busy, pattern)

	dir := testdataDir(pattern)
	if dir == "" {
		return nil, fmt.Errorf("no testdata sources in testdata/src/%s", pattern)
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		return nil, fmt.Errorf("no testdata sources in %s (%v)", dir, err)
	}
	sort.Strings(names)
	pkg, err := analysis.CheckFiles(ld.fset, pattern, names, importerFunc(ld.importPkg))
	if err != nil {
		return nil, err
	}
	ld.pkgs[pattern] = pkg
	return pkg, nil
}

// importPkg resolves one import during type-checking: testdata packages
// load (and analyze later) from source; everything else comes from export
// data.
func (ld *loader) importPkg(path string) (*types.Package, error) {
	if testdataDir(path) != "" {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	ld.fallbackOnce.Do(func() {
		ld.fallback, ld.fallbackErr = sharedExportImporter(ld.fset)
	})
	if ld.fallbackErr != nil {
		return nil, ld.fallbackErr
	}
	return ld.fallback.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// exportMemo caches the `go list -export` resolution per working
// directory for the life of the test process: one go list run per test
// binary, no matter how many analyzers or Run calls share it.
var exportMemo struct {
	sync.Mutex
	byDir map[string]*analysis.ExportIndex
	errs  map[string]error
}

// sharedExportImporter scans the whole testdata tree for non-testdata
// imports and resolves them (and their transitive dependencies) through
// the build cache in a single memoized `go list -export` invocation.
func sharedExportImporter(fset *token.FileSet) (types.Importer, error) {
	wd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	exportMemo.Lock()
	defer exportMemo.Unlock()
	if exportMemo.byDir == nil {
		exportMemo.byDir = make(map[string]*analysis.ExportIndex)
		exportMemo.errs = make(map[string]error)
	}
	if ix, ok := exportMemo.byDir[wd]; ok {
		return ix.Importer(fset), nil
	}
	if err, ok := exportMemo.errs[wd]; ok {
		return nil, err
	}
	patterns, err := externalImports()
	if err != nil {
		exportMemo.errs[wd] = err
		return nil, err
	}
	if len(patterns) == 0 {
		exportMemo.errs[wd] = fmt.Errorf("testdata imports nothing external")
		return nil, exportMemo.errs[wd]
	}
	ix, err := analysis.ResolveExports(wd, patterns...)
	if err != nil {
		exportMemo.errs[wd] = err
		return nil, err
	}
	exportMemo.byDir[wd] = ix
	return ix.Importer(fset), nil
}

// externalImports collects every import path mentioned anywhere under
// testdata/src that is not itself a testdata package.
func externalImports() ([]string, error) {
	seen := make(map[string]bool)
	ifset := token.NewFileSet()
	err := filepath.Walk(filepath.Join("testdata", "src"), func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := parser.ParseFile(ifset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, im := range f.Imports {
			if p, err := strconv.Unquote(im.Path.Value); err == nil && testdataDir(p) == "" {
				seen[p] = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	patterns := make([]string, 0, len(seen))
	for p := range seen {
		patterns = append(patterns, p)
	}
	sort.Strings(patterns)
	return patterns, nil
}

type posKey struct {
	file string
	line int
}

type expectation struct {
	re   *regexp.Regexp
	used bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// collectExpectations scans every comment of every loaded testdata
// package for // want clauses and indexes them by (file, line).
func collectExpectations(t *testing.T, fset *token.FileSet, pkgs []*analysis.Package) map[posKey][]*expectation {
	t.Helper()
	out := make(map[posKey][]*expectation)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					key := posKey{filepath.Base(pos.Filename), pos.Line}
					for _, pat := range splitQuoted(m[1]) {
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
						}
						out[key] = append(out[key], &expectation{re: re})
					}
				}
			}
		}
	}
	return out
}

// splitQuoted extracts the double-quoted or backquoted regexps from a want
// clause tail such as `"first" "second"`.
func splitQuoted(s string) []string {
	var out []string
	for {
		s = strings.TrimLeft(s, " \t")
		if s == "" {
			return out
		}
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '"' && s[i-1] != '\\' {
					end = i
					break
				}
			}
			if end < 0 {
				return out
			}
			if unq, err := strconv.Unquote(s[:end+1]); err == nil {
				out = append(out, unq)
			}
			s = s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return out
			}
			out = append(out, s[1:1+end])
			s = s[2+end:]
		default:
			return out
		}
	}
}
