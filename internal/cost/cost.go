// Package cost provides a Selinger-style page-based cost model for query
// evaluation plans. The absolute numbers are abstract cost units (roughly,
// page reads plus weighted per-tuple CPU); what matters for the
// reproduction is that the model makes the optimizer's plan choice depend
// on the estimated intermediate result sizes, so that bad estimates turn
// into bad plans exactly as in the paper's Section 8 experiment.
package cost

import "math"

// Model holds the cost parameters. The zero value is unusable; use
// DefaultModel.
type Model struct {
	// PageSize is the page size in bytes used to convert row widths into
	// page counts.
	PageSize float64
	// SeqPageCost is the cost of reading one page sequentially.
	SeqPageCost float64
	// CPUTupleCost is the cost of processing one tuple.
	CPUTupleCost float64
	// CPUCompareCost is the cost of one comparison (join predicate check,
	// sort comparison).
	CPUCompareCost float64
}

// DefaultModel returns parameters resembling a classic disk-based system:
// 4 KiB pages, sequential page reads dominating CPU.
func DefaultModel() *Model {
	return &Model{
		PageSize:       4096,
		SeqPageCost:    1.0,
		CPUTupleCost:   0.01,
		CPUCompareCost: 0.005,
	}
}

// Pages converts an estimated row count and width into a page count (at
// least 1 for a non-empty relation).
func (m *Model) Pages(rows float64, width int) float64 {
	if rows <= 0 {
		return 0
	}
	w := float64(width)
	if w <= 0 {
		w = 8
	}
	perPage := math.Floor(m.PageSize / w)
	if perPage < 1 {
		perPage = 1
	}
	return math.Max(1, math.Ceil(rows/perPage))
}

// ScanCost is the cost of one full sequential scan of a relation of the
// given size, applying trivial filters (per-tuple CPU).
func (m *Model) ScanCost(rows float64, width int) float64 {
	return m.Pages(rows, width)*m.SeqPageCost + math.Max(0, rows)*m.CPUTupleCost
}

// SortCost is the cost of sorting rows of the given width:
// read + n·log₂(n) comparisons.
func (m *Model) SortCost(rows float64, width int) float64 {
	if rows <= 1 {
		return m.ScanCost(rows, width)
	}
	return m.ScanCost(rows, width) + rows*math.Log2(rows)*m.CPUCompareCost
}

// NestedLoopCost is the cost of a tuple-at-a-time nested-loops join where
// the inner input is re-evaluated for each outer row (no materialization),
// as in the classic System R formulation: cost(outer) + ‖outer‖·cost(inner
// rescan). innerRescan is the cost of producing the inner once.
func (m *Model) NestedLoopCost(outerCost, outerRows, innerRescan float64) float64 {
	return outerCost + math.Max(0, outerRows)*innerRescan
}

// SortMergeCost is the cost of sorting both inputs and merging them:
// cost(outer) + cost(inner) + sort costs + merge CPU over both inputs.
func (m *Model) SortMergeCost(outerCost, innerCost, outerRows, innerRows float64, outerWidth, innerWidth int) float64 {
	sortO := m.SortCost(outerRows, outerWidth) - m.ScanCost(outerRows, outerWidth)
	sortI := m.SortCost(innerRows, innerWidth) - m.ScanCost(innerRows, innerWidth)
	merge := (math.Max(0, outerRows) + math.Max(0, innerRows)) * m.CPUCompareCost
	return outerCost + innerCost + math.Max(0, sortO) + math.Max(0, sortI) + merge
}

// HashJoinCost is the cost of building a hash table on the inner input and
// probing it with the outer: cost(outer) + cost(inner) + build + probe CPU.
func (m *Model) HashJoinCost(outerCost, innerCost, outerRows, innerRows float64) float64 {
	build := math.Max(0, innerRows) * m.CPUTupleCost * 2
	probe := math.Max(0, outerRows) * m.CPUTupleCost
	return outerCost + innerCost + build + probe
}

// IndexNLCost is the cost of an index nested-loops join: the outer is
// produced once, and each outer row probes an ordered index on the inner
// (one page touch plus a logarithmic search) and fetches its expected
// matches.
func (m *Model) IndexNLCost(outerCost, outerRows, innerRows, matchesPerProbe float64) float64 {
	if outerRows < 0 {
		outerRows = 0
	}
	logN := 1.0
	if innerRows > 2 {
		logN = math.Log2(innerRows)
	}
	probe := m.SeqPageCost + logN*m.CPUCompareCost + math.Max(0, matchesPerProbe)*m.CPUTupleCost
	return outerCost + outerRows*probe
}

// MaterializedScanCost is the cost of re-reading an already materialized
// intermediate result (pages only, no qualification CPU).
func (m *Model) MaterializedScanCost(rows float64, width int) float64 {
	return m.Pages(rows, width) * m.SeqPageCost
}
