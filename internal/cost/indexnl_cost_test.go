package cost

import "testing"

func TestIndexNLCost(t *testing.T) {
	m := DefaultModel()
	// More outer rows cost more.
	if m.IndexNLCost(10, 1000, 100000, 2) <= m.IndexNLCost(10, 10, 100000, 2) {
		t.Error("IndexNL cost should grow with outer rows")
	}
	// More matches per probe cost more.
	if m.IndexNLCost(10, 100, 100000, 50) <= m.IndexNLCost(10, 100, 100000, 1) {
		t.Error("IndexNL cost should grow with matches per probe")
	}
	// Negative estimates clamp.
	if got := m.IndexNLCost(5, -10, 100, -3); got != 5 {
		t.Errorf("clamped cost = %g, want outer cost only", got)
	}
	// Tiny inner avoids the log term going negative.
	if m.IndexNLCost(0, 1, 1, 0) <= 0 {
		t.Error("degenerate inner should still cost a probe")
	}
}

func TestIndexProbeBeatsRescanForSelectiveJoins(t *testing.T) {
	// The design point: for a selective join (few matches per probe) over a
	// big inner, index probes beat both a full rescan per outer row and a
	// full sort of the inner.
	m := DefaultModel()
	outerCost := m.ScanCost(100, 16)
	innerScan := m.ScanCost(1_000_000, 16)
	idx := m.IndexNLCost(outerCost, 100, 1_000_000, 3)
	nl := m.NestedLoopCost(outerCost, 100, innerScan)
	sm := m.SortMergeCost(outerCost, innerScan, 100, 1_000_000, 16, 16)
	if idx >= nl {
		t.Errorf("index (%g) should beat rescan NL (%g)", idx, nl)
	}
	if idx >= sm {
		t.Errorf("index (%g) should beat sort-merge (%g) for a selective probe", idx, sm)
	}
	// But for an unselective join producing huge outputs over a small
	// inner, sort-merge wins.
	idx2 := m.IndexNLCost(outerCost, 100000, 500, 50)
	sm2 := m.SortMergeCost(m.ScanCost(100000, 16), m.ScanCost(500, 16), 100000, 500, 16, 16)
	if sm2 >= idx2 {
		t.Errorf("sort-merge (%g) should beat index probing (%g) when probes dominate", sm2, idx2)
	}
}
