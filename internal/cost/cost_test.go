package cost

import (
	"testing"
	"testing/quick"
)

func TestPages(t *testing.T) {
	m := DefaultModel()
	if m.Pages(0, 8) != 0 {
		t.Error("empty relation has no pages")
	}
	if m.Pages(1, 8) != 1 {
		t.Error("one row occupies one page")
	}
	// 4096/8 = 512 rows per page.
	if m.Pages(512, 8) != 1 || m.Pages(513, 8) != 2 {
		t.Errorf("page math: %g, %g", m.Pages(512, 8), m.Pages(513, 8))
	}
	// Zero width defaults sensibly.
	if m.Pages(100, 0) <= 0 {
		t.Error("zero width should still page")
	}
	// Very wide rows: at least one row per page.
	if m.Pages(10, 100000) != 10 {
		t.Errorf("wide rows: %g", m.Pages(10, 100000))
	}
}

func TestScanCostMonotone(t *testing.T) {
	m := DefaultModel()
	if m.ScanCost(1000, 8) <= m.ScanCost(100, 8) {
		t.Error("scan cost should grow with rows")
	}
	if m.ScanCost(100, 80) <= m.ScanCost(100, 8) {
		t.Error("scan cost should grow with width")
	}
}

func TestSortCost(t *testing.T) {
	m := DefaultModel()
	if m.SortCost(0, 8) != m.ScanCost(0, 8) || m.SortCost(1, 8) != m.ScanCost(1, 8) {
		t.Error("trivial sorts cost a scan")
	}
	if m.SortCost(10000, 8) <= m.ScanCost(10000, 8) {
		t.Error("sorting must cost more than scanning")
	}
}

func TestNestedLoopCost(t *testing.T) {
	m := DefaultModel()
	// The defining property: cost scales with outer rows times inner rescan.
	small := m.NestedLoopCost(10, 10, 100)
	big := m.NestedLoopCost(10, 1000, 100)
	if big <= small {
		t.Error("NL cost must grow with outer rows")
	}
	if got := m.NestedLoopCost(5, 0, 1000); got != 5 {
		t.Errorf("zero outer rows: %g, want outer cost only", got)
	}
	// Negative estimates (possible with broken estimators) clamp to 0.
	if got := m.NestedLoopCost(5, -10, 1000); got != 5 {
		t.Errorf("negative outer rows: %g", got)
	}
}

func TestSortMergeCost(t *testing.T) {
	m := DefaultModel()
	c := m.SortMergeCost(100, 200, 1000, 2000, 8, 8)
	if c <= 300 {
		t.Error("sort-merge must add sort and merge cost on top of inputs")
	}
	// Tiny inputs: no negative sort terms.
	if m.SortMergeCost(1, 1, 0, 0, 8, 8) < 2 {
		t.Error("degenerate sort-merge cost wrong")
	}
}

func TestHashJoinCost(t *testing.T) {
	m := DefaultModel()
	c := m.HashJoinCost(100, 200, 1000, 2000)
	if c <= 300 {
		t.Error("hash join must add build and probe cost")
	}
}

func TestMisestimationFlipsPlanChoice(t *testing.T) {
	// The mechanism behind the paper's Section 8: if the optimizer believes
	// the outer has ~0 rows, nested loops with an expensive inner looks
	// cheap; with the true row count, sort-merge wins. This is how wrong
	// estimates become slow plans.
	m := DefaultModel()
	innerRescan := m.ScanCost(100000, 16)
	outerCost := m.ScanCost(100, 16)
	innerCost := innerRescan

	nlBelieved := m.NestedLoopCost(outerCost, 4e-8, innerRescan)
	smBelieved := m.SortMergeCost(outerCost, innerCost, 4e-8, 100000, 16, 16)
	if nlBelieved >= smBelieved {
		t.Errorf("with a tiny estimate NL (%g) should beat SM (%g)", nlBelieved, smBelieved)
	}
	nlTrue := m.NestedLoopCost(outerCost, 100, innerRescan)
	smTrue := m.SortMergeCost(outerCost, innerCost, 100, 100000, 16, 16)
	if nlTrue <= smTrue {
		t.Errorf("with the true estimate SM (%g) should beat NL (%g)", smTrue, nlTrue)
	}
}

func TestMaterializedScanCost(t *testing.T) {
	m := DefaultModel()
	if m.MaterializedScanCost(1000, 8) >= m.ScanCost(1000, 8) {
		t.Error("re-reading materialized data should be cheaper than a qualifying scan")
	}
}

// Property: all costs are non-negative and finite for sane inputs.
func TestCostsNonNegativeProperty(t *testing.T) {
	m := DefaultModel()
	f := func(rowsRaw uint32, widthRaw uint8) bool {
		rows := float64(rowsRaw % 10_000_000)
		width := int(widthRaw%64) + 1
		return m.ScanCost(rows, width) >= 0 &&
			m.SortCost(rows, width) >= 0 &&
			m.Pages(rows, width) >= 0 &&
			m.NestedLoopCost(1, rows, 10) >= 0 &&
			m.SortMergeCost(1, 1, rows, rows, width, width) >= 0 &&
			m.HashJoinCost(1, 1, rows, rows) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
