package optimizer

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/governor"
)

// governed reports whether err is a governance failure (cancellation or an
// exhausted budget) that must abort a search loop rather than be treated
// as an unplannable candidate order.
func governed(err error) bool {
	return err != nil &&
		(errors.Is(err, governor.ErrCanceled) || errors.Is(err, governor.ErrBudgetExceeded))
}

// GreedyPlan builds a join order greedily: it starts from the table with
// the smallest effective cardinality and repeatedly appends the table that
// minimizes the estimated intermediate result size (ties broken by plan
// cost, then by table order). Greedy heuristics are one of the incremental
// estimation consumers the paper lists alongside dynamic programming.
func (o *Optimizer) GreedyPlan() (Plan, error) {
	n := len(o.aliases)
	if n == 0 {
		return nil, fmt.Errorf("optimizer: no tables")
	}
	used := make([]bool, n)
	// Seed: smallest effective cardinality.
	bestIdx, bestCard := -1, math.Inf(1)
	for i, a := range o.aliases {
		card, err := o.est.BaseSize(a)
		if err != nil {
			return nil, err
		}
		if card < bestCard {
			bestIdx, bestCard = i, card
		}
	}
	order := []string{o.aliases[bestIdx]}
	used[bestIdx] = true
	size := bestCard
	for len(order) < n {
		nextIdx, nextSize := -1, math.Inf(1)
		for i, a := range o.aliases {
			if used[i] {
				continue
			}
			step, err := o.est.JoinStep(size, order, a)
			if err != nil {
				return nil, err
			}
			// Prefer connected extensions strongly: cartesian steps only win
			// when nothing connects (their key is pushed above any finite
			// connected size).
			s := step.Size
			if step.Cartesian {
				s = math.Inf(1)
			}
			if nextIdx == -1 || s < nextSize {
				nextIdx, nextSize = i, s
			}
		}
		used[nextIdx] = true
		order = append(order, o.aliases[nextIdx])
		step, err := o.est.JoinStep(size, order[:len(order)-1], o.aliases[nextIdx])
		if err != nil {
			return nil, err
		}
		size = step.Size
	}
	return o.PlanForOrder(order)
}

// IterativeImprovementPlan runs the randomized iterative-improvement
// search the paper cites ([14, 5]): random join-order starts, adjacent
// transpositions as the move set, downhill moves only, best of all
// restarts. The search is deterministic for a given seed.
func (o *Optimizer) IterativeImprovementPlan(seed int64, restarts int) (Plan, error) {
	n := len(o.aliases)
	if n == 0 {
		return nil, fmt.Errorf("optimizer: no tables")
	}
	if restarts <= 0 {
		restarts = 4
	}
	rng := rand.New(rand.NewSource(seed))
	var best Plan
	for r := 0; r < restarts; r++ {
		order := make([]string, n)
		for i, p := range rng.Perm(n) {
			order[i] = o.aliases[p]
		}
		plan, err := o.PlanForOrder(order)
		if err != nil {
			return nil, err
		}
		improved := true
		for improved {
			improved = false
			for i := 0; i+1 < n; i++ {
				if err := o.gov.Err(); err != nil {
					return nil, err
				}
				order[i], order[i+1] = order[i+1], order[i]
				cand, err := o.PlanForOrder(order)
				if governed(err) {
					return nil, err
				}
				if err == nil && cand.Cost() < plan.Cost() {
					plan = cand
					improved = true
				} else {
					order[i], order[i+1] = order[i+1], order[i]
				}
			}
		}
		if best == nil || plan.Cost() < best.Cost() {
			best = plan
		}
	}
	return best, nil
}

// ExhaustivePlan tries every left-deep join order (n! permutations; n must
// be small) and returns the cheapest plan. It exists as a test oracle for
// the dynamic programming search.
func (o *Optimizer) ExhaustivePlan() (Plan, error) {
	n := len(o.aliases)
	if n == 0 {
		return nil, fmt.Errorf("optimizer: no tables")
	}
	if n > 8 {
		return nil, fmt.Errorf("optimizer: exhaustive search limited to 8 tables, got %d", n)
	}
	order := make([]string, n)
	var best Plan
	var govErr error
	var permute func(remaining []string)
	permute = func(remaining []string) {
		if govErr != nil {
			return
		}
		if len(remaining) == 0 {
			if govErr = o.gov.Err(); govErr != nil {
				return
			}
			plan, err := o.PlanForOrder(order[:n-len(remaining)])
			if governed(err) {
				govErr = err
				return
			}
			if err == nil && (best == nil || plan.Cost() < best.Cost()) {
				best = plan
			}
			return
		}
		k := n - len(remaining)
		for i := range remaining {
			order[k] = remaining[i]
			rest := make([]string, 0, len(remaining)-1)
			rest = append(rest, remaining[:i]...)
			rest = append(rest, remaining[i+1:]...)
			permute(rest)
		}
	}
	permute(append([]string{}, o.aliases...))
	if govErr != nil {
		return nil, govErr
	}
	if best == nil {
		return nil, fmt.Errorf("optimizer: no plan found")
	}
	return best, nil
}
