// Package optimizer enumerates join orders and methods to produce query
// evaluation plans (QEPs). It is deliberately a classic System-R style
// optimizer — left-deep dynamic programming over connected subsets, with
// nested-loops and sort-merge join methods as in the paper's Starburst
// experiment — whose cardinality estimates come from a pluggable
// cardest.Estimator. Plugging in Algorithm ELS versus Algorithm SM/SSS is
// exactly the paper's experimental manipulation.
package optimizer

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cardest"
	"repro/internal/expr"
)

// JoinMethod identifies a physical join algorithm.
type JoinMethod int

const (
	// NestedLoop re-evaluates the inner input once per outer row.
	NestedLoop JoinMethod = iota
	// SortMerge sorts both inputs on the join key and merges.
	SortMerge
	// HashJoin builds a hash table on the inner input and probes it. The
	// paper's experiment used only nested loops and sort-merge; hash join is
	// provided for completeness and disabled in paper mode.
	HashJoin
	// IndexNL probes an ordered index on the inner base table's join column
	// for each outer row. Only available when such an index exists (see
	// catalog.BuildIndex); disabled in paper mode, where the access methods
	// are deliberately held fixed.
	IndexNL
)

// String names the method.
func (m JoinMethod) String() string {
	switch m {
	case NestedLoop:
		return "NL"
	case SortMerge:
		return "SM"
	case HashJoin:
		return "HASH"
	case IndexNL:
		return "IDXNL"
	default:
		return "?"
	}
}

// Plan is a node of a query evaluation plan tree.
type Plan interface {
	// Tables returns the aliases covered by the subtree, sorted.
	Tables() []string
	// EstRows is the optimizer's estimated output cardinality.
	EstRows() float64
	// Cost is the estimated total cost of producing the output.
	Cost() float64
	// Width is the estimated output row width in bytes.
	Width() int
	// String renders a one-line summary.
	String() string
}

// Scan is a leaf plan: a full scan of a base table with the table's local
// predicates applied on the fly.
type Scan struct {
	// Alias is the query-visible name.
	Alias string
	// Table is the catalog table name.
	Table string
	// Filter holds the local predicates pushed into the scan.
	Filter []expr.Predicate
	// FilterOr holds the OR-groups (local disjunctions) pushed into the
	// scan.
	FilterOr []expr.Disjunction
	// Rows is the estimated output cardinality (effective cardinality).
	Rows float64
	// BaseRows is the unreduced table cardinality (drives the scan cost).
	BaseRows float64
	// RowWidth is the row width in bytes.
	RowWidth int
	// ScanCost is the cost of one execution of the scan.
	ScanCost float64
}

// Tables implements Plan.
func (s *Scan) Tables() []string { return []string{s.Alias} }

// EstRows implements Plan.
func (s *Scan) EstRows() float64 { return s.Rows }

// Cost implements Plan.
func (s *Scan) Cost() float64 { return s.ScanCost }

// Width implements Plan.
func (s *Scan) Width() int { return s.RowWidth }

// String implements Plan.
func (s *Scan) String() string {
	name := s.Alias
	if !strings.EqualFold(s.Alias, s.Table) {
		name = s.Table + " AS " + s.Alias
	}
	var filters []string
	if c := expr.FormatConjunction(s.Filter); c != "" {
		filters = append(filters, c)
	}
	for _, d := range s.FilterOr {
		filters = append(filters, d.String())
	}
	if len(filters) > 0 {
		return fmt.Sprintf("Scan(%s | %s) rows=%s cost=%.1f", name, strings.Join(filters, " AND "), fmtRows(s.Rows), s.ScanCost)
	}
	return fmt.Sprintf("Scan(%s) rows=%s cost=%.1f", name, fmtRows(s.Rows), s.ScanCost)
}

// Join is an inner plan node joining Left (outer) with Right (inner).
type Join struct {
	// Left is the outer input.
	Left Plan
	// Right is the inner input.
	Right Plan
	// Method is the physical join algorithm.
	Method JoinMethod
	// Preds are the join predicates applied at this node (all eligible
	// predicates; the estimator decides which selectivities count).
	Preds []expr.Predicate
	// Rows is the estimated output cardinality.
	Rows float64
	// PlanCost is the estimated cumulative cost.
	PlanCost float64
	// Step records the estimator's per-group selectivity choices for
	// EXPLAIN output.
	Step cardest.StepResult
	// IndexColumn is the inner base-table column whose index an IndexNL
	// join probes (empty for other methods).
	IndexColumn string
	// tables caches the sorted alias set.
	tables []string
}

// Tables implements Plan.
func (j *Join) Tables() []string {
	if j.tables == nil {
		set := append([]string{}, j.Left.Tables()...)
		set = append(set, j.Right.Tables()...)
		sort.Strings(set)
		j.tables = set
	}
	return j.tables
}

// EstRows implements Plan.
func (j *Join) EstRows() float64 { return j.Rows }

// Cost implements Plan.
func (j *Join) Cost() float64 { return j.PlanCost }

// Width implements Plan.
func (j *Join) Width() int { return j.Left.Width() + j.Right.Width() }

// String implements Plan.
func (j *Join) String() string {
	return fmt.Sprintf("%s(%s ⋈ %s) rows=%s cost=%.1f",
		j.Method, strings.Join(j.Left.Tables(), ","), strings.Join(j.Right.Tables(), ","),
		fmtRows(j.Rows), j.PlanCost)
}

func fmtRows(r float64) string {
	if r == float64(int64(r)) && r < 1e15 && r >= 0 {
		return fmt.Sprintf("%d", int64(r))
	}
	return fmt.Sprintf("%.3g", r)
}

// Format renders the plan tree with indentation, for EXPLAIN output.
func Format(p Plan) string {
	var b strings.Builder
	formatInto(&b, p, 0)
	return b.String()
}

func formatInto(b *strings.Builder, p Plan, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(p.String())
	b.WriteByte('\n')
	if j, ok := p.(*Join); ok {
		formatInto(b, j.Left, depth+1)
		formatInto(b, j.Right, depth+1)
	}
}

// JoinOrder returns the base-table order of a left-deep plan (outermost
// first). For bushy plans it returns a depth-first linearization.
func JoinOrder(p Plan) []string {
	switch n := p.(type) {
	case *Scan:
		return []string{n.Alias}
	case *Join:
		return append(JoinOrder(n.Left), JoinOrder(n.Right)...)
	default:
		return nil
	}
}

// StepSizes returns the estimated sizes after each join of a left-deep
// plan, innermost join first — the numbers reported in the paper's
// Section 8 table ("Estimated Result Sizes").
func StepSizes(p Plan) []float64 {
	var out []float64
	var walk func(Plan)
	walk = func(n Plan) {
		if j, ok := n.(*Join); ok {
			walk(j.Left)
			out = append(out, j.Rows)
		}
	}
	walk(p)
	return out
}
