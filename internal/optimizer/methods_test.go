package optimizer

import (
	"testing"

	"repro/internal/cardest"
	"repro/internal/catalog"
	"repro/internal/expr"
)

func twoTableEstimator(t *testing.T) *cardest.Estimator {
	t.Helper()
	cat := catalog.New()
	cat.MustAddTable(catalog.SimpleTable("A", 1000, map[string]float64{"k": 100}))
	cat.MustAddTable(catalog.SimpleTable("B", 5000, map[string]float64{"k": 100}))
	est, err := cardest.New(cat, []cardest.TableRef{{Table: "A"}, {Table: "B"}},
		[]expr.Predicate{expr.NewJoin(ref("A", "k"), expr.OpEQ, ref("B", "k"))}, cardest.ELS())
	if err != nil {
		t.Fatal(err)
	}
	return est
}

func TestHashJoinMethodSelectable(t *testing.T) {
	est := twoTableEstimator(t)
	o, err := New(est, Options{Methods: []JoinMethod{HashJoin}})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := o.BestPlan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.(*Join).Method != HashJoin {
		t.Errorf("method = %s, want HASH", plan.(*Join).Method)
	}
	// Hash requires equality; a pure cartesian query cannot use it.
	cat := catalog.New()
	cat.MustAddTable(catalog.SimpleTable("A", 10, map[string]float64{"k": 10}))
	cat.MustAddTable(catalog.SimpleTable("B", 10, map[string]float64{"k": 10}))
	est2, _ := cardest.New(cat, []cardest.TableRef{{Table: "A"}, {Table: "B"}}, nil, cardest.ELS())
	o2, _ := New(est2, Options{Methods: []JoinMethod{HashJoin}})
	if _, err := o2.BestPlan(); err == nil {
		t.Error("hash-only cartesian should fail to plan")
	}
}

func TestUnknownMethodIgnored(t *testing.T) {
	est := twoTableEstimator(t)
	o, err := New(est, Options{Methods: []JoinMethod{JoinMethod(42), SortMerge}})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := o.BestPlan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.(*Join).Method != SortMerge {
		t.Errorf("unknown method should be skipped, got %s", plan.(*Join).Method)
	}
	o2, _ := New(est, Options{Methods: []JoinMethod{JoinMethod(42)}})
	if _, err := o2.BestPlan(); err == nil {
		t.Error("only-unknown methods should fail to plan")
	}
}

func TestJoinWidthAndTablesCache(t *testing.T) {
	est := twoTableEstimator(t)
	o, _ := New(est, PaperOptions())
	plan, err := o.BestPlan()
	if err != nil {
		t.Fatal(err)
	}
	j := plan.(*Join)
	if j.Width() != j.Left.Width()+j.Right.Width() {
		t.Error("join width should be the sum of inputs")
	}
	// Tables() is cached; repeated calls agree.
	first := j.Tables()
	second := j.Tables()
	if len(first) != 2 || len(second) != 2 || first[0] != second[0] {
		t.Errorf("Tables cache broken: %v vs %v", first, second)
	}
}

func TestGreedySingleTable(t *testing.T) {
	cat := catalog.New()
	cat.MustAddTable(catalog.SimpleTable("A", 10, map[string]float64{"k": 10}))
	est, _ := cardest.New(cat, []cardest.TableRef{{Table: "A"}}, nil, cardest.ELS())
	o, _ := New(est, PaperOptions())
	plan, err := o.GreedyPlan()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plan.(*Scan); !ok {
		t.Errorf("greedy single table should be a scan: %v", plan)
	}
	ii, err := o.IterativeImprovementPlan(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ii.(*Scan); !ok {
		t.Errorf("II single table should be a scan: %v", ii)
	}
	ex, err := o.ExhaustivePlan()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ex.(*Scan); !ok {
		t.Errorf("exhaustive single table should be a scan: %v", ex)
	}
}

func TestExhaustiveLimits(t *testing.T) {
	cat := catalog.New()
	var tabs []cardest.TableRef
	for i := 0; i < 9; i++ {
		name := string(rune('A' + i))
		cat.MustAddTable(catalog.SimpleTable(name, 10, map[string]float64{"k": 10}))
		tabs = append(tabs, cardest.TableRef{Table: name})
	}
	est, _ := cardest.New(cat, tabs, nil, cardest.ELS())
	o, _ := New(est, PaperOptions())
	if _, err := o.ExhaustivePlan(); err == nil {
		t.Error("9 tables should exceed the exhaustive limit")
	}
}

func TestGreedyDisconnectedFallsBackToCartesian(t *testing.T) {
	cat := catalog.New()
	cat.MustAddTable(catalog.SimpleTable("A", 5, map[string]float64{"k": 5}))
	cat.MustAddTable(catalog.SimpleTable("B", 7, map[string]float64{"k": 7}))
	est, _ := cardest.New(cat, []cardest.TableRef{{Table: "A"}, {Table: "B"}}, nil, cardest.ELS())
	o, _ := New(est, PaperOptions())
	plan, err := o.GreedyPlan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.EstRows() != 35 {
		t.Errorf("greedy cartesian rows = %g, want 35", plan.EstRows())
	}
}
