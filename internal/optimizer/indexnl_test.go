package optimizer

import (
	"testing"

	"repro/internal/cardest"
	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/expr"
)

// indexedChainCatalog builds data-backed tables A (small) and B (large,
// selective key) and indexes B.k.
func indexedChainCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	specs := []datagen.TableSpec{
		{Name: "A", Rows: 50, Columns: []datagen.ColumnSpec{{Name: "k", Dist: datagen.DistUniform, Domain: 1000}}},
		{Name: "B", Rows: 5000, Columns: []datagen.ColumnSpec{{Name: "k", Dist: datagen.DistUniform, Domain: 1000}}},
	}
	for i, spec := range specs {
		tbl, err := datagen.Generate(spec, int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cat.Analyze(tbl, catalog.AnalyzeOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.BuildIndex("B", "k"); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestIndexNLChosenWhenSelective(t *testing.T) {
	cat := indexedChainCatalog(t)
	preds := []expr.Predicate{expr.NewJoin(ref("A", "k"), expr.OpEQ, ref("B", "k"))}
	est, err := cardest.New(cat, []cardest.TableRef{{Table: "A"}, {Table: "B"}}, preds, cardest.ELS())
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(est, Options{Methods: []JoinMethod{NestedLoop, SortMerge, IndexNL}})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := o.PlanForOrder([]string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	j := plan.(*Join)
	if j.Method != IndexNL || j.IndexColumn != "k" {
		t.Errorf("expected IndexNL on k, got %s (%q)", j.Method, j.IndexColumn)
	}
	if IndexNL.String() != "IDXNL" {
		t.Error("IndexNL name wrong")
	}
	// The reverse orientation (B as inner referenced on the right side of
	// the predicate) also finds the index.
	preds2 := []expr.Predicate{expr.NewJoin(ref("B", "k"), expr.OpEQ, ref("A", "k"))}
	est2, _ := cardest.New(cat, []cardest.TableRef{{Table: "A"}, {Table: "B"}}, preds2, cardest.ELS())
	o2, _ := New(est2, Options{Methods: []JoinMethod{IndexNL}})
	plan2, err := o2.PlanForOrder([]string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	if plan2.(*Join).IndexColumn != "k" {
		t.Errorf("reverse orientation: %+v", plan2)
	}
}

func TestIndexNLNotOfferedWithoutIndexOrEquality(t *testing.T) {
	cat := indexedChainCatalog(t)
	// Index exists on B.k but the predicate is a non-equality: IndexNL must
	// not apply.
	preds := []expr.Predicate{expr.NewJoin(ref("A", "k"), expr.OpLT, ref("B", "k"))}
	est, _ := cardest.New(cat, []cardest.TableRef{{Table: "A"}, {Table: "B"}}, preds, cardest.ELS())
	o, _ := New(est, Options{Methods: []JoinMethod{IndexNL}})
	if _, err := o.PlanForOrder([]string{"A", "B"}); err == nil {
		t.Error("IndexNL with a non-equality predicate should be inapplicable")
	}
	// Index on the outer side only: joining with A as inner offers nothing.
	preds2 := []expr.Predicate{expr.NewJoin(ref("A", "k"), expr.OpEQ, ref("B", "k"))}
	est2, _ := cardest.New(cat, []cardest.TableRef{{Table: "A"}, {Table: "B"}}, preds2, cardest.ELS())
	o2, _ := New(est2, Options{Methods: []JoinMethod{IndexNL}})
	if _, err := o2.PlanForOrder([]string{"B", "A"}); err == nil {
		t.Error("inner without index should be inapplicable")
	}
}

func TestExpectedMatchesFallbacks(t *testing.T) {
	cat := indexedChainCatalog(t)
	preds := []expr.Predicate{expr.NewJoin(ref("A", "k"), expr.OpEQ, ref("B", "k"))}
	est, _ := cardest.New(cat, []cardest.TableRef{{Table: "A"}, {Table: "B"}}, preds, cardest.ELS())
	o, _ := New(est, Options{Methods: []JoinMethod{IndexNL}})
	scan, err := o.scan("B")
	if err != nil {
		t.Fatal(err)
	}
	m := o.expectedMatches(scan, "k")
	if m < 1 || m > 20 {
		t.Errorf("expected matches per probe ≈ 5000/1000 = 5, got %g", m)
	}
	if got := o.expectedMatches(scan, "missing"); got != 1 {
		t.Errorf("missing column fallback = %g, want 1", got)
	}
	if got := o.expectedMatches(&Scan{Alias: "nope"}, "k"); got != 1 {
		t.Errorf("missing alias fallback = %g, want 1", got)
	}
}
