package optimizer

import (
	"fmt"
	"testing"

	"repro/internal/cardest"
	"repro/internal/catalog"
	"repro/internal/expr"
)

// chainQuery builds an n-table chain query with varied cardinalities so
// the DP search has real choices to make at every level.
func chainQuery(t *testing.T, n int) (*catalog.Catalog, []cardest.TableRef, []expr.Predicate) {
	t.Helper()
	cat := catalog.New()
	tabs := make([]cardest.TableRef, n)
	var preds []expr.Predicate
	card := 100.0
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("C%d", i)
		cat.MustAddTable(catalog.SimpleTable(name, card, map[string]float64{"k": card / 2, "j": card / 4}))
		tabs[i] = cardest.TableRef{Table: name}
		card *= 3
		if i > 0 {
			prev := fmt.Sprintf("C%d", i-1)
			preds = append(preds, expr.NewJoin(ref(prev, "j"), expr.OpEQ, ref(name, "k")))
		}
	}
	return cat, tabs, preds
}

// The parallel DP search must return exactly the serial search's plan —
// same join order, same methods, same cost — at every worker count. This
// is what lets the rest of the pipeline treat BestPlan as deterministic
// regardless of GOMAXPROCS.
func TestBestPlanParallelMatchesSerial(t *testing.T) {
	for _, n := range []int{2, 4, 7, 9} {
		cat, tabs, preds := chainQuery(t, n)
		est, err := cardest.New(cat, tabs, preds, cardest.ELS())
		if err != nil {
			t.Fatal(err)
		}
		serialOpt, err := New(est, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		want, err := serialOpt.BestPlan()
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			opt, err := New(est, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			got, err := opt.BestPlan()
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			if got.String() != want.String() || got.Cost() != want.Cost() {
				t.Errorf("n=%d workers=%d:\n got  %s (cost %g)\n want %s (cost %g)",
					n, workers, got, got.Cost(), want, want.Cost())
			}
		}
	}
}

// Star queries have disconnected satellite pairs: the connected-first /
// cartesian-fallback decision must also be worker-count invariant.
func TestBestPlanParallelStarQuery(t *testing.T) {
	cat := catalog.New()
	cat.MustAddTable(catalog.SimpleTable("F", 100000, map[string]float64{"a": 500, "b": 400, "c": 300}))
	cat.MustAddTable(catalog.SimpleTable("D1", 500, map[string]float64{"a": 500}))
	cat.MustAddTable(catalog.SimpleTable("D2", 400, map[string]float64{"b": 400}))
	cat.MustAddTable(catalog.SimpleTable("D3", 300, map[string]float64{"c": 300}))
	tabs := []cardest.TableRef{{Table: "F"}, {Table: "D1"}, {Table: "D2"}, {Table: "D3"}}
	preds := []expr.Predicate{
		expr.NewJoin(ref("F", "a"), expr.OpEQ, ref("D1", "a")),
		expr.NewJoin(ref("F", "b"), expr.OpEQ, ref("D2", "b")),
		expr.NewJoin(ref("F", "c"), expr.OpEQ, ref("D3", "c")),
	}
	est, err := cardest.New(cat, tabs, preds, cardest.ELS())
	if err != nil {
		t.Fatal(err)
	}
	var want Plan
	for _, workers := range []int{1, 2, 8} {
		opt, err := New(est, Options{Workers: workers, Methods: []JoinMethod{NestedLoop, SortMerge, HashJoin}})
		if err != nil {
			t.Fatal(err)
		}
		got, err := opt.BestPlan()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = got
			continue
		}
		if got.String() != want.String() || got.Cost() != want.Cost() {
			t.Errorf("workers=%d: plan differs from serial:\n got  %s\n want %s", workers, got, want)
		}
	}
}
