package optimizer

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/cardest"
	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/storage"
)

func ref(t, c string) expr.ColumnRef { return expr.ColumnRef{Table: t, Column: c} }

func section8Catalog() *catalog.Catalog {
	c := catalog.New()
	c.MustAddTable(catalog.SimpleTable("S", 1000, map[string]float64{"s": 1000}))
	c.MustAddTable(catalog.SimpleTable("M", 10000, map[string]float64{"m": 10000}))
	c.MustAddTable(catalog.SimpleTable("B", 50000, map[string]float64{"b": 50000}))
	c.MustAddTable(catalog.SimpleTable("G", 100000, map[string]float64{"g": 100000}))
	return c
}

func section8Tables() []cardest.TableRef {
	return []cardest.TableRef{{Table: "S"}, {Table: "M"}, {Table: "B"}, {Table: "G"}}
}

func section8Preds() []expr.Predicate {
	return []expr.Predicate{
		expr.NewJoin(ref("S", "s"), expr.OpEQ, ref("M", "m")),
		expr.NewJoin(ref("M", "m"), expr.OpEQ, ref("B", "b")),
		expr.NewJoin(ref("B", "b"), expr.OpEQ, ref("G", "g")),
		expr.NewConst(ref("S", "s"), expr.OpLT, storage.Int64(100)),
	}
}

func newOptimizer(t *testing.T, cfg cardest.Config) *Optimizer {
	t.Helper()
	est, err := cardest.New(section8Catalog(), section8Tables(), section8Preds(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(est, PaperOptions())
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestJoinMethodString(t *testing.T) {
	if NestedLoop.String() != "NL" || SortMerge.String() != "SM" || HashJoin.String() != "HASH" || JoinMethod(9).String() != "?" {
		t.Error("method names wrong")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Error("nil estimator should error")
	}
}

func TestBestPlanCoversAllTables(t *testing.T) {
	o := newOptimizer(t, cardest.ELS())
	plan, err := o.BestPlan()
	if err != nil {
		t.Fatal(err)
	}
	tabs := plan.Tables()
	sort.Strings(tabs)
	if strings.Join(tabs, ",") != "B,G,M,S" {
		t.Errorf("plan tables = %v", tabs)
	}
	if plan.Cost() <= 0 || plan.EstRows() <= 0 {
		t.Errorf("plan cost %g, rows %g", plan.Cost(), plan.EstRows())
	}
	if o.Estimator() == nil {
		t.Error("Estimator accessor nil")
	}
}

func TestPlanForOrderMatchesEstimator(t *testing.T) {
	o := newOptimizer(t, cardest.SM().WithClosure())
	plan, err := o.PlanForOrder([]string{"S", "B", "M", "G"})
	if err != nil {
		t.Fatal(err)
	}
	got := StepSizes(plan)
	want := []float64{0.2, 4e-8, 4e-21}
	if len(got) != 3 {
		t.Fatalf("step sizes = %v", got)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9*math.Abs(want[i]) {
			t.Errorf("step %d = %g, want %g", i, got[i], want[i])
		}
	}
	if order := JoinOrder(plan); strings.Join(order, ",") != "S,B,M,G" {
		t.Errorf("JoinOrder = %v", order)
	}
}

func TestPlanForOrderErrors(t *testing.T) {
	o := newOptimizer(t, cardest.ELS())
	if _, err := o.PlanForOrder(nil); err == nil {
		t.Error("empty order should error")
	}
	if _, err := o.PlanForOrder([]string{"nope"}); err == nil {
		t.Error("unknown table should error")
	}
}

func TestScanCarriesFilters(t *testing.T) {
	o := newOptimizer(t, cardest.ELS())
	plan, err := o.PlanForOrder([]string{"G", "B", "M", "S"})
	if err != nil {
		t.Fatal(err)
	}
	// With closure, every scan should carry its implied local predicate.
	var scans []*Scan
	var walk func(Plan)
	walk = func(p Plan) {
		switch n := p.(type) {
		case *Scan:
			scans = append(scans, n)
		case *Join:
			walk(n.Left)
			walk(n.Right)
		}
	}
	walk(plan)
	if len(scans) != 4 {
		t.Fatalf("scans = %d", len(scans))
	}
	for _, s := range scans {
		if len(s.Filter) != 1 {
			t.Errorf("scan %s filter = %v, want the implied < 100 predicate", s.Alias, s.Filter)
		}
		if s.Rows != 100 {
			t.Errorf("scan %s estimated rows = %g, want 100", s.Alias, s.Rows)
		}
	}
}

func TestSMWithoutPTCScansAreUnfiltered(t *testing.T) {
	o := newOptimizer(t, cardest.SM())
	plan, err := o.PlanForOrder([]string{"S", "M", "B", "G"})
	if err != nil {
		t.Fatal(err)
	}
	var filters int
	var walk func(Plan)
	walk = func(p Plan) {
		switch n := p.(type) {
		case *Scan:
			filters += len(n.Filter)
		case *Join:
			walk(n.Left)
			walk(n.Right)
		}
	}
	walk(plan)
	if filters != 1 {
		t.Errorf("total filters = %d, want 1 (only s<100, no implied predicates)", filters)
	}
}

func TestDPMatchesExhaustive(t *testing.T) {
	// The DP must find a plan as cheap as brute force over all left-deep
	// orders, for each estimation algorithm.
	for _, cfg := range []cardest.Config{cardest.ELS(), cardest.SM(), cardest.SM().WithClosure(), cardest.SSS().WithClosure()} {
		o := newOptimizer(t, cfg)
		dp, err := o.BestPlan()
		if err != nil {
			t.Fatal(err)
		}
		ex, err := o.ExhaustivePlan()
		if err != nil {
			t.Fatal(err)
		}
		if dp.Cost() > ex.Cost()*(1+1e-9) {
			t.Errorf("%s: DP cost %g exceeds exhaustive %g", cfg.Name(), dp.Cost(), ex.Cost())
		}
	}
}

func TestGreedyAndIterativeImprovement(t *testing.T) {
	o := newOptimizer(t, cardest.ELS())
	g, err := o.GreedyPlan()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Tables()) != 4 {
		t.Errorf("greedy tables = %v", g.Tables())
	}
	ii, err := o.IterativeImprovementPlan(42, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ii.Tables()) != 4 {
		t.Errorf("II tables = %v", ii.Tables())
	}
	// II with enough restarts should match the exhaustive optimum on this
	// tiny query.
	ex, _ := o.ExhaustivePlan()
	if ii.Cost() > ex.Cost()*1.5 {
		t.Errorf("II cost %g far above optimum %g", ii.Cost(), ex.Cost())
	}
	// Determinism.
	ii2, _ := o.IterativeImprovementPlan(42, 3)
	if ii.Cost() != ii2.Cost() {
		t.Error("II should be deterministic for a fixed seed")
	}
}

func TestCartesianHandling(t *testing.T) {
	cat := catalog.New()
	cat.MustAddTable(catalog.SimpleTable("A", 10, map[string]float64{"x": 10}))
	cat.MustAddTable(catalog.SimpleTable("B", 20, map[string]float64{"y": 20}))
	est, err := cardest.New(cat, []cardest.TableRef{{Table: "A"}, {Table: "B"}}, nil, cardest.ELS())
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(est, PaperOptions())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := o.BestPlan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.EstRows() != 200 {
		t.Errorf("cartesian rows = %g, want 200", plan.EstRows())
	}
	j, ok := plan.(*Join)
	if !ok || j.Method != NestedLoop {
		t.Errorf("cartesian should use nested loops: %v", plan)
	}
	// With cartesian disabled, planning fails.
	o2, _ := New(est, Options{DisableCartesian: true})
	if _, err := o2.BestPlan(); err == nil {
		t.Error("disconnected query with cartesian disabled should error")
	}
}

func TestSingleTablePlan(t *testing.T) {
	cat := catalog.New()
	cat.MustAddTable(catalog.SimpleTable("A", 10, map[string]float64{"x": 10}))
	est, _ := cardest.New(cat, []cardest.TableRef{{Table: "A"}}, nil, cardest.ELS())
	o, _ := New(est, PaperOptions())
	plan, err := o.BestPlan()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plan.(*Scan); !ok {
		t.Errorf("single table should plan a scan: %v", plan)
	}
}

func TestNonEqualityJoinUsesNL(t *testing.T) {
	cat := catalog.New()
	cat.MustAddTable(catalog.SimpleTable("A", 100, map[string]float64{"x": 100}))
	cat.MustAddTable(catalog.SimpleTable("B", 100, map[string]float64{"y": 100}))
	est, err := cardest.New(cat, []cardest.TableRef{{Table: "A"}, {Table: "B"}},
		[]expr.Predicate{expr.NewJoin(ref("A", "x"), expr.OpLT, ref("B", "y"))}, cardest.ELS())
	if err != nil {
		t.Fatal(err)
	}
	o, _ := New(est, PaperOptions())
	plan, err := o.BestPlan()
	if err != nil {
		t.Fatal(err)
	}
	j := plan.(*Join)
	if j.Method != NestedLoop {
		t.Errorf("non-equality join must use NL, got %s", j.Method)
	}
}

func TestFormatAndStrings(t *testing.T) {
	o := newOptimizer(t, cardest.ELS())
	plan, err := o.BestPlan()
	if err != nil {
		t.Fatal(err)
	}
	out := Format(plan)
	if strings.Count(out, "Scan(") != 4 {
		t.Errorf("Format should show 4 scans:\n%s", out)
	}
	if !strings.Contains(out, "⋈") {
		t.Errorf("Format should show joins:\n%s", out)
	}
	if fmtRows(100) != "100" || fmtRows(0.25) != "0.25" {
		t.Error("fmtRows wrong")
	}
}

func TestTooManyTables(t *testing.T) {
	cat := catalog.New()
	var tabs []cardest.TableRef
	for i := 0; i < 25; i++ {
		name := fmt.Sprintf("T%d", i)
		cat.MustAddTable(catalog.SimpleTable(name, 10, map[string]float64{"x": 10}))
		tabs = append(tabs, cardest.TableRef{Table: name})
	}
	est, err := cardest.New(cat, tabs, nil, cardest.ELS())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(est, PaperOptions()); err == nil {
		t.Error("25 tables should exceed the DP limit")
	}
}

// Property: over random chain queries, the DP plan never costs more than
// greedy or iterative improvement (it searches a superset of left-deep
// orders).
func TestDPDominatesHeuristicsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(4)
		cat := catalog.New()
		var tabs []cardest.TableRef
		var preds []expr.Predicate
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("T%d", i)
			card := float64(10 + rng.Intn(20000))
			d := float64(1 + rng.Intn(int(card)))
			cat.MustAddTable(catalog.SimpleTable(name, card, map[string]float64{"c": d}))
			tabs = append(tabs, cardest.TableRef{Table: name})
			if i > 0 {
				preds = append(preds, expr.NewJoin(ref(name, "c"), expr.OpEQ, ref(fmt.Sprintf("T%d", i-1), "c")))
			}
		}
		est, err := cardest.New(cat, tabs, preds, cardest.ELS())
		if err != nil {
			t.Fatal(err)
		}
		o, err := New(est, PaperOptions())
		if err != nil {
			t.Fatal(err)
		}
		dp, err := o.BestPlan()
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := o.GreedyPlan()
		if err != nil {
			t.Fatal(err)
		}
		ii, err := o.IterativeImprovementPlan(int64(trial), 2)
		if err != nil {
			t.Fatal(err)
		}
		if dp.Cost() > greedy.Cost()*(1+1e-9) {
			t.Errorf("trial %d: DP (%g) worse than greedy (%g)", trial, dp.Cost(), greedy.Cost())
		}
		if dp.Cost() > ii.Cost()*(1+1e-9) {
			t.Errorf("trial %d: DP (%g) worse than II (%g)", trial, dp.Cost(), ii.Cost())
		}
	}
}
