package optimizer

import (
	"strings"
	"testing"

	"repro/internal/cardest"
	"repro/internal/expr"
)

func TestFormatDot(t *testing.T) {
	o := newOptimizer(t, cardest.ELS())
	plan, err := o.BestPlan()
	if err != nil {
		t.Fatal(err)
	}
	dot := FormatDot(plan)
	if !strings.HasPrefix(dot, "digraph plan {") || !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Errorf("not a digraph:\n%s", dot)
	}
	if got := strings.Count(dot, "Scan "); got != 4 {
		t.Errorf("scans in dot = %d, want 4:\n%s", got, dot)
	}
	if got := strings.Count(dot, "->"); got != 6 {
		t.Errorf("edges = %d, want 6 (two per join):\n%s", got, dot)
	}
	if !strings.Contains(dot, "(filtered)") {
		t.Errorf("filtered scans should be marked:\n%s", dot)
	}
	// IndexNL plans surface the probe column.
	est := twoTableEstimator(t)
	// No index here, so just check the single-scan case renders.
	o2, _ := New(est, PaperOptions())
	scanPlan, _ := o2.PlanForOrder([]string{"A"})
	single := FormatDot(scanPlan)
	if !strings.Contains(single, "Scan A") {
		t.Errorf("single scan dot:\n%s", single)
	}
}

func TestFormatDotIndexJoin(t *testing.T) {
	cat := indexedChainCatalog(t)
	est, err := cardest.New(cat, []cardest.TableRef{{Table: "A"}, {Table: "B"}},
		[]expr.Predicate{expr.NewJoin(ref("A", "k"), expr.OpEQ, ref("B", "k"))}, cardest.ELS())
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(est, Options{Methods: []JoinMethod{IndexNL}})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := o.PlanForOrder([]string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	dot := FormatDot(plan)
	if !strings.Contains(dot, "IDXNL join on k") {
		t.Errorf("index join label missing:\n%s", dot)
	}
}
