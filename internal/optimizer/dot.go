package optimizer

import (
	"fmt"
	"strings"
)

// FormatDot renders a plan as a Graphviz DOT digraph, for visualizing how
// the estimation algorithm shaped the plan. Nodes show the operator, the
// estimated row count, and the cumulative cost; edges point from inputs to
// consumers.
func FormatDot(p Plan) string {
	var b strings.Builder
	b.WriteString("digraph plan {\n")
	b.WriteString("  rankdir=BT;\n")
	b.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	counter := 0
	var walk func(Plan) string
	walk = func(n Plan) string {
		id := fmt.Sprintf("n%d", counter)
		counter++
		switch node := n.(type) {
		case *Scan:
			label := fmt.Sprintf("Scan %s", node.Alias)
			if len(node.Filter) > 0 || len(node.FilterOr) > 0 {
				label += " (filtered)"
			}
			fmt.Fprintf(&b, "  %s [label=%q];\n", id,
				fmt.Sprintf("%s\\nrows=%s cost=%.1f", label, fmtRows(node.Rows), node.ScanCost))
		case *Join:
			label := fmt.Sprintf("%s join", node.Method)
			if node.IndexColumn != "" {
				label += " on " + node.IndexColumn
			}
			fmt.Fprintf(&b, "  %s [label=%q];\n", id,
				fmt.Sprintf("%s\\nrows=%s cost=%.1f", label, fmtRows(node.Rows), node.PlanCost))
			l := walk(node.Left)
			r := walk(node.Right)
			fmt.Fprintf(&b, "  %s -> %s;\n", l, id)
			fmt.Fprintf(&b, "  %s -> %s;\n", r, id)
		}
		return id
	}
	walk(p)
	b.WriteString("}\n")
	return b.String()
}
