package optimizer

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	"repro/internal/cardest"
	"repro/internal/closure"
	"repro/internal/cost"
	"repro/internal/expr"
	"repro/internal/governor"
	"repro/internal/workpool"
)

// Options configures the optimizer.
type Options struct {
	// Methods lists the join methods the optimizer may choose. Empty means
	// the paper's repertoire: nested loops and sort-merge.
	Methods []JoinMethod
	// Model is the cost model; nil selects cost.DefaultModel.
	Model *cost.Model
	// DisableCartesian forbids cartesian products even when no connected
	// extension exists (the query would then fail to plan).
	DisableCartesian bool
	// Governor, when non-nil, bounds plan enumeration: every candidate set
	// built charges the plan budget, and search loops poll cancellation.
	Governor *governor.Governor
	// Workers caps the parallelism of the dynamic-programming search
	// (BestPlan): the subsets of each popcount level extend concurrently
	// on a bounded worker pool. 0 defers to the governor's Limits.Workers,
	// else GOMAXPROCS; 1 forces the serial search. The parallel search
	// returns exactly the serial search's plan (proposals merge in subset
	// order with the serial tie-breaking).
	Workers int
}

// PaperOptions returns the configuration of the Section 8 experiment:
// nested loops + sort-merge, default cost model.
func PaperOptions() Options {
	return Options{Methods: []JoinMethod{NestedLoop, SortMerge}}
}

// Optimizer plans one query using a cardinality estimator. The estimator
// fixes both the statistics view (raw vs effective) and the selectivity
// rule, so different estimation algorithms yield different plans.
type Optimizer struct {
	est     *cardest.Estimator
	model   *cost.Model
	methods []JoinMethod
	opts    Options
	gov     *governor.Governor
	aliases []string
}

// New creates an optimizer over the estimator's query.
func New(est *cardest.Estimator, opts Options) (*Optimizer, error) {
	if est == nil {
		return nil, fmt.Errorf("optimizer: nil estimator")
	}
	methods := opts.Methods
	if len(methods) == 0 {
		methods = []JoinMethod{NestedLoop, SortMerge}
	}
	model := opts.Model
	if model == nil {
		model = cost.DefaultModel()
	}
	o := &Optimizer{est: est, model: model, methods: methods, opts: opts, gov: opts.Governor}
	for _, tr := range est.Tables() {
		o.aliases = append(o.aliases, tr.Name())
	}
	if len(o.aliases) > 24 {
		return nil, fmt.Errorf("optimizer: %d tables exceed the DP limit of 24", len(o.aliases))
	}
	return o, nil
}

// Estimator returns the estimator the optimizer plans with.
func (o *Optimizer) Estimator() *cardest.Estimator { return o.est }

// scan builds the leaf plan for one table.
func (o *Optimizer) scan(alias string) (*Scan, error) {
	eff, err := o.est.Effective(alias)
	if err != nil {
		return nil, err
	}
	base, err := o.est.BaseStats(alias)
	if err != nil {
		return nil, err
	}
	filter := closure.LocalPredicatesOf(o.est.Predicates(), alias)
	s := &Scan{
		Alias:    alias,
		Table:    baseTableName(o.est, alias),
		Filter:   filter,
		FilterOr: expr.DisjunctionsOf(o.est.Disjunctions(), alias),
		Rows:     eff.Card,
		BaseRows: base.Card,
		RowWidth: base.RowWidth,
	}
	s.ScanCost = o.model.ScanCost(s.BaseRows, s.RowWidth)
	return s, nil
}

func baseTableName(est *cardest.Estimator, alias string) string {
	for _, tr := range est.Tables() {
		if strings.EqualFold(tr.Name(), alias) {
			return tr.Table
		}
	}
	return alias
}

// joinCandidates builds one Join node per applicable method for extending
// plan left with table next, and returns them (cheapest first). Each call
// charges one unit of the plan-enumeration budget.
func (o *Optimizer) joinCandidates(left Plan, next *Scan) ([]*Join, error) {
	if err := o.gov.TickPlans(1); err != nil {
		return nil, err
	}
	step, err := o.est.JoinStep(left.EstRows(), left.Tables(), next.Alias)
	if err != nil {
		return nil, err
	}
	eligible := closure.EligibleJoinPredicates(o.est.Predicates(), next.Alias, left.Tables())
	hasEquality := false
	for _, p := range eligible {
		if p.Op == expr.OpEQ {
			hasEquality = true
			break
		}
	}
	var out []*Join
	for _, m := range o.methods {
		var c float64
		var indexColumn string
		switch m {
		case NestedLoop:
			// The inner base scan is re-executed per outer row (Starburst
			// pipelined semantics; this is what makes underestimated outers
			// catastrophic).
			c = o.model.NestedLoopCost(left.Cost(), left.EstRows(), next.ScanCost)
		case SortMerge:
			if !hasEquality {
				continue
			}
			c = o.model.SortMergeCost(left.Cost(), next.ScanCost, left.EstRows(), next.EstRows(),
				left.Width(), next.Width())
		case HashJoin:
			if !hasEquality {
				continue
			}
			c = o.model.HashJoinCost(left.Cost(), next.ScanCost, left.EstRows(), next.EstRows())
		case IndexNL:
			col, ok := o.indexableColumn(next, eligible)
			if !ok {
				continue
			}
			indexColumn = col
			matches := o.expectedMatches(next, col)
			c = o.model.IndexNLCost(left.Cost(), left.EstRows(), next.BaseRows, matches)
		default:
			continue
		}
		out = append(out, &Join{
			Left: left, Right: next, Method: m,
			Preds: eligible, Rows: step.Size, PlanCost: c, Step: step,
			IndexColumn: indexColumn,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("optimizer: no applicable join method for %s", next.Alias)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PlanCost < out[j].PlanCost })
	return out, nil
}

// indexableColumn returns the inner-side column of an eligible equality
// predicate for which the inner base table carries an index, if any.
func (o *Optimizer) indexableColumn(next *Scan, eligible []expr.Predicate) (string, bool) {
	cat := o.est.Catalog()
	if cat == nil {
		return "", false
	}
	for _, p := range eligible {
		if p.Op != expr.OpEQ {
			continue
		}
		var col string
		switch {
		case strings.EqualFold(p.Left.Table, next.Alias):
			col = p.Left.Column
		case strings.EqualFold(p.Right.Table, next.Alias):
			col = p.Right.Column
		default:
			continue
		}
		if cat.HasIndex(next.Table, col) {
			return col, true
		}
	}
	return "", false
}

// expectedMatches estimates how many inner rows one index probe returns:
// ‖inner‖ / d(column), using the raw statistics (the index covers the
// unfiltered base table).
func (o *Optimizer) expectedMatches(next *Scan, column string) float64 {
	base, err := o.est.BaseStats(next.Alias)
	if err != nil {
		return 1
	}
	cs := base.Column(column)
	if cs == nil || cs.Distinct <= 0 {
		return 1
	}
	return base.Card / cs.Distinct
}

// resolveWorkers returns the DP parallelism degree: Options.Workers wins,
// then the governor's Limits.Workers, then GOMAXPROCS.
func (o *Optimizer) resolveWorkers() int {
	if o.opts.Workers > 0 {
		return o.opts.Workers
	}
	if w := o.gov.Workers(); w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// proposal is one DP extension candidate: the cheapest join that grows
// some current-level subset into newMask.
type proposal struct {
	newMask uint32
	cand    *Join
}

// BestPlan runs left-deep dynamic programming over connected subsets and
// returns the cheapest complete plan.
//
// Subsets of the same popcount level are independent — each reads only
// plans of its own level and proposes plans for the next — so the level's
// subsets run concurrently on the worker pool. Writes are deferred:
// workers emit proposals, which merge into the DP table serially in
// subset order with the same strict cost comparison the serial loop uses,
// so the chosen plan is identical at every worker count (ties keep the
// earlier subset's plan either way).
func (o *Optimizer) BestPlan() (Plan, error) {
	n := len(o.aliases)
	if n == 0 {
		return nil, fmt.Errorf("optimizer: no tables")
	}
	scans := make([]*Scan, n)
	for i, a := range o.aliases {
		s, err := o.scan(a)
		if err != nil {
			return nil, err
		}
		scans[i] = s
	}
	if n == 1 {
		return scans[0], nil
	}

	best := make(map[uint32]Plan, 1<<n)
	for i := 0; i < n; i++ {
		best[1<<i] = scans[i]
	}
	// Enumerate subsets in increasing popcount order.
	byCount := make([][]uint32, n+1)
	for mask := uint32(1); mask < 1<<n; mask++ {
		byCount[popcount(mask)] = append(byCount[popcount(mask)], mask)
	}
	workers := o.resolveWorkers()
	for size := 1; size < n; size++ {
		masks := byCount[size]
		props := make([][]proposal, len(masks))
		err := workpool.Run(workers, len(masks), func(i int) error {
			if err := o.gov.Err(); err != nil {
				return err
			}
			mask := masks[i]
			left, ok := best[mask] // best is read-only while the level runs
			if !ok {
				return nil
			}
			// Prefer connected extensions; fall back to cartesian products
			// only if no table connects to this subset.
			connected := make([]int, 0, n)
			disconnected := make([]int, 0, n)
			for t := 0; t < n; t++ {
				if mask&(1<<t) != 0 {
					continue
				}
				if len(closure.EligibleJoinPredicates(o.est.Predicates(), o.aliases[t], left.Tables())) > 0 {
					connected = append(connected, t)
				} else {
					disconnected = append(disconnected, t)
				}
			}
			ext := connected
			if len(ext) == 0 {
				if o.opts.DisableCartesian {
					return nil
				}
				ext = disconnected
			}
			for _, t := range ext {
				cands, err := o.joinCandidates(left, scans[t])
				if err != nil {
					return err
				}
				props[i] = append(props[i], proposal{newMask: mask | 1<<t, cand: cands[0]})
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, ps := range props {
			for _, p := range ps {
				if cur, ok := best[p.newMask]; !ok || p.cand.PlanCost < cur.Cost() {
					best[p.newMask] = p.cand
				}
			}
		}
	}
	full := uint32(1<<n) - 1
	plan, ok := best[full]
	if !ok {
		return nil, fmt.Errorf("optimizer: query is disconnected and cartesian products are disabled")
	}
	return plan, nil
}

// PlanForOrder builds the cheapest left-deep plan that follows the given
// table order exactly, choosing the best join method at each step. Used to
// evaluate externally fixed join orders (e.g. reproducing a specific row of
// the paper's table).
func (o *Optimizer) PlanForOrder(order []string) (Plan, error) {
	if len(order) == 0 {
		return nil, fmt.Errorf("optimizer: empty order")
	}
	plan, err := o.scan(order[0])
	if err != nil {
		return nil, err
	}
	var cur Plan = plan
	for _, alias := range order[1:] {
		s, err := o.scan(alias)
		if err != nil {
			return nil, err
		}
		cands, err := o.joinCandidates(cur, s)
		if err != nil {
			return nil, err
		}
		cur = cands[0]
	}
	return cur, nil
}

func popcount(x uint32) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}
