// Package governor enforces per-query resource budgets across the
// estimation/planning/execution pipeline and defines the typed error
// taxonomy the public API reports failures through.
//
// A Governor is created per query from a context.Context plus a Limits
// configuration. The optimizer ticks it once per enumerated join candidate
// set; the executor ticks it once per tuple visited and per materialized
// output row. Ticks are cheap (an atomic add and compare); the context is
// polled only every checkInterval ticks so that governance stays off the
// critical path of tight scan loops.
//
// Counters are atomic, so the worker goroutines of a parallel scan or join
// may tick one shared Governor concurrently: accounting stays exact (every
// visited tuple is charged exactly once) and a budget overrun is detected
// by whichever worker crosses the limit. The stop decision is made once,
// by the pool draining the workers — see internal/workpool.
//
// A nil *Governor is valid and enforces nothing, so deep pipeline code can
// thread a governor unconditionally without nil checks at every site.
package governor

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Sentinel errors of the pipeline's failure taxonomy. All errors returned
// by the governed pipeline match exactly one of these under errors.Is.
var (
	// ErrCanceled reports that the query's context was canceled.
	ErrCanceled = errors.New("els: query canceled")
	// ErrBudgetExceeded reports that a resource limit (wall-clock, tuples
	// scanned, rows materialized, plans enumerated) was exhausted.
	ErrBudgetExceeded = errors.New("els: resource budget exceeded")
	// ErrBadStats reports catalog statistics too broken to estimate from
	// (the estimator degrades to defaults where it can; this error is for
	// inputs rejected outright, e.g. a negative declared cardinality).
	ErrBadStats = errors.New("els: invalid catalog statistics")
	// ErrParse reports a malformed query or unresolvable reference.
	ErrParse = errors.New("els: parse error")
	// ErrInternal reports a panic recovered at the public API boundary.
	ErrInternal = errors.New("els: internal error")
	// ErrOverloaded reports that admission control shed the query: the
	// concurrency limit was reached and the query could not be queued (queue
	// full) or waited past its queue deadline, or the circuit breaker is
	// open. Overload is a property of the system's load, not of the query —
	// the same query may succeed when resubmitted later.
	ErrOverloaded = errors.New("els: overloaded")
	// ErrClosed reports that the system is draining or closed
	// (System.Close); new queries fail fast with this error.
	ErrClosed = errors.New("els: system closed")
	// ErrDurability reports that the durable catalog store (write-ahead
	// log or checkpoint; see els.Open) failed to make a mutation durable.
	// The mutation was not acknowledged and no new catalog version was
	// published; the durable store refuses further mutations until the
	// system is reopened, because the on-disk suffix state is unknown.
	// Queries keep serving from the last published in-memory version.
	ErrDurability = errors.New("els: durability failure")
	// ErrStaleReplica reports that a read replica is further behind the
	// primary than Limits.MaxReplicaLag allows. The read was rejected
	// before estimation started; the caller can retry (replicas catch up)
	// or fail over to the primary, which is never stale.
	ErrStaleReplica = errors.New("els: stale replica")
	// ErrDiverged reports that a read replica's catalog failed the
	// version-digest audit: after replaying a shipped frame for version V
	// its catalog was not byte-identical to the primary's catalog at V.
	// The replica is quarantined — every subsequent read fails with this
	// error — until it is re-attached and resynchronized from a full
	// catalog frame.
	ErrDiverged = errors.New("els: replica diverged")
	// ErrBadWire reports a wire-protocol failure between a client and a
	// serving process (cmd/elsserve): a frame that failed length or
	// checksum verification, a malformed or oversized request, an unknown
	// operation, or a connection that died mid-frame. The request it
	// covered may or may not have executed; idempotent reads are safe to
	// resubmit on a fresh connection.
	ErrBadWire = errors.New("els: wire protocol failure")
	// ErrTenant reports that a multi-tenant server could not route the
	// request to a healthy tenant: the tenant is unknown, or its bulkhead
	// quarantined it as degraded (repeated internal errors or a frozen
	// durable store). Other tenants on the same server are unaffected.
	ErrTenant = errors.New("els: tenant unavailable")
	// ErrMemory reports that a query's byte budget (Limits.MaxMemory) was
	// exhausted by working memory that could not be spilled to disk, or
	// that the spill machinery itself failed while trying to stay under
	// the budget. Unlike ErrOverloaded it is a property of the query
	// against its budget, not of system load: resubmitting the same query
	// under the same budget fails the same way, so it is not retryable.
	ErrMemory = errors.New("els: memory budget exceeded")
)

// BudgetError is the concrete error for an exhausted budget. It matches
// ErrBudgetExceeded under errors.Is and names the resource that ran out.
type BudgetError struct {
	// Resource is one of "wall-clock", "tuples", "rows", "plans".
	Resource string
	// Limit is the configured budget; Used is consumption at detection
	// (for wall-clock both are in nanoseconds).
	Limit, Used int64
}

func (e *BudgetError) Error() string {
	if e.Resource == "wall-clock" {
		return fmt.Sprintf("els: resource budget exceeded: wall-clock limit %s reached",
			time.Duration(e.Limit))
	}
	return fmt.Sprintf("els: resource budget exceeded: %s limit %d reached (used %d)",
		e.Resource, e.Limit, e.Used)
}

// Unwrap makes errors.Is(err, ErrBudgetExceeded) hold.
func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

// OverloadError is the concrete error for a shed query. It matches
// ErrOverloaded under errors.Is and names why admission refused the query.
type OverloadError struct {
	// Reason is one of "queue full", "queue timeout", "circuit breaker open".
	Reason string
	// MaxConcurrent and MaxQueue are the admission limits in force.
	MaxConcurrent, MaxQueue int
	// Waited is how long the query sat in the admission queue before being
	// shed (zero for immediate sheds).
	Waited time.Duration
}

func (e *OverloadError) Error() string {
	s := fmt.Sprintf("els: overloaded: %s (max-concurrent %d", e.Reason, e.MaxConcurrent)
	if e.MaxQueue > 0 {
		s += fmt.Sprintf(", max-queue %d", e.MaxQueue)
	}
	s += ")"
	if e.Waited > 0 {
		s += fmt.Sprintf(" after waiting %s", e.Waited)
	}
	return s
}

// Unwrap makes errors.Is(err, ErrOverloaded) hold.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// InternalError is the concrete error for a recovered panic. It matches
// ErrInternal under errors.Is and carries the panic value and stack.
type InternalError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack at recovery time.
	Stack []byte
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("els: internal error: panic: %v", e.Value)
}

// Unwrap makes errors.Is(err, ErrInternal) hold.
func (e *InternalError) Unwrap() error { return ErrInternal }

// NewInternal wraps a recovered panic value and its stack.
func NewInternal(value any, stack []byte) *InternalError {
	return &InternalError{Value: value, Stack: stack}
}

// StaleReplicaError is the concrete error for a read rejected on a
// lagging replica. It matches ErrStaleReplica under errors.Is and reports
// how far behind the replica was.
type StaleReplicaError struct {
	// ReplicaID names the replica that rejected the read.
	ReplicaID string
	// Lag is how many catalog versions the replica trailed the primary at
	// rejection time; MaxLag is the Limits.MaxReplicaLag bound in force.
	Lag, MaxLag uint64
}

func (e *StaleReplicaError) Error() string {
	return fmt.Sprintf("els: stale replica %s: %d versions behind primary (max-replica-lag %d)",
		e.ReplicaID, e.Lag, e.MaxLag)
}

// Unwrap makes errors.Is(err, ErrStaleReplica) hold.
func (e *StaleReplicaError) Unwrap() error { return ErrStaleReplica }

// DivergenceError is the concrete error for a failed replica digest
// audit. It matches ErrDiverged under errors.Is and carries the hex
// SHA-256 digests that disagreed.
type DivergenceError struct {
	// ReplicaID names the quarantined replica.
	ReplicaID string
	// Version is the catalog version whose digests disagreed.
	Version uint64
	// Want is the digest the primary shipped with the frame; Got is the
	// digest of the replica's catalog after replaying it.
	Want, Got string
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("els: replica %s diverged at catalog version %d: digest %s, primary shipped %s",
		e.ReplicaID, e.Version, e.Got, e.Want)
}

// Unwrap makes errors.Is(err, ErrDiverged) hold.
func (e *DivergenceError) Unwrap() error { return ErrDiverged }

// TenantError is the concrete error for a request a multi-tenant server
// refused to route. It matches ErrTenant under errors.Is and reports
// whether the tenant exists at all and whether its bulkhead quarantined
// it.
type TenantError struct {
	// Tenant names the tenant the request addressed.
	Tenant string
	// Reason is one of "unknown tenant", "quarantined", "draining".
	Reason string
	// Quarantined marks a tenant degraded by its bulkhead (repeated
	// internal errors or a frozen durable store) rather than absent.
	Quarantined bool
	// Cause is the failure that tripped the quarantine, when one did.
	Cause error
}

func (e *TenantError) Error() string {
	s := fmt.Sprintf("els: tenant unavailable: %q: %s", e.Tenant, e.Reason)
	if e.Cause != nil {
		s += ": " + e.Cause.Error()
	}
	return s
}

// Unwrap makes errors.Is(err, ErrTenant) hold.
func (e *TenantError) Unwrap() error { return ErrTenant }

// MemoryError is the concrete error for an exhausted byte budget. It
// matches ErrMemory under errors.Is and names the allocation site that
// could not be served within Limits.MaxMemory.
type MemoryError struct {
	// Operator names the materialization that tripped the budget (e.g.
	// "sort-merge scratch", "spill write").
	Operator string
	// Limit is the configured MaxMemory budget in bytes; Used is the
	// working set charged at detection; Requested is the allocation that
	// did not fit. Requested may be zero when the failure is a spill I/O
	// error rather than an oversized allocation.
	Limit, Used, Requested int64
}

func (e *MemoryError) Error() string {
	return fmt.Sprintf("els: memory budget exceeded: %s needs %d bytes (%d of %d in use)",
		e.Operator, e.Requested, e.Used, e.Limit)
}

// Unwrap makes errors.Is(err, ErrMemory) hold.
func (e *MemoryError) Unwrap() error { return ErrMemory }

// MemoryPressureError is the concrete error for a query shed because the
// serving process's shared memory pool could not cover its reservation.
// Pressure is a property of the system's load, not of the query — the
// same query succeeds when neighbors release their shares — so it matches
// ErrOverloaded (retryable) under errors.Is, not ErrMemory.
type MemoryPressureError struct {
	// Tenant names the tenant whose share was exhausted.
	Tenant string
	// Requested is the admission-time byte reservation that did not fit;
	// InUse is the tenant's outstanding reservation total; Share is the
	// tenant's slice of the process-wide pool.
	Requested, InUse, Share int64
}

func (e *MemoryPressureError) Error() string {
	return fmt.Sprintf("els: overloaded: memory pool exhausted: tenant %q needs %d bytes (%d of %d-byte share in use)",
		e.Tenant, e.Requested, e.InUse, e.Share)
}

// Unwrap makes errors.Is(err, ErrOverloaded) hold.
func (e *MemoryPressureError) Unwrap() error { return ErrOverloaded }

// Limits configures per-query resource budgets and parallelism. The zero
// value enforces nothing and uses the default worker count.
type Limits struct {
	// Timeout is the wall-clock budget for one call; 0 disables. The
	// deadline starts when the Governor is created and is enforced even if
	// the caller's context carries no deadline of its own.
	Timeout time.Duration
	// MaxTuples bounds base-table and materialized-input tuples visited
	// during execution; 0 disables.
	MaxTuples int64
	// MaxRows bounds rows materialized into operator outputs; 0 disables.
	MaxRows int64
	// MaxPlans bounds join-candidate sets enumerated during planning; 0
	// disables.
	MaxPlans int64
	// Workers caps the intra-query parallelism of scans, joins, and plan
	// enumeration. 0 selects runtime.GOMAXPROCS(0); 1 forces the serial
	// code paths. Workers is a degree, not a budget: it does not make
	// Enforced report true.
	Workers int
	// MaxConcurrent caps how many queries the system serves at once
	// (admission control); 0 disables. Queries beyond the cap wait in the
	// admission queue and are shed with ErrOverloaded when the queue fills
	// or QueueTimeout elapses.
	MaxConcurrent int
	// MaxQueue caps how many queries may wait for admission at once; 0
	// means unbounded. Only meaningful with MaxConcurrent > 0.
	MaxQueue int
	// QueueTimeout bounds how long a query waits for admission before being
	// shed with ErrOverloaded; 0 means wait indefinitely (until the
	// caller's context dies). Only meaningful with MaxConcurrent > 0.
	QueueTimeout time.Duration
	// CheckpointEvery compacts the durable store's write-ahead log into an
	// atomic checkpoint after this many WAL records (systems opened with
	// els.Open only; 0 disables auto-checkpointing and leaves compaction
	// to explicit Checkpoint calls). Like the admission fields it governs
	// the system, not a single query's budget.
	CheckpointEvery int
	// NoFsync skips the per-record fsync on the durable store's
	// write-ahead log (systems opened with els.Open only), trading crash
	// durability of the latest acknowledged mutations for bulk-load
	// throughput. Checkpoints still fsync before publishing.
	NoFsync bool
	// MaxReplicaLag bounds how many catalog versions behind the primary a
	// read replica (els.OpenReplica) may serve from: a read on a replica
	// lagging further is rejected with ErrStaleReplica before estimation
	// starts. 0 means unbounded — every read serves, however stale. It
	// has no effect on a primary, which is never stale.
	MaxReplicaLag int
	// DisableColumnar forces the executor's row-at-a-time engine instead of
	// the vectorized batch kernels. The engines are bit-identical in
	// results and work counters — this is the escape hatch that keeps them
	// comparable in-tree (differential tests, bisection, perf baselines).
	DisableColumnar bool
	// DisableCache bypasses the plan/estimate cache for this system's
	// serve calls: every query is parsed, planned, and estimated cold.
	// Like DisableColumnar it exists so the cached and cold paths can be
	// compared against each other at any time.
	DisableCache bool
	// PlanCacheSize overrides the plan cache's entry capacity; 0 keeps the
	// default. Like the admission fields it governs the system, not a
	// single query's budget.
	PlanCacheSize int
	// MaxMemory bounds one query's working memory in bytes; 0 disables.
	// Hash-join build sides that would not fit spill to disk (Grace-style
	// partitioning, bit-identical results); non-spillable working memory
	// (sort scratch) that would not fit fails with ErrMemory. Materialized
	// operator outputs are charged to the bytes ledger for observability
	// but are bounded by MaxRows, not MaxMemory, so a budgeted query
	// returns the same rows as an unbudgeted one.
	MaxMemory int64
}

// Enforced reports whether any budget limit is set (Workers is a
// parallelism degree, and the admission fields govern the system rather
// than a single query's budget; none of them count).
func (l Limits) Enforced() bool {
	return l.Timeout > 0 || l.MaxTuples > 0 || l.MaxRows > 0 || l.MaxPlans > 0 || l.MaxMemory > 0
}

// Admission reports whether admission control is configured.
func (l Limits) Admission() bool { return l.MaxConcurrent > 0 }

// ColumnarDisabled reports whether the governed call must use the
// row-at-a-time engine. A nil governor (ungoverned executor) defaults to
// the vectorized engine.
func (g *Governor) ColumnarDisabled() bool {
	return g != nil && g.limits.DisableColumnar
}

// checkInterval is how many ticks pass between context/deadline polls.
const checkInterval = 1024

// Governor tracks one query's resource consumption against its limits.
// All methods are safe for concurrent use: parallel operator workers share
// one Governor per query, and concurrent queries each get their own.
type Governor struct {
	ctx        context.Context
	limits     Limits
	deadline   time.Time
	start      time.Time
	tuples     atomic.Int64
	rows       atomic.Int64
	plans      atomic.Int64
	queueWait  atomic.Int64 // nanoseconds spent waiting for admission
	sinceCheck atomic.Int64

	// Bytes ledger. memBytes is the live working set; memPeak its
	// high-water mark; memReserved the planner's estimate-informed
	// pre-reservation; spills/spilledBytes count hash-join build sides
	// that went to disk. Charges at operator boundaries are deterministic
	// for a given plan, which is what keeps the spill decision — and
	// therefore the result bytes — identical across worker counts and
	// engines.
	memBytes     atomic.Int64
	memPeak      atomic.Int64
	memReserved  atomic.Int64
	spills       atomic.Int64
	spilledBytes atomic.Int64
}

// New creates a governor for one query. ctx may be nil (treated as
// context.Background()).
func New(ctx context.Context, limits Limits) *Governor {
	if ctx == nil {
		ctx = context.Background() //ctxflow:allow nil-context compatibility default
	}
	g := &Governor{ctx: ctx, limits: limits, start: time.Now()}
	if limits.Timeout > 0 {
		g.deadline = g.start.Add(limits.Timeout)
	}
	return g
}

// Context returns the context the governor polls (Background for a nil
// governor).
func (g *Governor) Context() context.Context {
	if g == nil || g.ctx == nil {
		return context.Background() //ctxflow:allow nil governor has no context to return
	}
	return g.ctx
}

// Workers returns the configured parallelism degree (0 for a nil governor
// or an unset limit, meaning "use the default").
func (g *Governor) Workers() int {
	if g == nil {
		return 0
	}
	return g.limits.Workers
}

// Err polls cancellation and the wall-clock budget immediately, mapping
// context errors into the taxonomy: Canceled → ErrCanceled, deadline (from
// the context or from Limits.Timeout) → ErrBudgetExceeded("wall-clock").
func (g *Governor) Err() error {
	if g == nil {
		return nil
	}
	if err := g.ctx.Err(); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return g.wallClockError()
		}
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	if !g.deadline.IsZero() && time.Now().After(g.deadline) {
		return g.wallClockError()
	}
	return nil
}

func (g *Governor) wallClockError() error {
	limit := int64(g.limits.Timeout)
	if limit == 0 {
		if d, ok := g.ctx.Deadline(); ok {
			limit = int64(d.Sub(g.start))
		}
	}
	return &BudgetError{Resource: "wall-clock", Limit: limit, Used: int64(time.Since(g.start))}
}

// poll amortizes Err over checkInterval ticks. The since-last-check
// counter is shared across goroutines; the exact poll cadence under
// concurrency is approximate, which is fine — polling exists only to bound
// cancellation latency, not for accounting.
func (g *Governor) poll() error {
	if g.sinceCheck.Add(1) < checkInterval {
		return nil
	}
	g.sinceCheck.Store(0)
	return g.Err()
}

// TickTuples charges n visited tuples against the tuple budget.
func (g *Governor) TickTuples(n int64) error {
	if g == nil {
		return nil
	}
	used := g.tuples.Add(n)
	if g.limits.MaxTuples > 0 && used > g.limits.MaxTuples {
		return &BudgetError{Resource: "tuples", Limit: g.limits.MaxTuples, Used: used}
	}
	return g.poll()
}

// TickRows charges n materialized output rows against the row budget.
func (g *Governor) TickRows(n int64) error {
	if g == nil {
		return nil
	}
	used := g.rows.Add(n)
	if g.limits.MaxRows > 0 && used > g.limits.MaxRows {
		return &BudgetError{Resource: "rows", Limit: g.limits.MaxRows, Used: used}
	}
	return g.poll()
}

// TickPlans charges n enumerated plan candidates against the plan budget.
func (g *Governor) TickPlans(n int64) error {
	if g == nil {
		return nil
	}
	used := g.plans.Add(n)
	if g.limits.MaxPlans > 0 && used > g.limits.MaxPlans {
		return &BudgetError{Resource: "plans", Limit: g.limits.MaxPlans, Used: used}
	}
	return g.poll()
}

// Usage reports the resources consumed so far.
func (g *Governor) Usage() (tuples, rows, plans int64) {
	if g == nil {
		return 0, 0, 0
	}
	return g.tuples.Load(), g.rows.Load(), g.plans.Load()
}

// RecordQueueWait charges the time the query spent waiting for admission.
// Queue wait is accounting only: it is not charged against the wall-clock
// budget, whose deadline starts when the Governor is created (after
// admission), so a long queue wait cannot consume a query's own budget.
func (g *Governor) RecordQueueWait(d time.Duration) {
	if g == nil || d <= 0 {
		return
	}
	g.queueWait.Add(int64(d))
}

// QueueWait reports how long the query waited for admission.
func (g *Governor) QueueWait() time.Duration {
	if g == nil {
		return 0
	}
	return time.Duration(g.queueWait.Load())
}

// MemoryEnforced reports whether the query has a byte budget; spill
// decisions and hard memory grabs engage only when it does, so a query
// without MaxMemory behaves exactly as before the ledger existed.
func (g *Governor) MemoryEnforced() bool {
	return g != nil && g.limits.MaxMemory > 0
}

// MaxMemory returns the configured byte budget (0 for none).
func (g *Governor) MaxMemory() int64 {
	if g == nil {
		return 0
	}
	return g.limits.MaxMemory
}

// ReserveBytes records the planner's estimate-informed pre-reservation:
// the working memory the plan is expected to need, derived from the ELS
// estimates before execution starts. A hash-join build side that turns
// out larger than the reservation spills immediately — the estimate was
// wrong, so the budget stops trusting it — rather than growing toward
// the OOM cliff.
func (g *Governor) ReserveBytes(n int64) {
	if g == nil || n <= 0 {
		return
	}
	g.memReserved.Store(n)
}

// ReservedBytes reports the pre-reservation (0 when none was made).
func (g *Governor) ReservedBytes() int64 {
	if g == nil {
		return 0
	}
	return g.memReserved.Load()
}

// ChargeBytes adds n bytes to the working-set ledger. It is accounting,
// not enforcement: materialization points charge unconditionally so the
// ledger is exact, and the spill/grab decision points read it. Pass a
// negative n via ReleaseBytes instead.
func (g *Governor) ChargeBytes(n int64) {
	if g == nil || n == 0 {
		return
	}
	used := g.memBytes.Add(n)
	for {
		peak := g.memPeak.Load()
		if used <= peak || g.memPeak.CompareAndSwap(peak, used) {
			return
		}
	}
}

// ReleaseBytes returns n bytes to the ledger when a charged
// materialization dies (operator inputs consumed, scratch freed, spill
// buffers flushed).
func (g *Governor) ReleaseBytes(n int64) {
	if g == nil || n == 0 {
		return
	}
	g.memBytes.Add(-n)
}

// GrabBytes charges n bytes of non-spillable working memory (e.g. sort
// scratch), failing with a *MemoryError when the budget cannot cover it.
// Call sites must ReleaseBytes(n) when the scratch dies iff the grab
// succeeded.
func (g *Governor) GrabBytes(n int64, operator string) error {
	if g == nil {
		return nil
	}
	if max := g.limits.MaxMemory; max > 0 {
		if used := g.memBytes.Load(); used+n > max {
			return &MemoryError{Operator: operator, Limit: max, Used: used, Requested: n}
		}
	}
	g.ChargeBytes(n)
	return nil
}

// ShouldSpill decides whether a hash-join build side of `need` bytes goes
// to disk. It spills when the budget cannot cover the build on top of
// the current working set, or when the build exceeds the planner's
// pre-reservation — the estimate-informed early trip. The inputs (ledger
// at an operator boundary, deterministic build size, per-query
// reservation) are identical across worker counts and engines, so both
// sides of the differential harness make the same call.
func (g *Governor) ShouldSpill(need int64) bool {
	if !g.MemoryEnforced() {
		return false
	}
	if g.memBytes.Load()+need > g.limits.MaxMemory {
		return true
	}
	if r := g.memReserved.Load(); r > 0 && need > r {
		return true
	}
	return false
}

// RecordSpill counts one build side of n bytes written to spill runs.
func (g *Governor) RecordSpill(n int64) {
	if g == nil {
		return
	}
	g.spills.Add(1)
	g.spilledBytes.Add(n)
}

// MemoryUsage reports the bytes ledger: live working set, its peak, and
// the planner's pre-reservation.
func (g *Governor) MemoryUsage() (used, peak, reserved int64) {
	if g == nil {
		return 0, 0, 0
	}
	return g.memBytes.Load(), g.memPeak.Load(), g.memReserved.Load()
}

// SpillStats reports how many hash-join build sides spilled and the total
// bytes written to spill runs.
func (g *Governor) SpillStats() (count, bytes int64) {
	if g == nil {
		return 0, 0
	}
	return g.spills.Load(), g.spilledBytes.Load()
}
