package governor

import (
	"context"
	"errors"
	"testing"
)

// The bytes ledger: charges accumulate, releases return them, and the
// peak is the high-water mark regardless of later releases.
func TestMemoryLedger(t *testing.T) {
	g := New(context.Background(), Limits{MaxMemory: 1 << 20})
	g.ChargeBytes(100)
	g.ChargeBytes(300)
	if used, peak, _ := g.MemoryUsage(); used != 400 || peak != 400 {
		t.Fatalf("used=%d peak=%d after two charges, want 400/400", used, peak)
	}
	g.ReleaseBytes(300)
	g.ChargeBytes(50)
	if used, peak, _ := g.MemoryUsage(); used != 150 || peak != 400 {
		t.Fatalf("used=%d peak=%d, want 150 live with peak pinned at 400", used, peak)
	}
}

// GrabBytes is the hard allocation path: it fails with a typed
// *MemoryError (matching ErrMemory, carrying the operator and the sizes)
// when the budget cannot cover the request, and charges otherwise.
func TestGrabBytesTypedFailure(t *testing.T) {
	g := New(context.Background(), Limits{MaxMemory: 1000})
	if err := g.GrabBytes(600, "sort scratch"); err != nil {
		t.Fatal(err)
	}
	err := g.GrabBytes(600, "sort scratch")
	if !errors.Is(err, ErrMemory) {
		t.Fatalf("over-budget grab returned %v, want ErrMemory", err)
	}
	var me *MemoryError
	if !errors.As(err, &me) {
		t.Fatalf("over-budget grab returned %T, want *MemoryError", err)
	}
	if me.Operator != "sort scratch" || me.Limit != 1000 || me.Used != 600 || me.Requested != 600 {
		t.Fatalf("MemoryError fields %+v, want operator/limit/used/requested filled", me)
	}
	if errors.Is(err, ErrOverloaded) {
		t.Fatal("ErrMemory must not be retryable: it matched ErrOverloaded")
	}
	if used, _, _ := g.MemoryUsage(); used != 600 {
		t.Fatalf("failed grab leaked a charge: used=%d, want 600", used)
	}
}

// Without a budget the grab path never fails and ShouldSpill never fires:
// unbudgeted queries behave exactly as before the ledger existed.
func TestMemoryUnenforcedWithoutBudget(t *testing.T) {
	g := New(context.Background(), Limits{})
	if g.MemoryEnforced() {
		t.Fatal("zero MaxMemory reported as enforced")
	}
	if err := g.GrabBytes(1<<40, "anything"); err != nil {
		t.Fatalf("unbudgeted grab failed: %v", err)
	}
	if g.ShouldSpill(1 << 40) {
		t.Fatal("unbudgeted governor wants to spill")
	}
}

// ShouldSpill trips on either trigger: the build does not fit the budget
// on top of the live working set, or it exceeds the planner's
// estimate-informed pre-reservation (the early trip for bad estimates).
func TestShouldSpillTriggers(t *testing.T) {
	g := New(context.Background(), Limits{MaxMemory: 1000})
	if g.ShouldSpill(900) {
		t.Fatal("a build that fits an idle budget spilled")
	}
	g.ChargeBytes(400)
	if !g.ShouldSpill(900) {
		t.Fatal("400 live + 900 build fits a 1000-byte budget?")
	}
	if g.ShouldSpill(500) {
		t.Fatal("400 live + 500 build should fit")
	}
	g.ReserveBytes(300)
	if !g.ShouldSpill(500) {
		t.Fatal("a build over the 300-byte pre-reservation must trip early")
	}
	if g.ReservedBytes() != 300 {
		t.Fatalf("ReservedBytes=%d, want 300", g.ReservedBytes())
	}
}

// RecordSpill feeds the observability counters the serving layer exports.
func TestSpillStats(t *testing.T) {
	g := New(context.Background(), Limits{MaxMemory: 1000})
	if c, b := g.SpillStats(); c != 0 || b != 0 {
		t.Fatalf("fresh governor reports %d spills / %d bytes", c, b)
	}
	g.RecordSpill(4096)
	g.RecordSpill(1024)
	if c, b := g.SpillStats(); c != 2 || b != 5120 {
		t.Fatalf("SpillStats=(%d,%d), want (2,5120)", c, b)
	}
}

// The nil governor stays a universal no-op across the whole bytes API.
func TestNilGovernorMemoryNoOp(t *testing.T) {
	var g *Governor
	g.ChargeBytes(100)
	g.ReleaseBytes(100)
	g.ReserveBytes(100)
	g.RecordSpill(100)
	if err := g.GrabBytes(1<<40, "x"); err != nil {
		t.Fatal(err)
	}
	if g.MemoryEnforced() || g.ShouldSpill(1) || g.MaxMemory() != 0 {
		t.Fatal("nil governor enforces memory")
	}
	if u, p, r := g.MemoryUsage(); u != 0 || p != 0 || r != 0 {
		t.Fatalf("nil governor usage (%d,%d,%d)", u, p, r)
	}
	if c, b := g.SpillStats(); c != 0 || b != 0 {
		t.Fatalf("nil governor spill stats (%d,%d)", c, b)
	}
}

// MemoryPressureError is the shed-side twin: retryable (ErrOverloaded),
// never ErrMemory, with the tenant and sizes preserved through errors.As.
func TestMemoryPressureErrorIdentity(t *testing.T) {
	err := error(&MemoryPressureError{Tenant: "t0", Requested: 512, InUse: 256, Share: 640})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatal("pressure shed must be retryable (ErrOverloaded)")
	}
	if errors.Is(err, ErrMemory) {
		t.Fatal("pressure shed matched ErrMemory: clients would stop retrying")
	}
	var pe *MemoryPressureError
	if !errors.As(err, &pe) || pe.Tenant != "t0" || pe.Requested != 512 {
		t.Fatalf("pressure error lost its fields: %+v", pe)
	}
}
