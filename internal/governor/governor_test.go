package governor

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNilGovernorIsNoOp(t *testing.T) {
	var g *Governor
	if err := g.Err(); err != nil {
		t.Fatal(err)
	}
	if err := g.TickTuples(1 << 40); err != nil {
		t.Fatal(err)
	}
	if err := g.TickRows(1 << 40); err != nil {
		t.Fatal(err)
	}
	if err := g.TickPlans(1 << 40); err != nil {
		t.Fatal(err)
	}
	if g.Context() == nil {
		t.Fatal("nil governor must return a usable context")
	}
}

func TestCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := New(ctx, Limits{})
	err := g.Err()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if errors.Is(err, ErrBudgetExceeded) {
		t.Fatal("canceled must not match ErrBudgetExceeded")
	}
}

func TestContextDeadlineMapsToBudget(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	g := New(ctx, Limits{})
	err := g.Err()
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Resource != "wall-clock" {
		t.Fatalf("want wall-clock BudgetError, got %#v", err)
	}
}

func TestTimeoutLimit(t *testing.T) {
	g := New(context.Background(), Limits{Timeout: time.Nanosecond})
	time.Sleep(time.Millisecond)
	err := g.Err()
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
}

func TestTupleBudget(t *testing.T) {
	g := New(context.Background(), Limits{MaxTuples: 10})
	var err error
	for i := 0; i < 11 && err == nil; i++ {
		err = g.TickTuples(1)
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Resource != "tuples" || be.Limit != 10 {
		t.Fatalf("unexpected budget error %#v", be)
	}
}

func TestRowAndPlanBudgets(t *testing.T) {
	g := New(context.Background(), Limits{MaxRows: 1})
	if err := g.TickRows(1); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	if err := g.TickRows(1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	g = New(context.Background(), Limits{MaxPlans: 2})
	if err := g.TickPlans(3); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatal("plan budget not enforced")
	}
}

func TestAmortizedCancellationDetection(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx, Limits{})
	cancel()
	// The poll is amortized: within at most 2×checkInterval ticks the
	// cancellation must surface.
	var err error
	for i := 0; i < 2*checkInterval && err == nil; i++ {
		err = g.TickTuples(1)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("cancellation never surfaced: %v", err)
	}
}

func TestUsage(t *testing.T) {
	g := New(context.Background(), Limits{})
	g.TickTuples(5)
	g.TickRows(2)
	g.TickPlans(1)
	tu, ro, pl := g.Usage()
	if tu != 5 || ro != 2 || pl != 1 {
		t.Fatalf("usage = %d %d %d", tu, ro, pl)
	}
}

func TestEnforced(t *testing.T) {
	if (Limits{}).Enforced() {
		t.Fatal("zero limits must not be enforced")
	}
	if !(Limits{MaxTuples: 1}).Enforced() {
		t.Fatal("MaxTuples must count as enforced")
	}
	if (Limits{Workers: 8}).Enforced() {
		t.Fatal("Workers is a parallelism degree, not a budget")
	}
}

func TestWorkers(t *testing.T) {
	var nilGov *Governor
	if nilGov.Workers() != 0 {
		t.Fatal("nil governor must report 0 (default) workers")
	}
	if got := New(context.Background(), Limits{Workers: 3}).Workers(); got != 3 {
		t.Fatalf("Workers() = %d, want 3", got)
	}
}

// Concurrent ticking from many goroutines must account every tuple exactly
// once: parallel operator workers share one governor per query.
func TestConcurrentTickAccountingExact(t *testing.T) {
	const goroutines, ticks = 8, 5000
	g := New(context.Background(), Limits{})
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < ticks; i++ {
				g.TickTuples(1)
				g.TickRows(1)
				g.TickPlans(1)
			}
		}()
	}
	wg.Wait()
	tu, ro, pl := g.Usage()
	if want := int64(goroutines * ticks); tu != want || ro != want || pl != want {
		t.Fatalf("usage = %d %d %d, want %d each", tu, ro, pl, want)
	}
}

// When concurrent workers overrun a budget, at least one of them must see
// the typed budget error — the single stop decision is then made by the
// pool that drains them.
func TestConcurrentBudgetTripsOnce(t *testing.T) {
	const goroutines = 8
	g := New(context.Background(), Limits{MaxTuples: 1000})
	var wg sync.WaitGroup
	var tripped atomic.Int64
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if err := g.TickTuples(1); err != nil {
					if !errors.Is(err, ErrBudgetExceeded) {
						t.Errorf("want ErrBudgetExceeded, got %v", err)
					}
					tripped.Add(1)
					return
				}
			}
		}()
	}
	wg.Wait()
	if tripped.Load() == 0 {
		t.Fatal("budget overrun never detected by any worker")
	}
	tu, _, _ := g.Usage()
	if want := int64(1000 + goroutines); tu > want {
		t.Fatalf("tuples charged = %d; overshoot must be bounded by worker count (≤ %d)", tu, want)
	}
}

func TestInternalError(t *testing.T) {
	err := NewInternal("boom", []byte("stack"))
	if !errors.Is(err, ErrInternal) {
		t.Fatal("InternalError must match ErrInternal")
	}
	var ie *InternalError
	if !errors.As(err, &ie) || ie.Value != "boom" || string(ie.Stack) != "stack" {
		t.Fatalf("unexpected internal error %#v", ie)
	}
}
