package executor

import (
	"runtime"

	"repro/internal/optimizer"
	"repro/internal/storage"
	"repro/internal/workpool"
)

// Fault-injection probe points inside parallel worker goroutines. They
// fire at the start of each chunk or partition task, so tests can inject
// failures and panics into the middle of a parallel operator and assert
// clean shutdown.
const (
	// PointScanChunk fires in the worker goroutine at the start of each
	// parallel scan chunk.
	PointScanChunk = "executor.scan.chunk"
	// PointJoinChunk fires in the worker goroutine at the start of each
	// parallel join task: a build-side partitioning chunk, a probe chunk,
	// or a nested-loops outer chunk.
	PointJoinChunk = "executor.join.chunk"
)

// minChunkRows is the smallest chunk a parallel operator will create:
// below this, per-chunk bookkeeping dominates the row work.
const minChunkRows = 64

// resolveWorkers returns the parallelism degree for this executor:
// SetWorkers wins, then the governor's Limits.Workers, then GOMAXPROCS.
func (e *Executor) resolveWorkers() int {
	if e.workers > 0 {
		return e.workers
	}
	if w := e.gov.Workers(); w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// chunkRanges splits [0, n) into contiguous [start, end) ranges of at
// least minChunkRows (except the remainder), targeting a few chunks per
// worker so stragglers rebalance.
func chunkRanges(n, workers int) [][2]int {
	if n <= 0 {
		return nil
	}
	target := workers * 4
	size := (n + target - 1) / target
	if size < minChunkRows {
		size = minChunkRows
	}
	out := make([][2]int, 0, (n+size-1)/size)
	for start := 0; start < n; start += size {
		end := start + size
		if end > n {
			end = n
		}
		out = append(out, [2]int{start, end})
	}
	return out
}

// mergeChunks concatenates per-chunk output tables in chunk order (so the
// parallel result has exactly the serial row order) and folds the
// per-chunk work counters into stats.
func mergeChunks(outs []*storage.Table, locals []Stats, stats *Stats) (*storage.Table, error) {
	out := outs[0]
	for _, t := range outs[1:] {
		if err := out.AppendTable(t); err != nil {
			return nil, err
		}
	}
	for i := range locals {
		stats.Add(locals[i])
	}
	return out, nil
}

// parallelScan filters the base table's row chunks on the worker pool.
// Each chunk writes a local output; chunk outputs are concatenated in
// chunk order, so the result is row-for-row identical to the serial scan,
// and every chunk ticks the shared governor so budget accounting stays
// exact.
func (e *Executor) parallelScan(s *optimizer.Scan, base *storage.Table, schema *storage.Schema,
	filter compiled, orFilter []compiledDisj, workers int, ranges [][2]int, stats *Stats) (*storage.Table, error) {
	outs := make([]*storage.Table, len(ranges))
	locals := make([]Stats, len(ranges))
	err := workpool.Run(workers, len(ranges), func(i int) error {
		if err := e.probe(PointScanChunk); err != nil {
			return err
		}
		outs[i] = storage.NewTable(s.Alias, schema)
		return e.scanRange(base, ranges[i][0], ranges[i][1], filter, orFilter, outs[i], &locals[i])
	})
	if err != nil {
		return nil, err
	}
	return mergeChunks(outs, locals, stats)
}

// buildEntry is one build-side row routed to a hash partition, carrying
// its precomputed key so the partition map build never re-reads the table.
type buildEntry struct {
	row int
	key string
}

// partitionOf routes a join key to one of p partitions (FNV-1a).
func partitionOf(key string, p int) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(p))
}

// partitionedHashJoin is the parallel hash join: the build side is
// partitioned by key hash (chunk-parallel partitioning, then one map
// built per partition in parallel), and probe-side chunks run on the
// worker pool, each probing the read-only partition maps.
//
// Determinism: per-chunk partition lists are concatenated in chunk order,
// so each partition map's per-key row lists keep base row order; probe
// chunks emit in left-row order and are concatenated in chunk order. The
// output is therefore row-for-row identical to the serial hash join, and
// so are the tuple/comparison counters.
func (e *Executor) partitionedHashJoin(left, right *storage.Table, lKey, rKey int,
	residual compiled, outSchema *storage.Schema, workers int, stats *Stats) (*storage.Table, error) {
	parts := workers

	// Phase 1: route build rows to partitions, chunk-parallel.
	buildRanges := chunkRanges(right.NumRows(), workers)
	chunkParts := make([][][]buildEntry, len(buildRanges))
	buildStats := make([]Stats, len(buildRanges))
	err := workpool.Run(workers, len(buildRanges), func(i int) error {
		if err := e.probe(PointJoinChunk); err != nil {
			return err
		}
		local := make([][]buildEntry, parts)
		for r := buildRanges[i][0]; r < buildRanges[i][1]; r++ {
			if err := e.visit(&buildStats[i]); err != nil {
				return err
			}
			v := right.Value(r, rKey)
			if v.IsNull() {
				continue
			}
			k := v.Key()
			p := partitionOf(k, parts)
			local[p] = append(local[p], buildEntry{row: r, key: k})
		}
		chunkParts[i] = local
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range buildStats {
		stats.Add(buildStats[i])
	}

	// Phase 2: build one hash map per partition, partition-parallel.
	builds := make([]map[string][]int, parts)
	err = workpool.Run(workers, parts, func(p int) error {
		n := 0
		for _, ch := range chunkParts {
			n += len(ch[p])
		}
		m := make(map[string][]int, n)
		for _, ch := range chunkParts {
			for _, en := range ch[p] {
				m[en.key] = append(m[en.key], en.row)
			}
		}
		builds[p] = m
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 3: probe left chunks against the read-only partition maps.
	probeRanges := chunkRanges(left.NumRows(), workers)
	outs := make([]*storage.Table, len(probeRanges))
	probeStats := make([]Stats, len(probeRanges))
	err = workpool.Run(workers, len(probeRanges), func(i int) error {
		if err := e.probe(PointJoinChunk); err != nil {
			return err
		}
		out := storage.NewTable("join", outSchema)
		row := make([]storage.Value, 0, outSchema.NumColumns())
		for l := probeRanges[i][0]; l < probeRanges[i][1]; l++ {
			if err := e.visit(&probeStats[i]); err != nil {
				return err
			}
			v := left.Value(l, lKey)
			if v.IsNull() {
				continue
			}
			k := v.Key()
			for _, r := range builds[partitionOf(k, parts)][k] {
				row = left.AppendRowTo(row[:0], l)
				row = right.AppendRowTo(row, r)
				ok, err := residual.eval(row, &probeStats[i])
				if err != nil {
					return err
				}
				if ok {
					if err := e.emit(out, row); err != nil {
						return err
					}
				}
			}
		}
		outs[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(outs) == 0 {
		return storage.NewTable("join", outSchema), nil
	}
	return mergeChunks(outs, probeStats, stats)
}

// parallelNestedLoop runs the nested-loops outer rows in chunks on the
// worker pool; each chunk re-scans (or re-reads) the shared inner input,
// exactly as the serial operator does per outer row. Chunk outputs are
// concatenated in chunk order, so the result and the work counters are
// identical to the serial nested loop.
func (e *Executor) parallelNestedLoop(left *storage.Table, in nlInner, join compiled,
	outSchema *storage.Schema, workers int, ranges [][2]int, stats *Stats) (*storage.Table, error) {
	outs := make([]*storage.Table, len(ranges))
	locals := make([]Stats, len(ranges))
	err := workpool.Run(workers, len(ranges), func(i int) error {
		if err := e.probe(PointJoinChunk); err != nil {
			return err
		}
		outs[i] = storage.NewTable("join", outSchema)
		return e.nlRange(left, in, join, outs[i], ranges[i][0], ranges[i][1], &locals[i])
	})
	if err != nil {
		return nil, err
	}
	return mergeChunks(outs, locals, stats)
}
