package executor

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cardest"
	"repro/internal/catalog"
	"repro/internal/durable"
	"repro/internal/expr"
	"repro/internal/faultinject"
	"repro/internal/governor"
	"repro/internal/optimizer"
	"repro/internal/storage"
)

// spillPlan builds a two-table equijoin whose build side is far larger
// than the tiny byte budget the tests run under, planned hash-only so the
// spill path is the only way through.
func spillPlan(t *testing.T) (*catalog.Catalog, optimizer.Plan) {
	t.Helper()
	cat := buildCatalog(t, chainSpecs(200, 260)...)
	tabs := []cardest.TableRef{{Table: "T0"}, {Table: "T1"}}
	preds := []expr.Predicate{expr.NewJoin(ref("T0", "k"), expr.OpEQ, ref("T1", "k"))}
	est, err := cardest.New(cat, tabs, preds, cardest.ELS())
	if err != nil {
		t.Fatal(err)
	}
	o, err := optimizer.New(est, optimizer.Options{Methods: []optimizer.JoinMethod{optimizer.HashJoin}})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := o.BestPlan()
	if err != nil {
		t.Fatal(err)
	}
	return cat, plan
}

// execSpill runs the plan under the given byte budget (0 = unbudgeted)
// and returns the result, the governor's tuple/row charges, and the
// governor for spill/memory introspection.
func execSpill(t *testing.T, cat *catalog.Catalog, plan optimizer.Plan, workers int, budget int64, dir string) (*Result, [2]int64, *governor.Governor) {
	t.Helper()
	gov := governor.New(context.Background(), governor.Limits{Workers: workers, MaxMemory: budget})
	exec := NewGoverned(cat, gov)
	exec.SetSpillDir(dir)
	res, err := exec.Execute(plan)
	if err != nil {
		t.Fatalf("workers=%d budget=%d: %v", workers, budget, err)
	}
	tuples, rows, _ := gov.Usage()
	return res, [2]int64{tuples, rows}, gov
}

// execSpillErr is execSpill for the fault tests: it returns the error
// instead of failing on it.
func execSpillErr(cat *catalog.Catalog, plan optimizer.Plan, budget int64, dir string) error {
	gov := governor.New(context.Background(), governor.Limits{Workers: 1, MaxMemory: budget})
	exec := NewGoverned(cat, gov)
	exec.SetSpillDir(dir)
	_, err := exec.Execute(plan)
	return err
}

// listSpillFiles returns every *.spill path under dir (any depth).
func listSpillFiles(t *testing.T, dir string) []string {
	t.Helper()
	var files []string
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && filepath.Ext(path) == SpillSuffix {
			files = append(files, path)
		}
		return nil
	})
	return files
}

// The spilled join must be bit-identical to the unbudgeted in-memory
// join — same rows in the same order, same TuplesScanned and Comparisons,
// same governor tuple/row charges — at every worker count, and it must
// clean its runs up on the way out.
func TestSpillHashJoinBitIdentical(t *testing.T) {
	cat, plan := spillPlan(t)
	dir := t.TempDir()
	oracle, oracleUsage, _ := execSpill(t, cat, plan, 1, 0, dir)
	for _, workers := range []int{1, 4, 8} {
		res, usage, gov := execSpill(t, cat, plan, workers, 2048, dir)
		if count, _ := gov.SpillStats(); count == 0 {
			t.Fatalf("workers=%d: the 2 KiB budget did not force a spill", workers)
		}
		if res.Stats.RowsProduced != oracle.Stats.RowsProduced ||
			res.Stats.TuplesScanned != oracle.Stats.TuplesScanned ||
			res.Stats.Comparisons != oracle.Stats.Comparisons {
			t.Fatalf("workers=%d: spilled stats (%d rows, %d tuples, %d cmp) vs in-memory (%d, %d, %d)",
				workers, res.Stats.RowsProduced, res.Stats.TuplesScanned, res.Stats.Comparisons,
				oracle.Stats.RowsProduced, oracle.Stats.TuplesScanned, oracle.Stats.Comparisons)
		}
		if usage != oracleUsage {
			t.Fatalf("workers=%d: governor charges %v (spilled) vs %v (in-memory)", workers, usage, oracleUsage)
		}
		for r := 0; r < oracle.Table.NumRows(); r++ {
			for c := 0; c < oracle.Table.Schema().NumColumns(); c++ {
				if storage.Compare(oracle.Table.Value(r, c), res.Table.Value(r, c)) != 0 {
					t.Fatalf("workers=%d: row %d col %d differs: %s vs %s",
						workers, r, c, res.Table.Value(r, c), oracle.Table.Value(r, c))
				}
			}
		}
	}
	if files := listSpillFiles(t, dir); len(files) != 0 {
		t.Fatalf("spill runs leaked after clean completion: %v", files)
	}
}

// A failure injected at the spill-write probe must surface as a typed
// ErrMemory — the query could not be served within its byte budget — with
// no partial result and no leaked run files.
func TestSpillWriteFault(t *testing.T) {
	cat, plan := spillPlan(t)
	dir := t.TempDir()
	boom := fmt.Errorf("disk full")
	faultinject.Enable(PointSpillWrite, faultinject.Fault{Err: boom})
	defer faultinject.Reset()
	err := execSpillErr(cat, plan, 2048, dir)
	if !errors.Is(err, governor.ErrMemory) {
		t.Fatalf("spill write fault surfaced as %v, want ErrMemory", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("spill write fault lost its cause: %v", err)
	}
	if files := listSpillFiles(t, dir); len(files) != 0 {
		t.Fatalf("spill runs leaked after write fault: %v", files)
	}
}

// A short write (torn run file) behaves as a mid-write crash: typed
// ErrMemory wrapping the simulated-crash sentinel; the per-query spill
// directory (and the torn file) die with the failed query's cleanup.
func TestSpillWriteTorn(t *testing.T) {
	cat, plan := spillPlan(t)
	dir := t.TempDir()
	faultinject.Enable(PointSpillWrite, faultinject.Fault{Payload: faultinject.DiskFault{ShortWrite: 6}})
	defer faultinject.Reset()
	err := execSpillErr(cat, plan, 2048, dir)
	if !errors.Is(err, governor.ErrMemory) || !errors.Is(err, faultinject.ErrCrash) {
		t.Fatalf("torn spill write surfaced as %v, want ErrMemory wrapping ErrCrash", err)
	}
	if files := listSpillFiles(t, dir); len(files) != 0 {
		t.Fatalf("torn run survived the failed query's cleanup: %v", files)
	}
}

// A failure injected at the spill-read probe must surface as ErrMemory
// with nothing left behind.
func TestSpillReadFault(t *testing.T) {
	cat, plan := spillPlan(t)
	dir := t.TempDir()
	faultinject.Enable(PointSpillRead, faultinject.Fault{Err: fmt.Errorf("read gone bad")})
	defer faultinject.Reset()
	err := execSpillErr(cat, plan, 2048, dir)
	if !errors.Is(err, governor.ErrMemory) {
		t.Fatalf("spill read fault surfaced as %v, want ErrMemory", err)
	}
	if files := listSpillFiles(t, dir); len(files) != 0 {
		t.Fatalf("spill runs leaked after read fault: %v", files)
	}
}

// A crash injected during cleanup leaves the runs on disk (that is the
// point — a real crash would) and surfaces typed; the recovery sweep
// (durable.SweepSpills, run by els.Open) must then collect the orphans.
func TestSpillRemoveFaultThenSweep(t *testing.T) {
	cat, plan := spillPlan(t)
	// Mirror the durable layout exactly: queries spill into per-query
	// temp dirs under <dataDir>/spill, the tree SweepSpills(dataDir)
	// collects (els.Open wires the same path).
	dataDir := t.TempDir()
	spillDir := filepath.Join(dataDir, durable.SpillDirName)
	faultinject.Enable(PointSpillRemove, faultinject.Fault{Err: faultinject.ErrCrash})
	defer faultinject.Reset()
	err := execSpillErr(cat, plan, 2048, spillDir)
	if !errors.Is(err, governor.ErrMemory) {
		t.Fatalf("spill remove fault surfaced as %v, want ErrMemory", err)
	}
	orphans := listSpillFiles(t, dataDir)
	if len(orphans) == 0 {
		t.Fatal("remove fault left no orphaned runs — the crash model has no teeth")
	}
	faultinject.Reset()
	durable.SweepSpills(dataDir)
	if files := listSpillFiles(t, dataDir); len(files) != 0 {
		t.Fatalf("recovery sweep missed orphaned runs: %v", files)
	}
}

// A corrupted run (bit-flip on disk) must be caught by the frame checksum
// and surface as ErrMemory, never as wrong rows.
func TestSpillCorruptRun(t *testing.T) {
	cat, plan := spillPlan(t)
	dir := t.TempDir()
	// Arm the read probe with a payload-only fault so Fire reports hits
	// without failing; use it to corrupt the first run before it is read.
	corrupted := false
	faultinject.Reset()
	// Instead of a probe, corrupt between phases: run once with a remove
	// fault to keep the runs, corrupt one, and decode it directly.
	faultinject.Enable(PointSpillRemove, faultinject.Fault{Err: faultinject.ErrCrash})
	_ = execSpillErr(cat, plan, 2048, dir)
	faultinject.Reset()
	files := listSpillFiles(t, dir)
	if len(files) == 0 {
		t.Fatal("no runs to corrupt")
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 12 {
		data[12] ^= 0x40
		corrupted = true
	}
	if !corrupted {
		t.Fatalf("run file too short to corrupt: %d bytes", len(data))
	}
	if err := os.WriteFile(files[0], data, 0o644); err != nil { //atomicwrite:allow test corrupts a spill run in place
		t.Fatal(err)
	}
	gov := governor.New(context.Background(), governor.Limits{MaxMemory: 2048})
	exec := NewGoverned(catalog.New(), gov)
	if _, rerr := exec.readSpillRun(files[0]); !errors.Is(rerr, governor.ErrMemory) || !errors.Is(rerr, errSpillCorrupt) {
		t.Fatalf("corrupt run read back as %v, want ErrMemory wrapping the corruption sentinel", rerr)
	}
}

// Unbudgeted queries must never touch the spill path, whatever the data
// size: the budget is the only trigger.
func TestNoSpillWithoutBudget(t *testing.T) {
	cat, plan := spillPlan(t)
	dir := t.TempDir()
	_, _, gov := execSpill(t, cat, plan, 1, 0, dir)
	if count, bytes := gov.SpillStats(); count != 0 || bytes != 0 {
		t.Fatalf("unbudgeted query spilled: %d spills, %d bytes", count, bytes)
	}
	if files := listSpillFiles(t, dir); len(files) != 0 {
		t.Fatalf("unbudgeted query left spill files: %v", files)
	}
}

// A datagen spec sanity check for the spill tests: the generated build
// side really is bigger than the budget the tests use.
func TestSpillFixtureOversized(t *testing.T) {
	cat := buildCatalog(t, chainSpecs(200, 260)...)
	if b := cat.Data("T1").ApproxBytes(); b <= 2048 {
		t.Fatalf("fixture build side is only %d bytes; the spill tests' 2 KiB budget would not engage", b)
	}
}
