// Package executor runs query evaluation plans against the in-memory
// tables registered in a catalog. Execution is materialized
// operator-at-a-time except for the inner input of a nested-loops join,
// which — as in the classic System R / Starburst formulation the cost model
// assumes — is re-scanned from its base table for every outer row. That
// faithfulness is what lets the Section 8 experiment reproduce: a plan
// chosen under a drastic underestimate pays the re-scans its optimizer
// believed were free.
//
// Scans, hash joins, and nested-loops joins run in parallel on a bounded
// worker pool (see internal/workpool) when the worker count — SetWorkers,
// the governor's Limits.Workers, or GOMAXPROCS, in that order — exceeds
// one. Parallel operators are deterministic: chunk outputs concatenate in
// chunk order, so results are row-for-row identical to serial execution
// and the work counters match exactly; the shared governor's atomic
// budgets stay exact under concurrency. Sort-merge and index-nested-loops
// run serially (their cost is dominated by sorting and index probes).
//
// The executor counts the base-table tuples it visits and the predicate
// evaluations it performs, so experiments can report deterministic work
// measures alongside wall-clock times.
package executor

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/faultinject"
	"repro/internal/governor"
	"repro/internal/optimizer"
	"repro/internal/storage"
)

// Fault-injection probe points of the executor.
const (
	// PointScan fires when a base-table scan starts.
	PointScan = "executor.scan"
	// PointJoin fires when a join operator starts.
	PointJoin = "executor.join"
)

// Stats accumulates execution work counters.
type Stats struct {
	// TuplesScanned counts base-table and materialized-input tuples visited.
	TuplesScanned int64
	// Comparisons counts predicate evaluations and merge/sort key
	// comparisons.
	Comparisons int64
	// RowsProduced is the root operator's output cardinality.
	RowsProduced int64
	// Elapsed is the wall-clock execution time.
	Elapsed time.Duration
}

// Add merges other into s.
func (s *Stats) Add(other Stats) {
	s.TuplesScanned += other.TuplesScanned
	s.Comparisons += other.Comparisons
	s.RowsProduced += other.RowsProduced
	s.Elapsed += other.Elapsed
}

// NodeActual compares one plan node's estimated output cardinality with
// what execution actually produced — the data behind EXPLAIN ANALYZE
// output and the estimate-accuracy experiments.
type NodeActual struct {
	// Node is the node's one-line description.
	Node string
	// Depth is the node's depth in the plan tree (root = 0).
	Depth int
	// EstRows is the optimizer's estimate.
	EstRows float64
	// ActualRows is the materialized output size. Nodes that are never
	// materialized (the re-scanned inner of a nested-loops join) report -1.
	ActualRows int64
}

// Result is the outcome of executing a plan.
type Result struct {
	// Table holds the materialized output rows.
	Table *storage.Table
	// Stats are the work counters of the whole execution.
	Stats Stats
	// Nodes holds per-node estimated-vs-actual cardinalities in depth-first
	// (root-first) order.
	Nodes []NodeActual
}

// Executor runs plans against the data tables of one catalog.
type Executor struct {
	cat      *catalog.Catalog
	gov      *governor.Governor
	workers  int
	rowOnly  bool   // SetColumnar(false): force the row-at-a-time engine
	spillDir string // SetSpillDir: parent of per-query spill dirs
}

// New creates an executor over the catalog's registered data tables.
func New(cat *catalog.Catalog) *Executor {
	return &Executor{cat: cat}
}

// NewGoverned is New with a resource governor: operator inner loops charge
// the tuple budget per tuple visited and the row budget per row
// materialized, and poll cancellation periodically. gov may be nil.
func NewGoverned(cat *catalog.Catalog, gov *governor.Governor) *Executor {
	return &Executor{cat: cat, gov: gov}
}

// SetWorkers overrides the executor's parallelism degree: n ≤ 0 restores
// the default (the governor's Limits.Workers, else GOMAXPROCS); 1 forces
// serial execution. Call before Execute, not concurrently with it.
func (e *Executor) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	e.workers = n
}

// visit charges one visited tuple to both the work counters and the
// governor's tuple budget.
func (e *Executor) visit(stats *Stats) error {
	stats.TuplesScanned++
	return e.gov.TickTuples(1)
}

// probe consults a fault-injection point with the governor's context so
// injected latency is slept out interruptibly: a canceled query aborts a
// latency fault immediately (mapped through the error taxonomy) instead
// of delaying drain.
func (e *Executor) probe(point string) error {
	if err := faultinject.CheckCtx(e.gov.Context(), point); err != nil {
		if gerr := e.gov.Err(); gerr != nil {
			return gerr
		}
		return err
	}
	return nil
}

// emit appends a row to an operator output, charging the materialized-row
// budget.
func (e *Executor) emit(out *storage.Table, row []storage.Value) error {
	if err := e.gov.TickRows(1); err != nil {
		return err
	}
	return out.AppendRow(row...)
}

// Execute runs the plan and returns the materialized result, including
// per-node estimated-vs-actual cardinalities.
func (e *Executor) Execute(plan optimizer.Plan) (*Result, error) {
	if plan == nil {
		return nil, fmt.Errorf("executor: nil plan")
	}
	start := time.Now()
	var stats Stats
	rec := &recorder{}
	tbl, err := e.run(plan, &stats, rec, 0)
	if err != nil {
		return nil, err
	}
	stats.RowsProduced = int64(tbl.NumRows())
	stats.Elapsed = time.Since(start)
	return &Result{Table: tbl, Stats: stats, Nodes: rec.nodes}, nil
}

// recorder accumulates NodeActual entries in pre-order.
type recorder struct {
	nodes []NodeActual
}

// reserve appends a pending entry for the node and returns its index.
func (r *recorder) reserve(p optimizer.Plan, depth int) int {
	r.nodes = append(r.nodes, NodeActual{
		Node: p.String(), Depth: depth, EstRows: p.EstRows(), ActualRows: -1,
	})
	return len(r.nodes) - 1
}

// fill sets the actual output size of a reserved entry.
func (r *recorder) fill(idx int, actual int64) {
	r.nodes[idx].ActualRows = actual
}

// Count runs the plan and returns only the output row count (COUNT(*)).
func (e *Executor) Count(plan optimizer.Plan) (int64, Stats, error) {
	res, err := e.Execute(plan)
	if err != nil {
		return 0, Stats{}, err
	}
	return res.Stats.RowsProduced, res.Stats, nil
}

func (e *Executor) run(plan optimizer.Plan, stats *Stats, rec *recorder, depth int) (*storage.Table, error) {
	idx := rec.reserve(plan, depth)
	var tbl *storage.Table
	var err error
	switch n := plan.(type) {
	case *optimizer.Scan:
		tbl, err = e.runScan(n, stats)
	case *optimizer.Join:
		tbl, err = e.runJoin(n, stats, rec, depth)
	default:
		return nil, fmt.Errorf("executor: unknown plan node %T", plan)
	}
	if err != nil {
		return nil, err
	}
	// Charge the materialized operator output to the bytes ledger. The
	// charge happens once per node at its boundary — identical totals
	// whichever engine or worker count produced the rows — which is what
	// keeps downstream spill decisions deterministic. Inputs consumed by
	// a join are released in runJoin; output size itself is bounded by
	// MaxRows, not MaxMemory.
	if e.gov != nil {
		e.gov.ChargeBytes(tbl.ApproxBytes())
	}
	rec.fill(idx, int64(tbl.NumRows()))
	return tbl, nil
}

// releaseTables returns consumed input materializations to the bytes
// ledger once the operator that read them has produced its output.
func (e *Executor) releaseTables(tbls ...*storage.Table) {
	if e.gov == nil {
		return
	}
	for _, t := range tbls {
		if t != nil {
			e.gov.ReleaseBytes(t.ApproxBytes())
		}
	}
}

// qualifiedSchema builds the output schema of a scan: every column renamed
// to "alias.column" so join results never collide and predicates resolve by
// their qualified names.
func qualifiedSchema(alias string, in *storage.Schema) (*storage.Schema, error) {
	cols := make([]storage.ColumnDef, in.NumColumns())
	for i := 0; i < in.NumColumns(); i++ {
		c := in.Column(i)
		cols[i] = storage.ColumnDef{Name: alias + "." + c.Name, Type: c.Type}
	}
	return storage.NewSchema(cols...)
}

func (e *Executor) runScan(s *optimizer.Scan, stats *Stats) (*storage.Table, error) {
	if err := e.probe(PointScan); err != nil {
		return nil, err
	}
	base := e.cat.Data(s.Table)
	if base == nil {
		return nil, fmt.Errorf("executor: no data registered for table %q", s.Table)
	}
	schema, err := qualifiedSchema(s.Alias, base.Schema())
	if err != nil {
		return nil, err
	}
	filter, err := compileAll(s.Filter, schema)
	if err != nil {
		return nil, err
	}
	orFilter, err := compileDisjunctions(s.FilterOr, schema)
	if err != nil {
		return nil, err
	}
	workers := e.resolveWorkers()
	ranges := chunkRanges(base.NumRows(), workers)
	if workers > 1 && len(ranges) > 1 {
		return e.parallelScan(s, base, schema, filter, orFilter, workers, ranges, stats)
	}
	out := storage.NewTable(s.Alias, schema)
	if err := e.scanRange(base, 0, base.NumRows(), filter, orFilter, out, stats); err != nil {
		return nil, err
	}
	return out, nil
}

// scanRange filters base rows [start, end) into out, charging the visit
// and row budgets. It is the shared body of the serial scan and of one
// parallel scan chunk (then out and stats are chunk-local, the governor
// shared). It dispatches to the vectorized or the row-at-a-time body;
// both produce identical rows, counters, and governor charges.
func (e *Executor) scanRange(base *storage.Table, start, end int, filter compiled,
	orFilter []compiledDisj, out *storage.Table, stats *Stats) error {
	if e.useColumnar() {
		return e.scanRangeColumnar(base, start, end, filter, orFilter, out, stats)
	}
	return e.scanRangeRows(base, start, end, filter, orFilter, out, stats)
}

// scanRangeRows is the row-at-a-time scan body.
func (e *Executor) scanRangeRows(base *storage.Table, start, end int, filter compiled,
	orFilter []compiledDisj, out *storage.Table, stats *Stats) error {
	buf := make([]storage.Value, 0, out.Schema().NumColumns())
	for r := start; r < end; r++ {
		if err := e.visit(stats); err != nil {
			return err
		}
		buf = base.AppendRowTo(buf[:0], r)
		ok, err := filter.eval(buf, stats)
		if err != nil {
			return err
		}
		if !ok || !evalDisjunctions(orFilter, buf, stats) {
			continue
		}
		if err := e.emit(out, buf); err != nil {
			return err
		}
	}
	return nil
}

func (e *Executor) runJoin(j *optimizer.Join, stats *Stats, rec *recorder, depth int) (*storage.Table, error) {
	if err := e.probe(PointJoin); err != nil {
		return nil, err
	}
	left, err := e.run(j.Left, stats, rec, depth+1)
	if err != nil {
		return nil, err
	}
	switch j.Method {
	case optimizer.NestedLoop:
		out, err := e.nestedLoop(j, left, stats, rec, depth)
		if err != nil {
			return nil, err
		}
		e.releaseTables(left)
		return out, nil
	case optimizer.SortMerge:
		right, err := e.run(j.Right, stats, rec, depth+1)
		if err != nil {
			return nil, err
		}
		out, err := e.sortMerge(j, left, right, stats)
		if err != nil {
			return nil, err
		}
		e.releaseTables(left, right)
		return out, nil
	case optimizer.HashJoin:
		right, err := e.run(j.Right, stats, rec, depth+1)
		if err != nil {
			return nil, err
		}
		out, err := e.hashJoin(j, left, right, stats)
		if err != nil {
			return nil, err
		}
		e.releaseTables(left, right)
		return out, nil
	case optimizer.IndexNL:
		out, err := e.indexNL(j, left, stats, rec, depth)
		if err != nil {
			return nil, err
		}
		e.releaseTables(left)
		return out, nil
	default:
		return nil, fmt.Errorf("executor: unknown join method %v", j.Method)
	}
}

// indexNL probes an ordered index on the inner base table's join column
// once per outer row. The inner is never materialized; the scan filter and
// residual join predicates qualify each fetched row.
func (e *Executor) indexNL(j *optimizer.Join, left *storage.Table, stats *Stats, rec *recorder, depth int) (*storage.Table, error) {
	scan, ok := j.Right.(*optimizer.Scan)
	if !ok {
		return nil, fmt.Errorf("executor: index nested-loops requires a base-table inner")
	}
	if j.IndexColumn == "" {
		return nil, fmt.Errorf("executor: index nested-loops plan lacks an index column")
	}
	ix := e.cat.Index(scan.Table, j.IndexColumn)
	if ix == nil {
		return nil, fmt.Errorf("executor: no index on %s.%s", scan.Table, j.IndexColumn)
	}
	base := ix.Table()
	innerSchema, err := qualifiedSchema(scan.Alias, base.Schema())
	if err != nil {
		return nil, err
	}
	rec.reserve(scan, depth+1) // never materialized
	innerFilter, err := compileAll(scan.Filter, innerSchema)
	if err != nil {
		return nil, err
	}
	innerOrFilter, err := compileDisjunctions(scan.FilterOr, innerSchema)
	if err != nil {
		return nil, err
	}
	outSchema, err := joinSchema(left.Schema(), innerSchema)
	if err != nil {
		return nil, err
	}
	// The probe key: the predicate over IndexColumn; the rest are residual.
	var keyPred *expr.Predicate
	var residuals []expr.Predicate
	for i, p := range j.Preds {
		if keyPred == nil && p.Op == expr.OpEQ && p.RightIsColumn &&
			((columnMatches(p.Left, scan.Alias, j.IndexColumn)) ||
				(columnMatches(p.Right, scan.Alias, j.IndexColumn))) {
			keyPred = &j.Preds[i]
			continue
		}
		residuals = append(residuals, p)
	}
	if keyPred == nil {
		return nil, fmt.Errorf("executor: no equality predicate over index column %s.%s", scan.Alias, j.IndexColumn)
	}
	// Outer side of the key predicate.
	outerRef := keyPred.Left
	if columnMatches(keyPred.Left, scan.Alias, j.IndexColumn) {
		outerRef = keyPred.Right
	}
	outerKey := left.Schema().ColumnIndex(outerRef.Table + "." + outerRef.Column)
	if outerKey < 0 {
		return nil, fmt.Errorf("executor: probe column %s missing from outer input", outerRef)
	}
	residual, err := compileAll(residuals, outSchema)
	if err != nil {
		return nil, err
	}

	out := storage.NewTable("join", outSchema)
	row := make([]storage.Value, 0, outSchema.NumColumns())
	inner := make([]storage.Value, 0, innerSchema.NumColumns())
	for lr := 0; lr < left.NumRows(); lr++ {
		probe := left.Value(lr, outerKey)
		stats.Comparisons++ // the index search
		for _, rr := range ix.Lookup(probe) {
			if err := e.visit(stats); err != nil {
				return nil, err
			}
			inner = base.AppendRowTo(inner[:0], rr)
			ok, err := innerFilter.eval(inner, stats)
			if err != nil {
				return nil, err
			}
			if !ok || !evalDisjunctions(innerOrFilter, inner, stats) {
				continue
			}
			row = left.AppendRowTo(row[:0], lr)
			row = append(row, inner...)
			ok, err = residual.eval(row, stats)
			if err != nil {
				return nil, err
			}
			if ok {
				if err := e.emit(out, row); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// columnMatches reports whether ref names alias.column (case-insensitive).
func columnMatches(ref expr.ColumnRef, alias, column string) bool {
	return strings.EqualFold(ref.Table, alias) && strings.EqualFold(ref.Column, column)
}

// joinSchema concatenates the two input schemas.
func joinSchema(l, r *storage.Schema) (*storage.Schema, error) {
	cols := make([]storage.ColumnDef, 0, l.NumColumns()+r.NumColumns())
	cols = append(cols, l.Columns()...)
	cols = append(cols, r.Columns()...)
	return storage.NewSchema(cols...)
}

// nlInner describes the inner input of a nested-loops join: either a base
// table re-scanned (with its filters re-applied) per outer row, or a
// materialized intermediate re-read per outer row. It is read-only during
// the join, so parallel outer chunks share it.
type nlInner struct {
	base       *storage.Table
	schema     *storage.Schema
	rescan     bool
	filter     compiled
	orFilter   []compiledDisj
	joinFilter compiled
}

// nestedLoop joins left with the (re-scanned) inner input. When the inner
// is a base scan, the base table is re-read for each outer row, applying
// the scan filter each time — the honest cost the optimizer's
// NestedLoopCost models. When the inner is itself a join (bushy plans), it
// is materialized once and the materialization is re-read per outer row.
func (e *Executor) nestedLoop(j *optimizer.Join, left *storage.Table, stats *Stats, rec *recorder, depth int) (*storage.Table, error) {
	var in nlInner

	if scan, ok := j.Right.(*optimizer.Scan); ok {
		base := e.cat.Data(scan.Table)
		if base == nil {
			return nil, fmt.Errorf("executor: no data registered for table %q", scan.Table)
		}
		schema, err := qualifiedSchema(scan.Alias, base.Schema())
		if err != nil {
			return nil, err
		}
		in.base, in.schema, in.rescan = base, schema, true
		if in.filter, err = compileAll(scan.Filter, schema); err != nil {
			return nil, err
		}
		if in.orFilter, err = compileDisjunctions(scan.FilterOr, schema); err != nil {
			return nil, err
		}
		// The re-scanned inner is never materialized: record it with an
		// unknown actual cardinality.
		rec.reserve(scan, depth+1)
	} else {
		mat, err := e.run(j.Right, stats, rec, depth+1)
		if err != nil {
			return nil, err
		}
		in.base, in.schema = mat, mat.Schema()
	}

	outSchema, err := joinSchema(left.Schema(), in.schema)
	if err != nil {
		return nil, err
	}
	if in.joinFilter, err = compileAll(j.Preds, outSchema); err != nil {
		return nil, err
	}
	workers := e.resolveWorkers()
	ranges := chunkRanges(left.NumRows(), workers)
	var out *storage.Table
	if workers > 1 && len(ranges) > 1 {
		out, err = e.parallelNestedLoop(left, in, in.joinFilter, outSchema, workers, ranges, stats)
	} else {
		out = storage.NewTable("join", outSchema)
		err = e.nlRange(left, in, in.joinFilter, out, 0, left.NumRows(), stats)
	}
	if err != nil {
		return nil, err
	}
	if !in.rescan {
		// A materialized (bushy) inner was charged by its own run; it dies
		// with this join.
		e.releaseTables(in.base)
	}
	return out, nil
}

// nlRange runs the nested-loops join for outer rows [start, end),
// re-reading the shared inner input per outer row. It is the shared body
// of the serial operator and of one parallel outer chunk.
func (e *Executor) nlRange(left *storage.Table, in nlInner, join compiled,
	out *storage.Table, start, end int, stats *Stats) error {
	row := make([]storage.Value, 0, out.Schema().NumColumns())
	inner := make([]storage.Value, 0, in.schema.NumColumns())
	for lr := start; lr < end; lr++ {
		for rr := 0; rr < in.base.NumRows(); rr++ {
			if err := e.visit(stats); err != nil {
				return err
			}
			inner = in.base.AppendRowTo(inner[:0], rr)
			if in.rescan {
				ok, err := in.filter.eval(inner, stats)
				if err != nil {
					return err
				}
				if !ok || !evalDisjunctions(in.orFilter, inner, stats) {
					continue
				}
			}
			row = left.AppendRowTo(row[:0], lr)
			row = append(row, inner...)
			ok, err := join.eval(row, stats)
			if err != nil {
				return err
			}
			if ok {
				if err := e.emit(out, row); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// sortMerge joins two materialized inputs on the first equality predicate,
// applying the remaining predicates as residual filters.
func (e *Executor) sortMerge(j *optimizer.Join, left, right *storage.Table, stats *Stats) (*storage.Table, error) {
	keyPred, residuals := splitKey(j.Preds)
	if keyPred == nil {
		return nil, fmt.Errorf("executor: sort-merge join requires an equality predicate")
	}
	outSchema, err := joinSchema(left.Schema(), right.Schema())
	if err != nil {
		return nil, err
	}
	lKey, rKey, err := keyColumns(*keyPred, left.Schema(), right.Schema())
	if err != nil {
		return nil, err
	}
	residual, err := compileAll(residuals, outSchema)
	if err != nil {
		return nil, err
	}

	// The sort permutations are non-spillable scratch: unlike a hash
	// build they cannot go to disk, so a budget that cannot cover them
	// fails the query with a typed ErrMemory rather than overrunning.
	scratch := int64(8) * (int64(left.NumRows()) + int64(right.NumRows()))
	if err := e.gov.GrabBytes(scratch, "sort-merge scratch"); err != nil {
		return nil, err
	}
	defer e.gov.ReleaseBytes(scratch)

	lIdx := left.SortedIndices(lKey)
	rIdx := right.SortedIndices(rKey)
	stats.Comparisons += sortComparisons(len(lIdx)) + sortComparisons(len(rIdx))

	out := storage.NewTable("join", outSchema)
	row := make([]storage.Value, 0, outSchema.NumColumns())
	li, ri := 0, 0
	for li < len(lIdx) && ri < len(rIdx) {
		lv := left.Value(lIdx[li], lKey)
		rv := right.Value(rIdx[ri], rKey)
		stats.Comparisons++
		if lv.IsNull() {
			li++
			continue
		}
		if rv.IsNull() {
			ri++
			continue
		}
		cmp := storage.Compare(lv, rv)
		switch {
		case cmp < 0:
			li++
		case cmp > 0:
			ri++
		default:
			// Find the extent of the equal-key runs and emit their product.
			lEnd := li
			for lEnd < len(lIdx) && storage.Equal(left.Value(lIdx[lEnd], lKey), lv) {
				lEnd++
			}
			rEnd := ri
			for rEnd < len(rIdx) && storage.Equal(right.Value(rIdx[rEnd], rKey), rv) {
				rEnd++
			}
			for a := li; a < lEnd; a++ {
				for b := ri; b < rEnd; b++ {
					if err := e.visit(stats); err != nil {
						return nil, err
					}
					row = left.AppendRowTo(row[:0], lIdx[a])
					row = right.AppendRowTo(row, rIdx[b])
					ok, err := residual.eval(row, stats)
					if err != nil {
						return nil, err
					}
					if ok {
						if err := e.emit(out, row); err != nil {
							return nil, err
						}
					}
				}
			}
			li, ri = lEnd, rEnd
		}
	}
	// Scanning both inputs counts as work even where keys never matched.
	n := int64(left.NumRows()) + int64(right.NumRows())
	stats.TuplesScanned += n
	if err := e.gov.TickTuples(n); err != nil {
		return nil, err
	}
	return out, nil
}

// hashJoin builds a hash table on the right input keyed by the first
// equality predicate and probes it with the left input.
func (e *Executor) hashJoin(j *optimizer.Join, left, right *storage.Table, stats *Stats) (*storage.Table, error) {
	keyPred, residuals := splitKey(j.Preds)
	if keyPred == nil {
		return nil, fmt.Errorf("executor: hash join requires an equality predicate")
	}
	outSchema, err := joinSchema(left.Schema(), right.Schema())
	if err != nil {
		return nil, err
	}
	lKey, rKey, err := keyColumns(*keyPred, left.Schema(), right.Schema())
	if err != nil {
		return nil, err
	}
	residual, err := compileAll(residuals, outSchema)
	if err != nil {
		return nil, err
	}
	if e.gov != nil {
		// The build side pins the whole right input plus its hash map for
		// the duration of the join. Its deterministic footprint (the input
		// bytes, identical across engines and worker counts) both feeds the
		// spill decision and is charged as working memory on the in-memory
		// paths.
		need := right.ApproxBytes()
		if e.gov.ShouldSpill(need) {
			return e.spillHashJoin(left, right, lKey, rKey, residual, outSchema, stats, need)
		}
		e.gov.ChargeBytes(need)
		defer e.gov.ReleaseBytes(need)
	}
	if e.useColumnar() {
		if out, ok, cerr := e.columnarHashJoin(left, right, lKey, rKey, residual, outSchema, stats); ok {
			return out, cerr
		}
	}
	workers := e.resolveWorkers()
	if workers > 1 && (len(chunkRanges(right.NumRows(), workers)) > 1 ||
		len(chunkRanges(left.NumRows(), workers)) > 1) {
		return e.partitionedHashJoin(left, right, lKey, rKey, residual, outSchema, workers, stats)
	}
	build := make(map[string][]int, right.NumRows())
	for r := 0; r < right.NumRows(); r++ {
		if err := e.visit(stats); err != nil {
			return nil, err
		}
		v := right.Value(r, rKey)
		if v.IsNull() {
			continue
		}
		k := v.Key()
		build[k] = append(build[k], r)
	}
	out := storage.NewTable("join", outSchema)
	row := make([]storage.Value, 0, outSchema.NumColumns())
	for l := 0; l < left.NumRows(); l++ {
		if err := e.visit(stats); err != nil {
			return nil, err
		}
		v := left.Value(l, lKey)
		if v.IsNull() {
			continue
		}
		for _, r := range build[v.Key()] {
			row = left.AppendRowTo(row[:0], l)
			row = right.AppendRowTo(row, r)
			ok, err := residual.eval(row, stats)
			if err != nil {
				return nil, err
			}
			if ok {
				if err := e.emit(out, row); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// splitKey picks the first equality join predicate as the physical key and
// returns the rest as residuals.
func splitKey(preds []expr.Predicate) (*expr.Predicate, []expr.Predicate) {
	for i, p := range preds {
		if p.Op == expr.OpEQ && p.RightIsColumn {
			residuals := make([]expr.Predicate, 0, len(preds)-1)
			residuals = append(residuals, preds[:i]...)
			residuals = append(residuals, preds[i+1:]...)
			return &preds[i], residuals
		}
	}
	return nil, preds
}

// keyColumns resolves the key predicate's two sides to column ordinals in
// the left and right schemas (in either order).
func keyColumns(p expr.Predicate, l, r *storage.Schema) (int, int, error) {
	lName := p.Left.Table + "." + p.Left.Column
	rName := p.Right.Table + "." + p.Right.Column
	if li := l.ColumnIndex(lName); li >= 0 {
		if ri := r.ColumnIndex(rName); ri >= 0 {
			return li, ri, nil
		}
	}
	if li := l.ColumnIndex(rName); li >= 0 {
		if ri := r.ColumnIndex(lName); ri >= 0 {
			return li, ri, nil
		}
	}
	return 0, 0, fmt.Errorf("executor: key predicate %s does not span the join inputs", p)
}

// sortComparisons approximates n·log₂(n) for the comparison counter.
func sortComparisons(n int) int64 {
	if n < 2 {
		return 0
	}
	c := int64(0)
	for k := n; k > 1; k >>= 1 {
		c++
	}
	return int64(n) * c
}
