// Vectorized execution. The batch engine runs scans and hash joins over
// column chunks: predicates evaluate type-specialized kernels over flat
// column slices, qualifying rows live in selection vectors (no row is
// materialized until the final gather), and matched join pairs gather
// column-wise into the output. Scratch buffers are recycled through
// internal/workpool arenas so chunk-parallel execution stays allocation-flat.
//
// The engine is bit-identical to the row-at-a-time operators: same output
// rows in the same order, same TuplesScanned/Comparisons totals, same
// governor tuple/row charges. That parity is load-bearing — the differential
// harness referees the two engines against each other — so the kernels
// replicate the row engine's short-circuit counting exactly: a conjunction
// evaluates each predicate only over the survivors of the previous one, a
// NULL operand is counted as a comparison and then dropped, and OR-groups
// stop counting a row at its first true disjunct.
package executor

import (
	"math"

	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/workpool"
)

// colBatch is the columnar scan batch size: base-table rows are visited,
// filtered, and gathered in runs of this many, bounding selection-vector
// memory while keeping per-batch bookkeeping negligible. The hash join
// flushes matched pairs at the same granularity.
const colBatch = 4096

// Arenas for the batch engine's scratch buffers, shared across executors
// and worker goroutines.
var (
	selArena = workpool.NewArena[int]()
	keyArena = workpool.NewArena[uint64]()
)

// SetColumnar selects the execution engine: true (the default) runs the
// vectorized batch kernels, false forces the row-at-a-time operators. Call
// before Execute, not concurrently with it. A governed executor whose
// Limits.DisableColumnar is set uses the row engine regardless.
func (e *Executor) SetColumnar(on bool) { e.rowOnly = !on }

// useColumnar resolves the engine choice for this execution.
func (e *Executor) useColumnar() bool {
	return !e.rowOnly && !e.gov.ColumnarDisabled()
}

// scanRangeColumnar is the vectorized scanRange body: rows [start, end) are
// visited in batches, filtered through selection vectors, and gathered
// column-wise into out.
func (e *Executor) scanRangeColumnar(base *storage.Table, start, end int, filter compiled,
	orFilter []compiledDisj, out *storage.Table, stats *Stats) error {
	for b := start; b < end; b += colBatch {
		bEnd := b + colBatch
		if bEnd > end {
			bEnd = end
		}
		n := bEnd - b
		stats.TuplesScanned += int64(n)
		if err := e.gov.TickTuples(int64(n)); err != nil {
			return err
		}
		sel := selArena.Get(n)
		arena := int64(8 * cap(sel))
		e.gov.ChargeBytes(arena) // batch-arena scratch, released with the batch
		put := func() {
			e.gov.ReleaseBytes(arena)
			selArena.Put(sel)
		}
		for r := b; r < bEnd; r++ {
			sel = append(sel, r)
		}
		for _, p := range filter.preds {
			if len(sel) == 0 {
				break
			}
			sel = predSel(base, p, sel, stats)
		}
		sel = disjSel(base, orFilter, sel, stats)
		if len(sel) > 0 {
			if err := e.gov.TickRows(int64(len(sel))); err != nil {
				put()
				return err
			}
			if err := out.AppendGather(base, sel); err != nil {
				put()
				return err
			}
		}
		put()
	}
	return nil
}

// cmpOrd is the shared ordering kernel. For float64 it matches
// storage.Compare's compareFloat exactly (NaN compares "equal" to
// everything, as neither < nor > holds).
func cmpOrd[T int64 | float64 | string](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// predSel filters sel down to the rows of tbl satisfying p, compacting in
// place. Every row in sel counts one comparison (NULL operands included),
// matching compiledPred.evalOne.
func predSel(tbl *storage.Table, p compiledPred, sel []int, stats *Stats) []int {
	stats.Comparisons += int64(len(sel))
	ld := tbl.ColumnData(p.leftIdx)
	if p.rightIdx < 0 {
		c := p.constant
		if c.IsNull() {
			return sel[:0]
		}
		switch {
		case ld.Type == storage.TypeInt64 && c.Type() == storage.TypeInt64:
			return selCmpConst(ld.Ints, ld.Nulls, c.Int(), p.op, sel)
		case ld.Type == storage.TypeFloat64 && c.Type() == storage.TypeFloat64:
			return selCmpConst(ld.Floats, ld.Nulls, c.Float(), p.op, sel)
		case ld.Type == storage.TypeString && c.Type() == storage.TypeString:
			return selCmpConst(ld.Strs, ld.Nulls, c.Str(), p.op, sel)
		case numericType(ld.Type) && numericType(c.Type()):
			return selCmpConstMixed(ld, c.AsFloat(), p.op, sel)
		}
	} else {
		rd := tbl.ColumnData(p.rightIdx)
		switch {
		case ld.Type == storage.TypeInt64 && rd.Type == storage.TypeInt64:
			return selCmpCols(ld.Ints, ld.Nulls, rd.Ints, rd.Nulls, p.op, sel)
		case ld.Type == storage.TypeFloat64 && rd.Type == storage.TypeFloat64:
			return selCmpCols(ld.Floats, ld.Nulls, rd.Floats, rd.Nulls, p.op, sel)
		case ld.Type == storage.TypeString && rd.Type == storage.TypeString:
			return selCmpCols(ld.Strs, ld.Nulls, rd.Strs, rd.Nulls, p.op, sel)
		case numericType(ld.Type) && numericType(rd.Type):
			return selCmpColsMixed(ld, rd, p.op, sel)
		}
	}
	// Generic fallback: boxed compare with exactly the row engine's
	// semantics, including its panic on non-comparable type pairs.
	out := sel[:0]
	for _, r := range sel {
		lv := ld.Value(r)
		rv := p.constant
		if p.rightIdx >= 0 {
			rv = tbl.ColumnData(p.rightIdx).Value(r)
		}
		if lv.IsNull() || rv.IsNull() {
			continue
		}
		if p.op.Holds(storage.Compare(lv, rv)) {
			out = append(out, r)
		}
	}
	return out
}

func numericType(t storage.Type) bool {
	return t == storage.TypeInt64 || t == storage.TypeFloat64
}

// selCmpConst is the column-vs-constant kernel for one ordered type.
func selCmpConst[T int64 | float64 | string](vals []T, nulls []bool, c T, op expr.CompareOp, sel []int) []int {
	out := sel[:0]
	if nulls == nil {
		for _, r := range sel {
			if op.Holds(cmpOrd(vals[r], c)) {
				out = append(out, r)
			}
		}
		return out
	}
	for _, r := range sel {
		if nulls[r] {
			continue
		}
		if op.Holds(cmpOrd(vals[r], c)) {
			out = append(out, r)
		}
	}
	return out
}

// selCmpCols is the column-vs-column kernel for one ordered type.
func selCmpCols[T int64 | float64 | string](l []T, ln []bool, r []T, rn []bool, op expr.CompareOp, sel []int) []int {
	out := sel[:0]
	for _, i := range sel {
		if (ln != nil && ln[i]) || (rn != nil && rn[i]) {
			continue
		}
		if op.Holds(cmpOrd(l[i], r[i])) {
			out = append(out, i)
		}
	}
	return out
}

// selCmpConstMixed compares a numeric column against a numeric constant of
// the other width via float64, matching storage.Compare's cross-type rule.
func selCmpConstMixed(ld storage.ColumnData, c float64, op expr.CompareOp, sel []int) []int {
	out := sel[:0]
	for _, r := range sel {
		if ld.Null(r) {
			continue
		}
		var f float64
		if ld.Type == storage.TypeInt64 {
			f = float64(ld.Ints[r])
		} else {
			f = ld.Floats[r]
		}
		if op.Holds(cmpOrd(f, c)) {
			out = append(out, r)
		}
	}
	return out
}

// selCmpColsMixed compares two numeric columns of different widths via
// float64, matching storage.Compare's cross-type rule.
func selCmpColsMixed(ld, rd storage.ColumnData, op expr.CompareOp, sel []int) []int {
	out := sel[:0]
	for _, i := range sel {
		if ld.Null(i) || rd.Null(i) {
			continue
		}
		lf := ld.Floats
		var a, b float64
		if ld.Type == storage.TypeInt64 {
			a = float64(ld.Ints[i])
		} else {
			a = lf[i]
		}
		if rd.Type == storage.TypeInt64 {
			b = float64(rd.Ints[i])
		} else {
			b = rd.Floats[i]
		}
		if op.Holds(cmpOrd(a, b)) {
			out = append(out, i)
		}
	}
	return out
}

// disjSel applies the OR-groups in order, each over the survivors of the
// previous. Within a group a row stops counting at its first true disjunct,
// exactly like evalDisjunctions.
func disjSel(tbl *storage.Table, ds []compiledDisj, sel []int, stats *Stats) []int {
	for _, d := range ds {
		if len(sel) == 0 {
			return sel
		}
		out := sel[:0]
		for _, r := range sel {
			if disjRow(tbl, d, r, stats) {
				out = append(out, r)
			}
		}
		sel = out
	}
	return sel
}

// disjRow evaluates one OR-group for one row, boxed. Disjunctions are rare
// enough that the batch engine keeps them scalar; the counting matches
// evalOne per disjunct evaluated.
func disjRow(tbl *storage.Table, d compiledDisj, r int, stats *Stats) bool {
	for _, p := range d.preds {
		stats.Comparisons++
		lv := tbl.ColumnData(p.leftIdx).Value(r)
		rv := p.constant
		if p.rightIdx >= 0 {
			rv = tbl.ColumnData(p.rightIdx).Value(r)
		}
		if lv.IsNull() || rv.IsNull() {
			continue
		}
		if p.op.Holds(storage.Compare(lv, rv)) {
			return true
		}
	}
	return false
}

// columnarHashJoin runs the vectorized hash join when both key columns have
// the same specializable type. ok=false means the caller must fall back to
// the row engine (bool or mixed-type keys — the latter never match under
// Value.Key() anyway, so the row path is both correct and cheap there).
func (e *Executor) columnarHashJoin(left, right *storage.Table, lKey, rKey int,
	residual compiled, outSchema *storage.Schema, stats *Stats) (*storage.Table, bool, error) {
	ld := left.ColumnData(lKey)
	rd := right.ColumnData(rKey)
	if ld.Type != rd.Type {
		return nil, false, nil
	}
	switch ld.Type {
	case storage.TypeInt64:
		return colJoin(e, left, right, ld.Ints, rd.Ints, ld.Nulls, rd.Nulls, residual, outSchema, stats)
	case storage.TypeFloat64:
		lk := floatKeys(ld.Floats)
		rk := floatKeys(rd.Floats)
		arena := int64(8 * (cap(lk) + cap(rk)))
		e.gov.ChargeBytes(arena) // key-arena scratch, released with the join
		out, ok, err := colJoin(e, left, right, lk, rk, ld.Nulls, rd.Nulls, residual, outSchema, stats)
		keyArena.Put(lk)
		keyArena.Put(rk)
		e.gov.ReleaseBytes(arena)
		return out, ok, err
	case storage.TypeString:
		return colJoin(e, left, right, ld.Strs, rd.Strs, ld.Nulls, rd.Nulls, residual, outSchema, stats)
	default:
		return nil, false, nil
	}
}

// floatKeys normalizes a float64 column to hashable bit patterns. -0.0 maps
// to 0.0, matching Value.Key()'s float encoding, so the typed map groups
// exactly the values the row engine's string keys group.
func floatKeys(vals []float64) []uint64 {
	out := keyArena.Get(len(vals))
	for _, f := range vals {
		if f == 0 {
			f = 0
		}
		out = append(out, math.Float64bits(f))
	}
	return out
}

// colJoin is the typed hash join: build a map over the right key column,
// probe with the left in row order (chunk-parallel when workers allow),
// batch matched pairs, filter them through the residual kernels, and gather
// survivors column-wise. Chunk outputs concatenate in chunk order, so the
// output is row-for-row identical to the serial row-engine join.
func colJoin[K comparable](e *Executor, left, right *storage.Table, lk, rk []K, ln, rn []bool,
	residual compiled, outSchema *storage.Schema, stats *Stats) (*storage.Table, bool, error) {
	nRight := right.NumRows()
	stats.TuplesScanned += int64(nRight)
	if err := e.gov.TickTuples(int64(nRight)); err != nil {
		return nil, true, err
	}
	build := make(map[K][]int, nRight)
	for r := 0; r < nRight; r++ {
		if rn != nil && rn[r] {
			continue
		}
		build[rk[r]] = append(build[rk[r]], r)
	}

	workers := e.resolveWorkers()
	ranges := chunkRanges(left.NumRows(), workers)
	if workers > 1 && len(ranges) > 1 {
		outs := make([]*storage.Table, len(ranges))
		locals := make([]Stats, len(ranges))
		err := workpool.Run(workers, len(ranges), func(i int) error {
			if err := e.probe(PointJoinChunk); err != nil {
				return err
			}
			outs[i] = storage.NewTable("join", outSchema)
			return probeChunk(e, left, right, lk, ln, build, residual, outs[i], ranges[i][0], ranges[i][1], &locals[i])
		})
		if err != nil {
			return nil, true, err
		}
		out, err := mergeChunks(outs, locals, stats)
		return out, true, err
	}
	out := storage.NewTable("join", outSchema)
	if err := probeChunk(e, left, right, lk, ln, build, residual, out, 0, left.NumRows(), stats); err != nil {
		return nil, true, err
	}
	return out, true, nil
}

// probeChunk probes left rows [start, end) against the shared build map,
// accumulating matched (left, right) index pairs and flushing them through
// the residual filter and pair gather in batches.
func probeChunk[K comparable](e *Executor, left, right *storage.Table, lk []K, ln []bool,
	build map[K][]int, residual compiled, out *storage.Table, start, end int, stats *Stats) error {
	n := end - start
	stats.TuplesScanned += int64(n)
	if err := e.gov.TickTuples(int64(n)); err != nil {
		return err
	}
	lsel := selArena.Get(colBatch)
	rsel := selArena.Get(colBatch)
	arena := int64(8 * (cap(lsel) + cap(rsel)))
	e.gov.ChargeBytes(arena) // pair-batch arena scratch, released with the chunk
	defer func() {
		selArena.Put(lsel)
		selArena.Put(rsel)
		e.gov.ReleaseBytes(arena)
	}()
	flush := func() error {
		if len(lsel) == 0 {
			return nil
		}
		fl, fr := filterPairs(left, right, residual, lsel, rsel, stats)
		if len(fl) > 0 {
			if err := e.gov.TickRows(int64(len(fl))); err != nil {
				return err
			}
			if err := out.AppendPairGather(left, right, fl, fr); err != nil {
				return err
			}
		}
		lsel, rsel = lsel[:0], rsel[:0]
		return nil
	}
	for l := start; l < end; l++ {
		if ln != nil && ln[l] {
			continue
		}
		for _, r := range build[lk[l]] {
			lsel = append(lsel, l)
			rsel = append(rsel, r)
		}
		if len(lsel) >= colBatch {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// filterPairs applies the residual conjunction to matched pairs, compacting
// lsel/rsel in place. Counting matches compiled.eval per pair: each
// predicate evaluates only over the pairs that survived the previous one.
func filterPairs(left, right *storage.Table, residual compiled, lsel, rsel []int, stats *Stats) ([]int, []int) {
	lcols := left.Schema().NumColumns()
	for _, p := range residual.preds {
		if len(lsel) == 0 {
			return lsel, rsel
		}
		lsel, rsel = predPairSel(left, right, lcols, p, lsel, rsel, stats)
	}
	return lsel, rsel
}

// pairSide resolves a joined-schema column ordinal to the underlying input
// column view and the pair-index slice that addresses it.
func pairSide(left, right *storage.Table, lcols, idx int, lsel, rsel []int) (storage.ColumnData, []int) {
	if idx < lcols {
		return left.ColumnData(idx), lsel
	}
	return right.ColumnData(idx - lcols), rsel
}

// predPairSel filters matched pairs by one residual predicate, compacting
// both selection vectors in place. Every pair counts one comparison.
func predPairSel(left, right *storage.Table, lcols int, p compiledPred, lsel, rsel []int, stats *Stats) ([]int, []int) {
	n := len(lsel)
	stats.Comparisons += int64(n)
	ld, lrows := pairSide(left, right, lcols, p.leftIdx, lsel, rsel)
	isConst := p.rightIdx < 0
	var rd storage.ColumnData
	var rrows []int
	if !isConst {
		rd, rrows = pairSide(left, right, lcols, p.rightIdx, lsel, rsel)
	}
	out := 0
	keep := func(i int) {
		lsel[out] = lsel[i]
		rsel[out] = rsel[i]
		out++
	}
	switch {
	case isConst && p.constant.IsNull():
		// NULL constant: counted, never true.
	case isConst && ld.Type == storage.TypeInt64 && p.constant.Type() == storage.TypeInt64:
		c := p.constant.Int()
		for i := 0; i < n; i++ {
			r := lrows[i]
			if !ld.Null(r) && p.op.Holds(cmpOrd(ld.Ints[r], c)) {
				keep(i)
			}
		}
	case isConst && ld.Type == storage.TypeFloat64 && p.constant.Type() == storage.TypeFloat64:
		c := p.constant.Float()
		for i := 0; i < n; i++ {
			r := lrows[i]
			if !ld.Null(r) && p.op.Holds(cmpOrd(ld.Floats[r], c)) {
				keep(i)
			}
		}
	case isConst && ld.Type == storage.TypeString && p.constant.Type() == storage.TypeString:
		c := p.constant.Str()
		for i := 0; i < n; i++ {
			r := lrows[i]
			if !ld.Null(r) && p.op.Holds(cmpOrd(ld.Strs[r], c)) {
				keep(i)
			}
		}
	case !isConst && ld.Type == storage.TypeInt64 && rd.Type == storage.TypeInt64:
		for i := 0; i < n; i++ {
			lr, rr := lrows[i], rrows[i]
			if !ld.Null(lr) && !rd.Null(rr) && p.op.Holds(cmpOrd(ld.Ints[lr], rd.Ints[rr])) {
				keep(i)
			}
		}
	case !isConst && ld.Type == storage.TypeFloat64 && rd.Type == storage.TypeFloat64:
		for i := 0; i < n; i++ {
			lr, rr := lrows[i], rrows[i]
			if !ld.Null(lr) && !rd.Null(rr) && p.op.Holds(cmpOrd(ld.Floats[lr], rd.Floats[rr])) {
				keep(i)
			}
		}
	case !isConst && ld.Type == storage.TypeString && rd.Type == storage.TypeString:
		for i := 0; i < n; i++ {
			lr, rr := lrows[i], rrows[i]
			if !ld.Null(lr) && !rd.Null(rr) && p.op.Holds(cmpOrd(ld.Strs[lr], rd.Strs[rr])) {
				keep(i)
			}
		}
	default:
		// Generic fallback: boxed compare, matching the row engine exactly.
		for i := 0; i < n; i++ {
			lv := ld.Value(lrows[i])
			rv := p.constant
			if !isConst {
				rv = rd.Value(rrows[i])
			}
			if lv.IsNull() || rv.IsNull() {
				continue
			}
			if p.op.Holds(storage.Compare(lv, rv)) {
				keep(i)
			}
		}
	}
	return lsel[:out], rsel[:out]
}
