package executor

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cardest"
	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/expr"
	"repro/internal/optimizer"
	"repro/internal/storage"
)

func ref(t, c string) expr.ColumnRef { return expr.ColumnRef{Table: t, Column: c} }

// buildCatalog generates small tables, analyzes them, and returns the
// catalog with data attached.
func buildCatalog(t *testing.T, specs ...datagen.TableSpec) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	for i, spec := range specs {
		tbl, err := datagen.Generate(spec, int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cat.Analyze(tbl, catalog.AnalyzeOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

// bruteForceJoinCount computes the true result count of a conjunctive
// query by cartesian enumeration (test oracle; only for tiny inputs).
func bruteForceJoinCount(t *testing.T, cat *catalog.Catalog, aliases []string, tables []string, preds []expr.Predicate) int {
	t.Helper()
	data := make([]*storage.Table, len(tables))
	for i, name := range tables {
		data[i] = cat.Data(name)
		if data[i] == nil {
			t.Fatalf("no data for %s", name)
		}
	}
	count := 0
	idx := make([]int, len(tables))
	var recurse func(depth int)
	recurse = func(depth int) {
		if depth == len(tables) {
			binding := expr.MapBinding{}
			for i, tbl := range data {
				for c := 0; c < tbl.Schema().NumColumns(); c++ {
					key := expr.ColumnRef{Table: aliases[i], Column: tbl.Schema().Column(c).Name}.Key()
					binding[key] = tbl.Value(idx[i], c)
				}
			}
			for _, p := range preds {
				ok, err := p.Eval(binding)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					return
				}
			}
			count++
			return
		}
		for r := 0; r < data[depth].NumRows(); r++ {
			idx[depth] = r
			recurse(depth + 1)
		}
	}
	recurse(0)
	return count
}

func chainSpecs(rows ...int) []datagen.TableSpec {
	specs := make([]datagen.TableSpec, len(rows))
	for i, n := range rows {
		specs[i] = datagen.TableSpec{
			Name: fmt.Sprintf("T%d", i),
			Rows: n,
			Columns: []datagen.ColumnSpec{
				{Name: "k", Dist: datagen.DistUniform, Domain: 10},
				{Name: "v", Dist: datagen.DistUniform, Domain: 100},
			},
		}
	}
	return specs
}

func planAndRun(t *testing.T, cat *catalog.Catalog, tabs []cardest.TableRef, preds []expr.Predicate, methods []optimizer.JoinMethod, order []string) *Result {
	t.Helper()
	est, err := cardest.New(cat, tabs, preds, cardest.ELS())
	if err != nil {
		t.Fatal(err)
	}
	o, err := optimizer.New(est, optimizer.Options{Methods: methods})
	if err != nil {
		t.Fatal(err)
	}
	var plan optimizer.Plan
	if order != nil {
		plan, err = o.PlanForOrder(order)
	} else {
		plan, err = o.BestPlan()
	}
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(cat).Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestScanWithFilter(t *testing.T) {
	cat := buildCatalog(t, chainSpecs(50)...)
	preds := []expr.Predicate{expr.NewConst(ref("T0", "k"), expr.OpLT, storage.Int64(5))}
	res := planAndRun(t, cat, []cardest.TableRef{{Table: "T0"}}, preds, nil, nil)
	want := bruteForceJoinCount(t, cat, []string{"T0"}, []string{"T0"}, preds)
	if int(res.Stats.RowsProduced) != want {
		t.Errorf("filtered scan rows = %d, want %d", res.Stats.RowsProduced, want)
	}
	if res.Stats.TuplesScanned != 50 {
		t.Errorf("tuples scanned = %d, want 50", res.Stats.TuplesScanned)
	}
	// Output columns must be alias-qualified.
	if res.Table.Schema().ColumnIndex("T0.k") < 0 {
		t.Errorf("output schema %s missing qualified column", res.Table.Schema())
	}
}

func TestTwoWayJoinAllMethodsAgree(t *testing.T) {
	cat := buildCatalog(t, chainSpecs(40, 60)...)
	preds := []expr.Predicate{
		expr.NewJoin(ref("T0", "k"), expr.OpEQ, ref("T1", "k")),
		expr.NewConst(ref("T0", "v"), expr.OpLT, storage.Int64(50)),
	}
	tabs := []cardest.TableRef{{Table: "T0"}, {Table: "T1"}}
	want := bruteForceJoinCount(t, cat, []string{"T0", "T1"}, []string{"T0", "T1"}, preds)
	for _, m := range []optimizer.JoinMethod{optimizer.NestedLoop, optimizer.SortMerge, optimizer.HashJoin} {
		res := planAndRun(t, cat, tabs, preds, []optimizer.JoinMethod{m}, []string{"T0", "T1"})
		if int(res.Stats.RowsProduced) != want {
			t.Errorf("%s join rows = %d, want %d", m, res.Stats.RowsProduced, want)
		}
	}
}

func TestThreeWayJoinMatchesBruteForce(t *testing.T) {
	cat := buildCatalog(t, chainSpecs(20, 25, 30)...)
	preds := []expr.Predicate{
		expr.NewJoin(ref("T0", "k"), expr.OpEQ, ref("T1", "k")),
		expr.NewJoin(ref("T1", "k"), expr.OpEQ, ref("T2", "k")),
		expr.NewConst(ref("T2", "v"), expr.OpGE, storage.Int64(20)),
	}
	tabs := []cardest.TableRef{{Table: "T0"}, {Table: "T1"}, {Table: "T2"}}
	want := bruteForceJoinCount(t, cat, []string{"T0", "T1", "T2"}, []string{"T0", "T1", "T2"}, preds)
	for _, methods := range [][]optimizer.JoinMethod{
		{optimizer.NestedLoop},
		{optimizer.SortMerge},
		{optimizer.HashJoin},
		{optimizer.NestedLoop, optimizer.SortMerge},
	} {
		res := planAndRun(t, cat, tabs, preds, methods, nil)
		if int(res.Stats.RowsProduced) != want {
			t.Errorf("methods %v rows = %d, want %d", methods, res.Stats.RowsProduced, want)
		}
	}
}

func TestResidualPredicatesApplied(t *testing.T) {
	// Two equality predicates between the same pair of tables: one becomes
	// the physical key, the other must be applied as a residual.
	cat := buildCatalog(t,
		datagen.TableSpec{Name: "A", Rows: 30, Columns: []datagen.ColumnSpec{
			{Name: "x", Dist: datagen.DistUniform, Domain: 5},
			{Name: "y", Dist: datagen.DistUniform, Domain: 5},
		}},
		datagen.TableSpec{Name: "B", Rows: 30, Columns: []datagen.ColumnSpec{
			{Name: "p", Dist: datagen.DistUniform, Domain: 5},
			{Name: "q", Dist: datagen.DistUniform, Domain: 5},
		}},
	)
	preds := []expr.Predicate{
		expr.NewJoin(ref("A", "x"), expr.OpEQ, ref("B", "p")),
		expr.NewJoin(ref("A", "y"), expr.OpEQ, ref("B", "q")),
	}
	tabs := []cardest.TableRef{{Table: "A"}, {Table: "B"}}
	want := bruteForceJoinCount(t, cat, []string{"A", "B"}, []string{"A", "B"}, preds)
	for _, m := range []optimizer.JoinMethod{optimizer.NestedLoop, optimizer.SortMerge, optimizer.HashJoin} {
		res := planAndRun(t, cat, tabs, preds, []optimizer.JoinMethod{m}, []string{"A", "B"})
		if int(res.Stats.RowsProduced) != want {
			t.Errorf("%s with residual rows = %d, want %d", m, res.Stats.RowsProduced, want)
		}
	}
}

func TestNullKeysNeverMatch(t *testing.T) {
	schema := storage.MustSchema(storage.ColumnDef{Name: "k", Type: storage.TypeInt64})
	a := storage.NewTable("A", schema)
	a.MustAppendRow(storage.Int64(1))
	a.MustAppendRow(storage.Null(storage.TypeInt64))
	b := storage.NewTable("B", schema)
	b.MustAppendRow(storage.Int64(1))
	b.MustAppendRow(storage.Null(storage.TypeInt64))
	cat := catalog.New()
	if _, err := cat.Analyze(a, catalog.AnalyzeOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Analyze(b, catalog.AnalyzeOptions{}); err != nil {
		t.Fatal(err)
	}
	preds := []expr.Predicate{expr.NewJoin(ref("A", "k"), expr.OpEQ, ref("B", "k"))}
	tabs := []cardest.TableRef{{Table: "A"}, {Table: "B"}}
	for _, m := range []optimizer.JoinMethod{optimizer.NestedLoop, optimizer.SortMerge, optimizer.HashJoin} {
		res := planAndRun(t, cat, tabs, preds, []optimizer.JoinMethod{m}, []string{"A", "B"})
		if res.Stats.RowsProduced != 1 {
			t.Errorf("%s: NULL keys matched; rows = %d, want 1", m, res.Stats.RowsProduced)
		}
	}
}

func TestCartesianProduct(t *testing.T) {
	cat := buildCatalog(t, chainSpecs(7, 11)...)
	res := planAndRun(t, cat, []cardest.TableRef{{Table: "T0"}, {Table: "T1"}}, nil, nil, nil)
	if res.Stats.RowsProduced != 77 {
		t.Errorf("cartesian rows = %d, want 77", res.Stats.RowsProduced)
	}
}

func TestNestedLoopRescansInner(t *testing.T) {
	// 10 outer rows × 30-row inner base: the inner must be visited 300
	// times regardless of the filter, plus the outer's own scan.
	cat := buildCatalog(t, chainSpecs(10, 30)...)
	preds := []expr.Predicate{expr.NewJoin(ref("T0", "k"), expr.OpEQ, ref("T1", "k"))}
	res := planAndRun(t, cat, []cardest.TableRef{{Table: "T0"}, {Table: "T1"}},
		preds, []optimizer.JoinMethod{optimizer.NestedLoop}, []string{"T0", "T1"})
	if res.Stats.TuplesScanned != 10+10*30 {
		t.Errorf("NL tuples scanned = %d, want %d", res.Stats.TuplesScanned, 10+10*30)
	}
}

func TestCountHelper(t *testing.T) {
	cat := buildCatalog(t, chainSpecs(12)...)
	est, _ := cardest.New(cat, []cardest.TableRef{{Table: "T0"}}, nil, cardest.ELS())
	o, _ := optimizer.New(est, optimizer.PaperOptions())
	plan, _ := o.BestPlan()
	n, stats, err := New(cat).Count(plan)
	if err != nil {
		t.Fatal(err)
	}
	if n != 12 || stats.RowsProduced != 12 {
		t.Errorf("Count = %d, want 12", n)
	}
	// Deterministic work counters only — wall-clock may round to zero on
	// coarse clocks.
	if stats.TuplesScanned != 12 {
		t.Errorf("tuples scanned = %d, want 12", stats.TuplesScanned)
	}
}

func TestExecuteErrors(t *testing.T) {
	cat := catalog.New()
	cat.MustAddTable(catalog.SimpleTable("A", 10, map[string]float64{"x": 10}))
	if _, err := New(cat).Execute(nil); err == nil {
		t.Error("nil plan should error")
	}
	// Stats registered but no data.
	est, _ := cardest.New(cat, []cardest.TableRef{{Table: "A"}}, nil, cardest.ELS())
	o, _ := optimizer.New(est, optimizer.PaperOptions())
	plan, _ := o.BestPlan()
	if _, err := New(cat).Execute(plan); err == nil {
		t.Error("missing data table should error")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{TuplesScanned: 1, Comparisons: 2, RowsProduced: 3}
	a.Add(Stats{TuplesScanned: 10, Comparisons: 20, RowsProduced: 30})
	if a.TuplesScanned != 11 || a.Comparisons != 22 || a.RowsProduced != 33 {
		t.Errorf("Stats.Add wrong: %+v", a)
	}
}

// Property: for random chain queries and random method mixes, every plan
// the optimizer produces executes to the brute-force count.
func TestExecutionMatchesBruteForceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(2)
		rows := make([]int, n)
		for i := range rows {
			rows[i] = 5 + rng.Intn(25)
		}
		cat := buildCatalog(t, chainSpecs(rows...)...)
		var tabs []cardest.TableRef
		var aliases, names []string
		var preds []expr.Predicate
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("T%d", i)
			tabs = append(tabs, cardest.TableRef{Table: name})
			aliases = append(aliases, name)
			names = append(names, name)
			if i > 0 {
				preds = append(preds, expr.NewJoin(ref(name, "k"), expr.OpEQ, ref(fmt.Sprintf("T%d", i-1), "k")))
			}
		}
		if rng.Intn(2) == 0 {
			preds = append(preds, expr.NewConst(ref("T0", "v"), expr.OpLT, storage.Int64(int64(rng.Intn(100)))))
		}
		want := bruteForceJoinCount(t, cat, aliases, names, preds)
		methodSets := [][]optimizer.JoinMethod{
			{optimizer.NestedLoop},
			{optimizer.SortMerge},
			{optimizer.NestedLoop, optimizer.SortMerge, optimizer.HashJoin},
		}
		for _, ms := range methodSets {
			res := planAndRun(t, cat, tabs, preds, ms, nil)
			if int(res.Stats.RowsProduced) != want {
				t.Fatalf("trial %d methods %v: rows = %d, want %d", trial, ms, res.Stats.RowsProduced, want)
			}
		}
	}
}
