package executor

import (
	"context"
	"math"
	"testing"

	"repro/internal/cardest"
	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/governor"
	"repro/internal/optimizer"
	"repro/internal/storage"
)

// loadTable materializes hand-built rows into a fresh analyzed table.
func loadTable(t *testing.T, cat *catalog.Catalog, name string, schema *storage.Schema, rows [][]storage.Value) {
	t.Helper()
	tbl := storage.NewTable(name, schema)
	for _, row := range rows {
		if err := tbl.AppendRow(row...); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cat.Analyze(tbl, catalog.AnalyzeOptions{}); err != nil {
		t.Fatal(err)
	}
}

// columnarDiff plans the query and executes it with the row engine (the
// oracle) and the columnar engine at workers 1 and 4. Rows, row order,
// work counters, and governor charges must be bit-identical. Returns the
// row-engine result for additional oracle assertions.
func columnarDiff(t *testing.T, cat *catalog.Catalog, tabs []cardest.TableRef,
	preds []expr.Predicate, disjs []expr.Disjunction, methods []optimizer.JoinMethod) *Result {
	t.Helper()
	est, err := cardest.NewQuery(cat, tabs, preds, disjs, cardest.ELS())
	if err != nil {
		t.Fatal(err)
	}
	opt, err := optimizer.New(est, optimizer.Options{Methods: methods, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := opt.BestPlan()
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int, columnar bool) (*Result, [2]int64) {
		gov := governor.New(context.Background(), governor.Limits{Workers: workers})
		e := NewGoverned(cat, gov)
		e.SetColumnar(columnar)
		res, err := e.Execute(plan)
		if err != nil {
			t.Fatalf("workers=%d columnar=%v: %v", workers, columnar, err)
		}
		tuples, rows, _ := gov.Usage()
		return res, [2]int64{tuples, rows}
	}
	row, rowUsage := run(1, false)
	for _, workers := range []int{1, 4} {
		col, colUsage := run(workers, true)
		if col.Stats.RowsProduced != row.Stats.RowsProduced ||
			col.Stats.TuplesScanned != row.Stats.TuplesScanned ||
			col.Stats.Comparisons != row.Stats.Comparisons {
			t.Fatalf("workers=%d: columnar (rows %d, tuples %d, cmp %d) vs row (%d, %d, %d)",
				workers, col.Stats.RowsProduced, col.Stats.TuplesScanned, col.Stats.Comparisons,
				row.Stats.RowsProduced, row.Stats.TuplesScanned, row.Stats.Comparisons)
		}
		if colUsage != rowUsage {
			t.Fatalf("workers=%d: governor usage %v (columnar) vs %v (row)", workers, colUsage, rowUsage)
		}
		if col.Table.NumRows() != row.Table.NumRows() {
			t.Fatalf("workers=%d: %d vs %d result rows", workers, col.Table.NumRows(), row.Table.NumRows())
		}
		for r := 0; r < row.Table.NumRows(); r++ {
			for c := 0; c < row.Table.Schema().NumColumns(); c++ {
				if col.Table.Value(r, c).Key() != row.Table.Value(r, c).Key() {
					t.Fatalf("workers=%d: row %d col %d: %s (columnar) vs %s (row)",
						workers, r, c, col.Table.Value(r, c), row.Table.Value(r, c))
				}
			}
		}
	}
	return row
}

var hashOnly = []optimizer.JoinMethod{optimizer.HashJoin}

// Float kernels: -0.0 joins and filters like 0.0 (Compare and the hash
// key normalization agree), and NULLs never match a predicate or a join
// key.
func TestColumnarFloatKernel(t *testing.T) {
	cat := catalog.New()
	fcol := storage.MustSchema(storage.ColumnDef{Name: "f", Type: storage.TypeFloat64},
		storage.ColumnDef{Name: "g", Type: storage.TypeFloat64})
	neg := math.Copysign(0, -1)
	loadTable(t, cat, "F1", fcol, [][]storage.Value{
		{storage.Float64(neg), storage.Float64(1.5)},
		{storage.Float64(0.0), storage.Float64(-2.5)},
		{storage.Float64(1.25), storage.Float64(0.5)},
		{storage.Null(storage.TypeFloat64), storage.Float64(3.0)},
		{storage.Float64(2.5), storage.Null(storage.TypeFloat64)},
	})
	loadTable(t, cat, "F2", fcol, [][]storage.Value{
		{storage.Float64(0.0), storage.Float64(0.0)},
		{storage.Float64(neg), storage.Float64(1.0)},
		{storage.Float64(2.5), storage.Float64(2.0)},
		{storage.Null(storage.TypeFloat64), storage.Float64(4.0)},
	})
	res := columnarDiff(t, cat,
		[]cardest.TableRef{{Table: "F1"}, {Table: "F2"}},
		[]expr.Predicate{
			expr.NewJoin(ref("F1", "f"), expr.OpEQ, ref("F2", "f")),
			expr.NewConst(ref("F1", "g"), expr.OpGT, storage.Float64(-3)),
		}, nil, hashOnly)
	// Oracle: -0.0 and 0.0 cross-match (2×2 pairs); the 2.5 match dies on
	// its NULL g (NULL fails every predicate); NULL keys never join.
	if res.Stats.RowsProduced != 4 {
		t.Fatalf("rows = %d, want 4", res.Stats.RowsProduced)
	}
}

// String kernels: equality joins and range predicates over strings.
func TestColumnarStringKernel(t *testing.T) {
	cat := catalog.New()
	scol := storage.MustSchema(storage.ColumnDef{Name: "s", Type: storage.TypeString},
		storage.ColumnDef{Name: "u", Type: storage.TypeString})
	loadTable(t, cat, "S1", scol, [][]storage.Value{
		{storage.String64("apple"), storage.String64("x")},
		{storage.String64("pear"), storage.String64("y")},
		{storage.String64("fig"), storage.String64("z")},
		{storage.Null(storage.TypeString), storage.String64("w")},
		{storage.String64(""), storage.String64("v")},
	})
	loadTable(t, cat, "S2", scol, [][]storage.Value{
		{storage.String64("fig"), storage.String64("a")},
		{storage.String64("apple"), storage.String64("b")},
		{storage.String64("apple"), storage.String64("c")},
		{storage.String64(""), storage.String64("d")},
		{storage.Null(storage.TypeString), storage.String64("e")},
	})
	res := columnarDiff(t, cat,
		[]cardest.TableRef{{Table: "S1"}, {Table: "S2"}},
		[]expr.Predicate{
			expr.NewJoin(ref("S1", "s"), expr.OpEQ, ref("S2", "s")),
			expr.NewConst(ref("S1", "s"), expr.OpLT, storage.String64("zzz")),
		}, nil, hashOnly)
	// apple×2 + fig + ""×1; NULLs never join.
	if res.Stats.RowsProduced != 4 {
		t.Fatalf("rows = %d, want 4", res.Stats.RowsProduced)
	}
}

// Int64 kernels must compare as integers: values beyond 2^53 that would
// collide under float64 rounding stay distinct.
func TestColumnarInt64PrecisionKernel(t *testing.T) {
	cat := catalog.New()
	icol := storage.MustSchema(storage.ColumnDef{Name: "k", Type: storage.TypeInt64})
	big := int64(1) << 53
	loadTable(t, cat, "I1", icol, [][]storage.Value{
		{storage.Int64(big)}, {storage.Int64(big + 1)}, {storage.Int64(7)},
	})
	loadTable(t, cat, "I2", icol, [][]storage.Value{
		{storage.Int64(big + 1)}, {storage.Int64(7)},
	})
	res := columnarDiff(t, cat,
		[]cardest.TableRef{{Table: "I1"}, {Table: "I2"}},
		[]expr.Predicate{
			expr.NewJoin(ref("I1", "k"), expr.OpEQ, ref("I2", "k")),
			expr.NewConst(ref("I1", "k"), expr.OpGE, storage.Int64(0)),
		}, nil, hashOnly)
	if res.Stats.RowsProduced != 2 {
		t.Fatalf("rows = %d, want 2 (2^53 and 2^53+1 must not collide)", res.Stats.RowsProduced)
	}
}

// Mixed-type join keys (int64 vs float64) force the columnar engine onto
// the row fallback; results and counters still agree with the row oracle
// (typed keys never cross-match in either engine).
func TestColumnarMixedTypeKeyFallback(t *testing.T) {
	cat := catalog.New()
	icol := storage.MustSchema(storage.ColumnDef{Name: "k", Type: storage.TypeInt64})
	fcol := storage.MustSchema(storage.ColumnDef{Name: "k", Type: storage.TypeFloat64})
	loadTable(t, cat, "MI", icol, [][]storage.Value{
		{storage.Int64(1)}, {storage.Int64(2)},
	})
	loadTable(t, cat, "MF", fcol, [][]storage.Value{
		{storage.Float64(1)}, {storage.Float64(2)},
	})
	columnarDiff(t, cat,
		[]cardest.TableRef{{Table: "MI"}, {Table: "MF"}},
		[]expr.Predicate{expr.NewJoin(ref("MI", "k"), expr.OpEQ, ref("MF", "k"))},
		nil, hashOnly)
}

// OR-group filters run through the columnar disjunction path with the
// same short-circuit comparison counting as the row engine.
func TestColumnarDisjunctions(t *testing.T) {
	cat := buildCatalog(t, chainSpecs(120, 80)...)
	d := mustDisj(t,
		expr.NewConst(ref("T0", "v"), expr.OpLT, storage.Int64(10)),
		expr.NewConst(ref("T0", "v"), expr.OpGE, storage.Int64(90)),
		expr.NewConst(ref("T0", "k"), expr.OpEQ, storage.Int64(3)),
	)
	columnarDiff(t, cat,
		[]cardest.TableRef{{Table: "T0"}, {Table: "T1"}},
		[]expr.Predicate{expr.NewJoin(ref("T0", "k"), expr.OpEQ, ref("T1", "k"))},
		[]expr.Disjunction{d}, hashOnly)
}

// DisableColumnar forces the row engine even when columnar is available.
func TestColumnarGovernorEscapeHatch(t *testing.T) {
	cat := buildCatalog(t, chainSpecs(100)...)
	est, err := cardest.NewQuery(cat, []cardest.TableRef{{Table: "T0"}},
		[]expr.Predicate{expr.NewConst(ref("T0", "v"), expr.OpLT, storage.Int64(50))}, nil, cardest.ELS())
	if err != nil {
		t.Fatal(err)
	}
	opt, err := optimizer.New(est, optimizer.PaperOptions())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := opt.BestPlan()
	if err != nil {
		t.Fatal(err)
	}
	gov := governor.New(context.Background(), governor.Limits{DisableColumnar: true, Workers: 1})
	e := NewGoverned(cat, gov)
	if e.useColumnar() {
		t.Fatal("Limits.DisableColumnar did not reach the executor")
	}
	if _, err := e.Execute(plan); err != nil {
		t.Fatal(err)
	}
}
