package executor

import (
	"fmt"
	"sort"

	"repro/internal/storage"
)

// AggOp is an aggregate operator for Aggregate.
type AggOp int

const (
	// AggCountStar counts rows.
	AggCountStar AggOp = iota
	// AggCount counts non-NULL values of a column.
	AggCount
	// AggSum sums a numeric column (NULLs skipped).
	AggSum
	// AggMin takes the minimum value (NULLs skipped).
	AggMin
	// AggMax takes the maximum value (NULLs skipped).
	AggMax
	// AggAvg averages a numeric column (NULLs skipped).
	AggAvg
)

// String names the operator.
func (op AggOp) String() string {
	switch op {
	case AggCountStar, AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	default:
		return "?"
	}
}

// AggSpec is one aggregate to compute: Op over column ordinal Col of the
// input (ignored for AggCountStar). Name labels the output column.
type AggSpec struct {
	// Op is the aggregate operator.
	Op AggOp
	// Col is the subject column ordinal (unused for AggCountStar).
	Col int
	// Name is the output column name.
	Name string
}

// aggState accumulates one aggregate for one group.
type aggState struct {
	count int64
	sum   float64
	min   storage.Value
	max   storage.Value
	seen  bool
}

// Aggregate hash-groups the input by the groupCols ordinals and computes
// the aggregates per group under the executor's governor — ungoverned
// grouping was the one row-producing path that escaped budget accounting.
// It follows the SQL semantics: NULL values are skipped by column
// aggregates, NULL group keys form their own group, and with no grouping
// columns a single group is produced even over empty input. Output columns
// are the group columns (in order) followed by the aggregates. Groups are
// emitted in a deterministic (key-sorted) order.
func (e *Executor) Aggregate(tbl *storage.Table, groupCols []int, aggs []AggSpec) (*storage.Table, error) {
	if tbl == nil {
		return nil, fmt.Errorf("executor: Aggregate(nil)")
	}
	inSchema := tbl.Schema()
	for _, c := range groupCols {
		if c < 0 || c >= inSchema.NumColumns() {
			return nil, fmt.Errorf("executor: group column ordinal %d out of range", c)
		}
	}
	outCols := make([]storage.ColumnDef, 0, len(groupCols)+len(aggs))
	for _, c := range groupCols {
		outCols = append(outCols, inSchema.Column(c))
	}
	for _, a := range aggs {
		var typ storage.Type
		switch a.Op {
		case AggCountStar:
			typ = storage.TypeInt64
		case AggCount:
			typ = storage.TypeInt64
		case AggSum, AggAvg:
			typ = storage.TypeFloat64
		case AggMin, AggMax:
			if a.Col < 0 || a.Col >= inSchema.NumColumns() {
				return nil, fmt.Errorf("executor: aggregate column ordinal %d out of range", a.Col)
			}
			typ = inSchema.Column(a.Col).Type
		default:
			return nil, fmt.Errorf("executor: unknown aggregate op %d", int(a.Op))
		}
		if a.Op != AggCountStar && (a.Col < 0 || a.Col >= inSchema.NumColumns()) {
			return nil, fmt.Errorf("executor: aggregate column ordinal %d out of range", a.Col)
		}
		name := a.Name
		if name == "" {
			name = fmt.Sprintf("agg%d", len(outCols))
		}
		outCols = append(outCols, storage.ColumnDef{Name: name, Type: typ})
	}
	outSchema, err := storage.NewSchema(outCols...)
	if err != nil {
		return nil, err
	}

	type group struct {
		keyVals []storage.Value
		states  []aggState
	}
	groups := make(map[string]*group)
	var keys []string
	keyOf := func(row int) string {
		k := ""
		for _, c := range groupCols {
			k += tbl.Value(row, c).Key() + "\x00"
		}
		return k
	}
	for r := 0; r < tbl.NumRows(); r++ {
		if err := e.gov.TickTuples(1); err != nil {
			return nil, err
		}
		k := keyOf(r)
		g, ok := groups[k]
		if !ok {
			g = &group{states: make([]aggState, len(aggs))}
			for _, c := range groupCols {
				g.keyVals = append(g.keyVals, tbl.Value(r, c))
			}
			groups[k] = g
			keys = append(keys, k)
		}
		for i, a := range aggs {
			st := &g.states[i]
			if a.Op == AggCountStar {
				st.count++
				continue
			}
			v := tbl.Value(r, a.Col)
			if v.IsNull() {
				continue
			}
			st.count++
			switch a.Op {
			case AggSum, AggAvg:
				st.sum += v.AsFloat()
			case AggMin:
				if !st.seen || storage.Compare(v, st.min) < 0 {
					st.min = v
				}
			case AggMax:
				if !st.seen || storage.Compare(v, st.max) > 0 {
					st.max = v
				}
			}
			st.seen = true
		}
	}
	// A global aggregate over empty input still yields one row.
	if len(groupCols) == 0 && len(groups) == 0 {
		groups[""] = &group{states: make([]aggState, len(aggs))}
		keys = append(keys, "")
	}
	sort.Strings(keys)

	out := storage.NewTable("aggregate", outSchema)
	row := make([]storage.Value, 0, len(outCols))
	for _, k := range keys {
		g := groups[k]
		row = row[:0]
		row = append(row, g.keyVals...)
		for i, a := range aggs {
			st := g.states[i]
			switch a.Op {
			case AggCountStar, AggCount:
				row = append(row, storage.Int64(st.count))
			case AggSum:
				if st.count == 0 {
					row = append(row, storage.Null(storage.TypeFloat64))
				} else {
					row = append(row, storage.Float64(st.sum))
				}
			case AggAvg:
				if st.count == 0 {
					row = append(row, storage.Null(storage.TypeFloat64))
				} else {
					row = append(row, storage.Float64(st.sum/float64(st.count)))
				}
			case AggMin:
				if !st.seen {
					row = append(row, storage.Null(outSchema.Column(len(g.keyVals)+i).Type))
				} else {
					row = append(row, st.min)
				}
			case AggMax:
				if !st.seen {
					row = append(row, storage.Null(outSchema.Column(len(g.keyVals)+i).Type))
				} else {
					row = append(row, st.max)
				}
			}
		}
		if err := e.emit(out, row); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Aggregate is the ungoverned compatibility form: grouping with no budget
// attached (a nil governor never trips).
func Aggregate(tbl *storage.Table, groupCols []int, aggs []AggSpec) (*storage.Table, error) {
	return (&Executor{}).Aggregate(tbl, groupCols, aggs)
}
