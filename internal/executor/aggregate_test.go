package executor

import (
	"testing"

	"repro/internal/storage"
)

func aggTable(t *testing.T) *storage.Table {
	t.Helper()
	tbl := storage.NewTable("t", storage.MustSchema(
		storage.ColumnDef{Name: "g", Type: storage.TypeInt64},
		storage.ColumnDef{Name: "v", Type: storage.TypeInt64},
	))
	rows := [][2]int64{{1, 10}, {1, 20}, {2, 5}, {2, 15}, {2, 25}, {3, 7}}
	for _, r := range rows {
		tbl.MustAppendRow(storage.Int64(r[0]), storage.Int64(r[1]))
	}
	tbl.MustAppendRow(storage.Int64(3), storage.Null(storage.TypeInt64))
	return tbl
}

func TestAggregateGrouped(t *testing.T) {
	tbl := aggTable(t)
	out, err := Aggregate(tbl, []int{0}, []AggSpec{
		{Op: AggCountStar, Name: "n"},
		{Op: AggCount, Col: 1, Name: "nv"},
		{Op: AggSum, Col: 1, Name: "s"},
		{Op: AggMin, Col: 1, Name: "lo"},
		{Op: AggMax, Col: 1, Name: "hi"},
		{Op: AggAvg, Col: 1, Name: "avg"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 3 {
		t.Fatalf("groups = %d, want 3", out.NumRows())
	}
	// Groups emit in key-sorted order: 1, 2, 3.
	check := func(row int, g, n, nv int64, s float64, lo, hi int64, avg float64) {
		t.Helper()
		if out.Value(row, 0).Int() != g {
			t.Errorf("row %d group = %v", row, out.Value(row, 0))
		}
		if out.Value(row, 1).Int() != n || out.Value(row, 2).Int() != nv {
			t.Errorf("row %d counts = %v, %v", row, out.Value(row, 1), out.Value(row, 2))
		}
		if out.Value(row, 3).Float() != s {
			t.Errorf("row %d sum = %v", row, out.Value(row, 3))
		}
		if out.Value(row, 4).Int() != lo || out.Value(row, 5).Int() != hi {
			t.Errorf("row %d min/max = %v/%v", row, out.Value(row, 4), out.Value(row, 5))
		}
		if out.Value(row, 6).Float() != avg {
			t.Errorf("row %d avg = %v", row, out.Value(row, 6))
		}
	}
	check(0, 1, 2, 2, 30, 10, 20, 15)
	check(1, 2, 3, 3, 45, 5, 25, 15)
	// Group 3 has one NULL v: COUNT(*) = 2, COUNT(v) = 1.
	if out.Value(2, 1).Int() != 2 || out.Value(2, 2).Int() != 1 {
		t.Errorf("NULL handling: %v %v", out.Value(2, 1), out.Value(2, 2))
	}
}

func TestAggregateGlobal(t *testing.T) {
	tbl := aggTable(t)
	out, err := Aggregate(tbl, nil, []AggSpec{
		{Op: AggCountStar, Name: "n"},
		{Op: AggSum, Col: 1, Name: "s"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 {
		t.Fatalf("global aggregate rows = %d", out.NumRows())
	}
	if out.Value(0, 0).Int() != 7 || out.Value(0, 1).Float() != 82 {
		t.Errorf("global = %v, %v", out.Value(0, 0), out.Value(0, 1))
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	empty := storage.NewTable("e", storage.MustSchema(storage.ColumnDef{Name: "v", Type: storage.TypeInt64}))
	// Global aggregates over empty input: one row, COUNT 0, SUM NULL.
	out, err := Aggregate(empty, nil, []AggSpec{
		{Op: AggCountStar, Name: "n"},
		{Op: AggSum, Col: 0, Name: "s"},
		{Op: AggMin, Col: 0, Name: "lo"},
		{Op: AggAvg, Col: 0, Name: "a"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 || out.Value(0, 0).Int() != 0 {
		t.Fatalf("empty global: %v", out.Format(0))
	}
	if !out.Value(0, 1).IsNull() || !out.Value(0, 2).IsNull() || !out.Value(0, 3).IsNull() {
		t.Error("SUM/MIN/AVG over empty input should be NULL")
	}
	// Grouped aggregate over empty input: zero rows.
	out, err = Aggregate(empty, []int{0}, []AggSpec{{Op: AggCountStar, Name: "n"}})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 0 {
		t.Errorf("empty grouped rows = %d", out.NumRows())
	}
}

func TestAggregateNullGroupKeys(t *testing.T) {
	tbl := storage.NewTable("t", storage.MustSchema(
		storage.ColumnDef{Name: "g", Type: storage.TypeInt64},
	))
	tbl.MustAppendRow(storage.Null(storage.TypeInt64))
	tbl.MustAppendRow(storage.Null(storage.TypeInt64))
	tbl.MustAppendRow(storage.Int64(1))
	out, err := Aggregate(tbl, []int{0}, []AggSpec{{Op: AggCountStar, Name: "n"}})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("NULLs should form one group: %d rows", out.NumRows())
	}
}

func TestAggregateValidation(t *testing.T) {
	tbl := aggTable(t)
	if _, err := Aggregate(nil, nil, nil); err == nil {
		t.Error("nil table should error")
	}
	if _, err := Aggregate(tbl, []int{99}, nil); err == nil {
		t.Error("bad group ordinal should error")
	}
	if _, err := Aggregate(tbl, nil, []AggSpec{{Op: AggSum, Col: 99}}); err == nil {
		t.Error("bad aggregate ordinal should error")
	}
	if _, err := Aggregate(tbl, nil, []AggSpec{{Op: AggOp(42), Col: 0}}); err == nil {
		t.Error("unknown op should error")
	}
	if _, err := Aggregate(tbl, nil, []AggSpec{{Op: AggMin, Col: -1}}); err == nil {
		t.Error("negative min ordinal should error")
	}
}

func TestAggOpString(t *testing.T) {
	if AggSum.String() != "SUM" || AggCountStar.String() != "COUNT" || AggOp(9).String() != "?" {
		t.Error("op names wrong")
	}
}
