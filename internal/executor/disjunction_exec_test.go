package executor

import (
	"testing"

	"repro/internal/cardest"
	"repro/internal/expr"
	"repro/internal/optimizer"
	"repro/internal/storage"
)

func mustDisj(t *testing.T, preds ...expr.Predicate) expr.Disjunction {
	t.Helper()
	d, err := expr.NewDisjunction(preds)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// OR-group filters are applied by scans, including the re-scanned inner of
// a nested-loops join.
func TestScanAppliesDisjunction(t *testing.T) {
	cat := buildCatalog(t, chainSpecs(60)...)
	d := mustDisj(t,
		expr.NewConst(ref("T0", "k"), expr.OpEQ, storage.Int64(1)),
		expr.NewConst(ref("T0", "k"), expr.OpEQ, storage.Int64(2)),
	)
	est, err := cardest.NewQuery(cat, []cardest.TableRef{{Table: "T0"}}, nil,
		[]expr.Disjunction{d}, cardest.ELS())
	if err != nil {
		t.Fatal(err)
	}
	o, err := optimizer.New(est, optimizer.PaperOptions())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := o.BestPlan()
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(cat).Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Count by hand.
	want := 0
	data := cat.Data("T0")
	for r := 0; r < data.NumRows(); r++ {
		if v := data.Value(r, 0).Int(); v == 1 || v == 2 {
			want++
		}
	}
	if int(res.Stats.RowsProduced) != want {
		t.Errorf("rows = %d, want %d", res.Stats.RowsProduced, want)
	}
}

func TestNLInnerRescanAppliesDisjunction(t *testing.T) {
	cat := buildCatalog(t, chainSpecs(10, 40)...)
	d := mustDisj(t,
		expr.NewConst(ref("T1", "v"), expr.OpLT, storage.Int64(10)),
		expr.NewConst(ref("T1", "v"), expr.OpGE, storage.Int64(90)),
	)
	preds := []expr.Predicate{expr.NewJoin(ref("T0", "k"), expr.OpEQ, ref("T1", "k"))}
	est, err := cardest.NewQuery(cat, []cardest.TableRef{{Table: "T0"}, {Table: "T1"}}, preds,
		[]expr.Disjunction{d}, cardest.ELS())
	if err != nil {
		t.Fatal(err)
	}
	o, err := optimizer.New(est, optimizer.Options{Methods: []optimizer.JoinMethod{optimizer.NestedLoop}})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := o.PlanForOrder([]string{"T0", "T1"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(cat).Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force with the OR applied.
	t0, t1 := cat.Data("T0"), cat.Data("T1")
	want := 0
	for a := 0; a < t0.NumRows(); a++ {
		for b := 0; b < t1.NumRows(); b++ {
			v := t1.Value(b, 1).Int()
			if t0.Value(a, 0).Int() == t1.Value(b, 0).Int() && (v < 10 || v >= 90) {
				want++
			}
		}
	}
	if int(res.Stats.RowsProduced) != want {
		t.Errorf("rows = %d, want %d", res.Stats.RowsProduced, want)
	}
	// Sort-merge path applies the disjunction at materialization too.
	o2, _ := optimizer.New(est, optimizer.Options{Methods: []optimizer.JoinMethod{optimizer.SortMerge}})
	plan2, _ := o2.PlanForOrder([]string{"T0", "T1"})
	res2, err := New(cat).Execute(plan2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.RowsProduced != res.Stats.RowsProduced {
		t.Errorf("SM (%d) and NL (%d) disagree under OR filter", res2.Stats.RowsProduced, res.Stats.RowsProduced)
	}
}

func TestCompileDisjunctionUnknownColumn(t *testing.T) {
	schema := storage.MustSchema(storage.ColumnDef{Name: "t.k", Type: storage.TypeInt64})
	bad := expr.Disjunction{Preds: []expr.Predicate{
		expr.NewConst(ref("t", "zz"), expr.OpEQ, storage.Int64(1)),
	}}
	if _, err := compileDisjunctions([]expr.Disjunction{bad}, schema); err == nil {
		t.Error("unknown column should fail to compile")
	}
	ok := expr.Disjunction{Preds: []expr.Predicate{
		expr.NewConst(ref("t", "k"), expr.OpEQ, storage.Int64(1)),
	}}
	cds, err := compileDisjunctions([]expr.Disjunction{ok}, schema)
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	if !evalDisjunctions(cds, []storage.Value{storage.Int64(1)}, &stats) {
		t.Error("matching row should pass")
	}
	if evalDisjunctions(cds, []storage.Value{storage.Int64(2)}, &stats) {
		t.Error("non-matching row should fail")
	}
	if evalDisjunctions(cds, []storage.Value{storage.Null(storage.TypeInt64)}, &stats) {
		t.Error("NULL should fail the disjunction")
	}
}
