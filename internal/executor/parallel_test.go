package executor

import (
	"context"
	"errors"
	"testing"

	"repro/internal/cardest"
	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/expr"
	"repro/internal/faultinject"
	"repro/internal/governor"
	"repro/internal/optimizer"
	"repro/internal/storage"
)

// bigChainSpecs builds join-chain tables large enough that chunkRanges
// produces several chunks per table, so workers > 1 actually takes the
// parallel code paths.
func bigChainSpecs(rows ...int) []datagen.TableSpec {
	return chainSpecs(rows...)
}

// planChain builds a plan for a k-way chain join over the catalog's
// T0..T(k-1) tables restricted to the given join methods.
func planChain(t *testing.T, cat *catalog.Catalog, k int, methods []optimizer.JoinMethod) optimizer.Plan {
	t.Helper()
	tabs := make([]cardest.TableRef, k)
	var preds []expr.Predicate
	order := make([]string, k)
	for i := 0; i < k; i++ {
		name := "T" + string(rune('0'+i))
		tabs[i] = cardest.TableRef{Table: name}
		order[i] = name
		if i > 0 {
			prev := "T" + string(rune('0'+i-1))
			preds = append(preds, expr.NewJoin(ref(prev, "k"), expr.OpEQ, ref(name, "k")))
		}
	}
	preds = append(preds, expr.NewConst(ref("T0", "v"), expr.OpLT, storage.Int64(70)))
	est, err := cardest.New(cat, tabs, preds, cardest.ELS())
	if err != nil {
		t.Fatal(err)
	}
	o, err := optimizer.New(est, optimizer.Options{Methods: methods})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := o.PlanForOrder(order)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// sameTable asserts b is row-for-row, value-for-value identical to a.
func sameTable(t *testing.T, a, b *storage.Table) {
	t.Helper()
	if a.NumRows() != b.NumRows() {
		t.Fatalf("row count: %d vs %d", a.NumRows(), b.NumRows())
	}
	if a.Schema().NumColumns() != b.Schema().NumColumns() {
		t.Fatalf("column count: %d vs %d", a.Schema().NumColumns(), b.Schema().NumColumns())
	}
	for r := 0; r < a.NumRows(); r++ {
		for c := 0; c < a.Schema().NumColumns(); c++ {
			av, bv := a.Value(r, c), b.Value(r, c)
			if storage.Compare(av, bv) != 0 {
				t.Fatalf("row %d col %d: %s vs %s", r, c, av, bv)
			}
		}
	}
}

// Parallel execution must be bit-identical to serial: same rows in the
// same order, and the same deterministic work counters — that is what the
// differential harness at the repo root relies on.
func TestParallelMatchesSerialAllOperators(t *testing.T) {
	cat := buildCatalog(t, bigChainSpecs(300, 400, 250)...)
	for _, tc := range []struct {
		name    string
		methods []optimizer.JoinMethod
	}{
		{"hash", []optimizer.JoinMethod{optimizer.HashJoin}},
		{"nestedloop", []optimizer.JoinMethod{optimizer.NestedLoop}},
		{"mixed", nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			plan := planChain(t, cat, 3, tc.methods)
			serial := New(cat)
			serial.SetWorkers(1)
			sres, err := serial.Execute(plan)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, 7} {
				par := New(cat)
				par.SetWorkers(workers)
				pres, err := par.Execute(plan)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if pres.Stats.TuplesScanned != sres.Stats.TuplesScanned {
					t.Errorf("workers=%d: tuples scanned %d, serial %d",
						workers, pres.Stats.TuplesScanned, sres.Stats.TuplesScanned)
				}
				if pres.Stats.Comparisons != sres.Stats.Comparisons {
					t.Errorf("workers=%d: comparisons %d, serial %d",
						workers, pres.Stats.Comparisons, sres.Stats.Comparisons)
				}
				if pres.Stats.RowsProduced != sres.Stats.RowsProduced {
					t.Errorf("workers=%d: rows %d, serial %d",
						workers, pres.Stats.RowsProduced, sres.Stats.RowsProduced)
				}
				sameTable(t, sres.Table, pres.Table)
			}
		})
	}
}

// A filtered parallel scan must match the brute-force row set.
func TestParallelScanMatchesBruteForce(t *testing.T) {
	cat := buildCatalog(t, bigChainSpecs(500)...)
	preds := []expr.Predicate{expr.NewConst(ref("T0", "k"), expr.OpLT, storage.Int64(5))}
	want := bruteForceJoinCount(t, cat, []string{"T0"}, []string{"T0"}, preds)
	est, err := cardest.New(cat, []cardest.TableRef{{Table: "T0"}}, preds, cardest.ELS())
	if err != nil {
		t.Fatal(err)
	}
	o, err := optimizer.New(est, optimizer.PaperOptions())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := o.BestPlan()
	if err != nil {
		t.Fatal(err)
	}
	exec := New(cat)
	exec.SetWorkers(4)
	res, err := exec.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if int(res.Stats.RowsProduced) != want {
		t.Errorf("parallel filtered scan rows = %d, want %d", res.Stats.RowsProduced, want)
	}
	if res.Stats.TuplesScanned != 500 {
		t.Errorf("tuples scanned = %d, want 500", res.Stats.TuplesScanned)
	}
}

// The shared governor's tuple accounting must be exact when many worker
// goroutines tick it: a parallel run on a fresh governor must report the
// same usage as a serial run.
func TestParallelGovernorAccountingExact(t *testing.T) {
	cat := buildCatalog(t, bigChainSpecs(300, 400)...)
	plan := planChain(t, cat, 2, []optimizer.JoinMethod{optimizer.HashJoin})

	run := func(workers int) (tuples, rows int64) {
		gov := governor.New(context.Background(), governor.Limits{
			MaxTuples: 1 << 30, MaxRows: 1 << 30, Workers: workers,
		})
		exec := NewGoverned(cat, gov)
		if _, err := exec.Execute(plan); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		tuples, rows, _ = gov.Usage()
		return tuples, rows
	}
	st, sr := run(1)
	pt, pr := run(4)
	if pt != st || pr != sr {
		t.Errorf("governed usage differs: parallel (%d tuples, %d rows), serial (%d, %d)",
			pt, pr, st, sr)
	}
	if st == 0 || sr == 0 {
		t.Fatalf("governor saw no work: %d tuples, %d rows", st, sr)
	}
}

// A tiny tuple budget must trip inside the parallel operators and surface
// the governor's typed budget error.
func TestParallelBudgetExceeded(t *testing.T) {
	cat := buildCatalog(t, bigChainSpecs(300, 400)...)
	plan := planChain(t, cat, 2, []optimizer.JoinMethod{optimizer.HashJoin})
	gov := governor.New(context.Background(), governor.Limits{MaxTuples: 100, Workers: 4})
	exec := NewGoverned(cat, gov)
	_, err := exec.Execute(plan)
	if !errors.Is(err, governor.ErrBudgetExceeded) {
		t.Fatalf("got %v, want ErrBudgetExceeded", err)
	}
}

// Faults armed at the chunk probe points fire inside worker goroutines;
// the operator must return the injected error cleanly.
func TestParallelChunkFaultInjection(t *testing.T) {
	cat := buildCatalog(t, bigChainSpecs(300, 400)...)
	boom := errors.New("injected chunk failure")
	for _, tc := range []struct {
		point   string
		methods []optimizer.JoinMethod
	}{
		{PointScanChunk, []optimizer.JoinMethod{optimizer.HashJoin}},
		{PointJoinChunk, []optimizer.JoinMethod{optimizer.HashJoin}},
		{PointJoinChunk, []optimizer.JoinMethod{optimizer.NestedLoop}},
	} {
		t.Run(tc.point+"/"+tc.methods[0].String(), func(t *testing.T) {
			plan := planChain(t, cat, 2, tc.methods)
			faultinject.Enable(tc.point, faultinject.Fault{Err: boom, Times: 1})
			defer faultinject.Reset()
			exec := New(cat)
			exec.SetWorkers(4)
			_, err := exec.Execute(plan)
			if !errors.Is(err, boom) {
				t.Fatalf("got %v, want the injected error", err)
			}
			if faultinject.Hits(tc.point) != 0 { // Times:1 self-disarms after firing
				t.Fatalf("probe %s did not fire", tc.point)
			}
		})
	}
}

// Cancelling the governor's context from another goroutine while a
// parallel join runs must stop the query with ErrCanceled and leak no
// goroutines (the leak fence lives in TestMain-adjacent concurrency
// tests; here we assert the error taxonomy).
func TestParallelCancelMidJoin(t *testing.T) {
	cat := buildCatalog(t, bigChainSpecs(400, 400, 300)...)
	plan := planChain(t, cat, 3, []optimizer.JoinMethod{optimizer.NestedLoop})
	ctx, cancel := context.WithCancel(context.Background())
	gov := governor.New(ctx, governor.Limits{Workers: 4})
	exec := NewGoverned(cat, gov)
	done := make(chan error, 1)
	go func() {
		_, err := exec.Execute(plan)
		done <- err
	}()
	cancel()
	err := <-done
	// The query may finish before the cancel lands; both outcomes are
	// legal, but an error must be the typed cancellation.
	if err != nil && !errors.Is(err, governor.ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled or success", err)
	}
}

func TestChunkRanges(t *testing.T) {
	for _, tc := range []struct {
		n, workers int
	}{
		{0, 4}, {1, 4}, {63, 4}, {64, 4}, {65, 4}, {1000, 4}, {1000, 1}, {10000, 16},
	} {
		ranges := chunkRanges(tc.n, tc.workers)
		covered := 0
		prev := 0
		for _, r := range ranges {
			if r[0] != prev {
				t.Fatalf("n=%d workers=%d: gap before %v", tc.n, tc.workers, r)
			}
			if r[1] <= r[0] {
				t.Fatalf("n=%d workers=%d: empty range %v", tc.n, tc.workers, r)
			}
			covered += r[1] - r[0]
			prev = r[1]
		}
		if covered != tc.n {
			t.Fatalf("n=%d workers=%d: ranges cover %d rows", tc.n, tc.workers, covered)
		}
	}
}

func TestPartitionOfStable(t *testing.T) {
	for _, key := range []string{"", "a", "hello", "12345"} {
		p := partitionOf(key, 7)
		if p < 0 || p >= 7 {
			t.Fatalf("partitionOf(%q) = %d out of range", key, p)
		}
		if partitionOf(key, 7) != p {
			t.Fatalf("partitionOf(%q) unstable", key)
		}
	}
}
