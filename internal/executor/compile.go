package executor

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/storage"
)

// compiledPred is one predicate with its column references resolved to
// ordinals of a row schema, avoiding per-row name lookups.
type compiledPred struct {
	leftIdx  int
	op       expr.CompareOp
	rightIdx int // -1 when the right side is a constant
	constant storage.Value
	src      expr.Predicate
}

// compiled is a conjunction of resolved predicates.
type compiled struct {
	preds []compiledPred
}

// compileAll resolves each predicate's columns against the schema, whose
// column names are the qualified "alias.column" strings produced by scans.
func compileAll(preds []expr.Predicate, schema *storage.Schema) (compiled, error) {
	out := compiled{preds: make([]compiledPred, 0, len(preds))}
	for _, p := range preds {
		cp := compiledPred{op: p.Op, rightIdx: -1, constant: p.Const, src: p}
		li := schema.ColumnIndex(p.Left.Table + "." + p.Left.Column)
		if li < 0 {
			return compiled{}, fmt.Errorf("executor: cannot resolve %s in schema %s", p.Left, schema)
		}
		cp.leftIdx = li
		if p.RightIsColumn {
			ri := schema.ColumnIndex(p.Right.Table + "." + p.Right.Column)
			if ri < 0 {
				return compiled{}, fmt.Errorf("executor: cannot resolve %s in schema %s", p.Right, schema)
			}
			cp.rightIdx = ri
		}
		out.preds = append(out.preds, cp)
	}
	return out, nil
}

// eval applies the conjunction to one row, counting comparisons. NULL
// operands make a comparison false, per SQL semantics.
func (c compiled) eval(row []storage.Value, stats *Stats) (bool, error) {
	for _, p := range c.preds {
		if !p.evalOne(row, stats) {
			return false, nil
		}
	}
	return true, nil
}

// evalOne applies a single resolved predicate to one row.
func (p compiledPred) evalOne(row []storage.Value, stats *Stats) bool {
	stats.Comparisons++
	l := row[p.leftIdx]
	r := p.constant
	if p.rightIdx >= 0 {
		r = row[p.rightIdx]
	}
	if l.IsNull() || r.IsNull() {
		return false
	}
	return p.op.Holds(storage.Compare(l, r))
}

// compiledDisj is a resolved OR-group.
type compiledDisj struct {
	preds []compiledPred
}

// compileDisjunctions resolves each OR-group against the schema.
func compileDisjunctions(disjs []expr.Disjunction, schema *storage.Schema) ([]compiledDisj, error) {
	out := make([]compiledDisj, 0, len(disjs))
	for _, d := range disjs {
		c, err := compileAll(d.Preds, schema)
		if err != nil {
			return nil, err
		}
		out = append(out, compiledDisj{preds: c.preds})
	}
	return out, nil
}

// evalDisjunctions applies every OR-group: each group must have at least
// one true disjunct.
func evalDisjunctions(ds []compiledDisj, row []storage.Value, stats *Stats) bool {
	for _, d := range ds {
		any := false
		for _, p := range d.preds {
			if p.evalOne(row, stats) {
				any = true
				break
			}
		}
		if !any {
			return false
		}
	}
	return true
}
