package executor

import (
	"strings"
	"testing"

	"repro/internal/cardest"
	"repro/internal/datagen"
	"repro/internal/expr"
	"repro/internal/optimizer"
)

// Per-node estimate-vs-actual recording (the EXPLAIN ANALYZE data).
func TestExecuteRecordsNodeActuals(t *testing.T) {
	cat := buildCatalog(t, chainSpecs(30, 40, 50)...)
	preds := []expr.Predicate{
		expr.NewJoin(ref("T0", "k"), expr.OpEQ, ref("T1", "k")),
		expr.NewJoin(ref("T1", "k"), expr.OpEQ, ref("T2", "k")),
	}
	tabs := []cardest.TableRef{{Table: "T0"}, {Table: "T1"}, {Table: "T2"}}
	est, err := cardest.New(cat, tabs, preds, cardest.ELS())
	if err != nil {
		t.Fatal(err)
	}
	o, err := optimizer.New(est, optimizer.Options{Methods: []optimizer.JoinMethod{optimizer.SortMerge}})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := o.BestPlan()
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(cat).Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Sort-merge plan: 2 joins + 3 scans = 5 nodes, all materialized.
	if len(res.Nodes) != 5 {
		t.Fatalf("nodes = %d, want 5: %+v", len(res.Nodes), res.Nodes)
	}
	if res.Nodes[0].Depth != 0 || res.Nodes[0].ActualRows != res.Stats.RowsProduced {
		t.Errorf("root node wrong: %+v", res.Nodes[0])
	}
	for _, n := range res.Nodes {
		if n.ActualRows < 0 {
			t.Errorf("sort-merge node not materialized: %+v", n)
		}
		if n.EstRows < 0 {
			t.Errorf("negative estimate: %+v", n)
		}
	}
}

func TestExecuteNLInnerNotMaterialized(t *testing.T) {
	cat := buildCatalog(t, chainSpecs(10, 20)...)
	preds := []expr.Predicate{expr.NewJoin(ref("T0", "k"), expr.OpEQ, ref("T1", "k"))}
	tabs := []cardest.TableRef{{Table: "T0"}, {Table: "T1"}}
	est, _ := cardest.New(cat, tabs, preds, cardest.ELS())
	o, _ := optimizer.New(est, optimizer.Options{Methods: []optimizer.JoinMethod{optimizer.NestedLoop}})
	plan, err := o.PlanForOrder([]string{"T0", "T1"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(cat).Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 3 {
		t.Fatalf("nodes = %+v", res.Nodes)
	}
	var sawUnmaterialized bool
	for _, n := range res.Nodes {
		if n.ActualRows == -1 && strings.Contains(n.Node, "Scan(T1") {
			sawUnmaterialized = true
		}
	}
	if !sawUnmaterialized {
		t.Errorf("NL inner scan should report ActualRows = -1: %+v", res.Nodes)
	}
}

func TestExecuteNodeActualsMatchPerfectEstimates(t *testing.T) {
	// Permutation join columns make ELS estimates exact; every materialized
	// node's actual must equal its estimate.
	cat := buildCatalog(t,
		datagen.TableSpec{Name: "A", Rows: 50, Columns: []datagen.ColumnSpec{{Name: "k", Dist: datagen.DistPermutation}}},
		datagen.TableSpec{Name: "B", Rows: 100, Columns: []datagen.ColumnSpec{{Name: "k", Dist: datagen.DistPermutation}}},
	)
	preds := []expr.Predicate{expr.NewJoin(ref("A", "k"), expr.OpEQ, ref("B", "k"))}
	tabs := []cardest.TableRef{{Table: "A"}, {Table: "B"}}
	est, _ := cardest.New(cat, tabs, preds, cardest.ELS())
	o, _ := optimizer.New(est, optimizer.Options{Methods: []optimizer.JoinMethod{optimizer.SortMerge}})
	plan, _ := o.BestPlan()
	res, err := New(cat).Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Nodes {
		if n.ActualRows >= 0 && float64(n.ActualRows) != n.EstRows {
			t.Errorf("node %s: actual %d != estimate %g", n.Node, n.ActualRows, n.EstRows)
		}
	}
}
