// Spill-to-disk hash join. When a build side would not fit the query's
// byte budget (governor.Limits.MaxMemory) — or exceeds the planner's
// estimate-informed reservation, the early trip for wildly underestimated
// joins — the join switches to Grace-style recursive partitioning: build
// rows are hashed into partitions and written to crc32-checksummed spill
// runs through the durable.AtomicWriteFile discipline, then each
// partition is joined within budget and the per-partition outputs are
// merged back into the exact serial row order.
//
// Only the build side goes to disk: the probe side is already
// materialized by the operator-at-a-time executor (its bytes are on the
// ledger regardless), so spilling it would cost I/O and free nothing;
// its rows are routed to partitions as in-memory index lists instead.
//
// Bit-identity with the in-memory join is load-bearing (the differential
// harness referees it): a probe row's equality key lands in exactly one
// partition, partition files preserve build-row order, and the final
// merge interleaves partition outputs by original probe-row index — so
// rows, order, TuplesScanned, Comparisons, and governor tuple/row
// charges all match the serial hash join exactly. Only the bytes ledger
// (and the spill counters) differ, by design.
package executor

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"time"

	"repro/internal/durable"
	"repro/internal/faultinject"
	"repro/internal/governor"
	"repro/internal/storage"
)

// Fault-injection probe points of the spill path. Arm them with an error
// or a DiskFault payload; every failure surfaces as a typed ErrMemory
// (the query could not be served within its byte budget) with no partial
// rows.
const (
	// PointSpillWrite fires before each spill run is written. A DiskFault
	// payload with ShortWrite >= 0 leaves a torn run file behind, as a
	// process kill mid-write would; the crash-recovery sweep must collect
	// it.
	PointSpillWrite = "executor.spill.write"
	// PointSpillRead fires before each spill run is read back.
	PointSpillRead = "executor.spill.read"
	// PointSpillRemove fires before the per-query spill directory is
	// removed on completion. An injected error models a crash during
	// cleanup: the runs stay on disk for the els.Open sweep.
	PointSpillRemove = "executor.spill.remove"
)

// SpillSuffix is the extension of spill run files. Recovery (els.Open)
// sweeps orphaned files with this suffix out of the spill directory; the
// suffix is defined next to that sweep so the two cannot drift.
const SpillSuffix = durable.SpillSuffix

const (
	// maxSpillDepth bounds recursive re-partitioning. A partition still
	// over budget at the bottom (a single pathologically hot key cannot
	// be split by rehashing) is built in memory anyway: the budget is
	// overrun rather than the query failed, and the overrun is visible on
	// the bytes ledger.
	maxSpillDepth = 4
	// maxSpillParts caps the partition fan-out per level.
	maxSpillParts = 32
	minSpillParts = 2
)

// SetSpillDir sets the directory under which per-query spill
// subdirectories are created. Empty (the default) falls back to the
// operating system's temp directory. Call before Execute.
func (e *Executor) SetSpillDir(dir string) { e.spillDir = dir }

func (e *Executor) spillRoot() string {
	if e.spillDir != "" {
		return e.spillDir
	}
	return os.TempDir()
}

// spillFail wraps a spill-path failure into the memory taxonomy: the
// query could not be kept within its byte budget because the spill
// machinery failed.
func spillFail(op string, err error) error {
	return fmt.Errorf("%w: spill %s: %w", governor.ErrMemory, op, err)
}

// spillProbe consults a spill fault point, preferring the governor's own
// taxonomy error when the query is already dead. It returns the
// DiskFault short-write prefix length (-1 for none) alongside the
// injected error, letting the write site leave a torn file behind
// exactly as durable's disk probes do.
func (e *Executor) spillProbe(point string) (short int, err error) {
	f, ok := faultinject.Fire(point)
	if !ok {
		return -1, nil
	}
	if f.Delay > 0 {
		t := time.NewTimer(f.Delay)
		select {
		case <-t.C:
		case <-e.gov.Context().Done():
			t.Stop()
		}
	}
	if gerr := e.gov.Err(); gerr != nil {
		return -1, gerr
	}
	if f.PanicValue != nil {
		panic(f.PanicValue)
	}
	short = -1
	err = f.Err
	if df, isDisk := f.Payload.(faultinject.DiskFault); isDisk {
		short = df.ShortWrite
		if err == nil {
			err = faultinject.ErrCrash
		}
	}
	return short, err
}

// spillPart routes a join key to one of p partitions. The hash is
// salted by recursion depth so a partition that must re-split does not
// rehash onto itself (FNV-1a over the salt byte then the key).
func spillPart(key string, p, salt int) int {
	h := uint32(2166136261)
	h ^= uint32(salt)
	h *= 16777619
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(p))
}

// spillPartitions sizes the partition fan-out so each partition targets
// about a quarter of the budget.
func spillPartitions(need, budget int64) int {
	if budget <= 0 {
		return minSpillParts
	}
	quantum := budget / 4
	if quantum < 1 {
		quantum = 1
	}
	p := int(need/quantum) + 1
	if p < minSpillParts {
		p = minSpillParts
	}
	if p > maxSpillParts {
		p = maxSpillParts
	}
	return p
}

// encodeValue appends one value to a spill run payload: a null marker
// byte, then the typed payload (int64/float64 little-endian, bool one
// byte, string u32 length prefix).
func encodeValue(dst []byte, v storage.Value) []byte {
	if v.IsNull() {
		return append(dst, 1)
	}
	dst = append(dst, 0)
	switch v.Type() {
	case storage.TypeInt64:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v.Int()))
	case storage.TypeFloat64:
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.Float()))
	case storage.TypeBool:
		if v.BoolVal() {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case storage.TypeString:
		s := v.Str()
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
		dst = append(dst, s...)
	}
	return dst
}

// encodeRow appends one table row to a spill run payload.
func encodeRow(dst []byte, tbl *storage.Table, row int) []byte {
	for c := 0; c < tbl.Schema().NumColumns(); c++ {
		dst = encodeValue(dst, tbl.Value(row, c))
	}
	return dst
}

// encodeVals appends an already-boxed row to a spill run payload (the
// recursive re-partition path, which streams rows file-to-file).
func encodeVals(dst []byte, vals []storage.Value) []byte {
	for _, v := range vals {
		dst = encodeValue(dst, v)
	}
	return dst
}

var errSpillCorrupt = fmt.Errorf("spill run corrupt")

// decodeRow decodes one row off the front of a spill run payload into
// vals (reused across calls), returning the remaining payload.
func decodeRow(buf []byte, schema *storage.Schema, vals []storage.Value) ([]storage.Value, []byte, error) {
	vals = vals[:0]
	for c := 0; c < schema.NumColumns(); c++ {
		if len(buf) < 1 {
			return nil, nil, errSpillCorrupt
		}
		null := buf[0] == 1
		buf = buf[1:]
		t := schema.Column(c).Type
		if null {
			vals = append(vals, storage.Null(t))
			continue
		}
		switch t {
		case storage.TypeInt64:
			if len(buf) < 8 {
				return nil, nil, errSpillCorrupt
			}
			vals = append(vals, storage.Int64(int64(binary.LittleEndian.Uint64(buf))))
			buf = buf[8:]
		case storage.TypeFloat64:
			if len(buf) < 8 {
				return nil, nil, errSpillCorrupt
			}
			vals = append(vals, storage.Float64(math.Float64frombits(binary.LittleEndian.Uint64(buf))))
			buf = buf[8:]
		case storage.TypeBool:
			if len(buf) < 1 {
				return nil, nil, errSpillCorrupt
			}
			vals = append(vals, storage.Bool(buf[0] == 1))
			buf = buf[1:]
		case storage.TypeString:
			if len(buf) < 4 {
				return nil, nil, errSpillCorrupt
			}
			n := int(binary.LittleEndian.Uint32(buf))
			buf = buf[4:]
			if len(buf) < n {
				return nil, nil, errSpillCorrupt
			}
			vals = append(vals, storage.String64(string(buf[:n])))
			buf = buf[n:]
		default:
			return nil, nil, errSpillCorrupt
		}
	}
	return vals, buf, nil
}

// spillWriter accumulates encoded rows for one partition and flushes
// them to checksummed run files once the buffer crosses its limit.
// Runs are numbered, so reading them back in sequence preserves the
// exact order rows were routed in.
type spillWriter struct {
	e      *Executor
	dir    string
	prefix string
	limit  int
	run    int
	buf    []byte
	bytes  int64 // payload bytes flushed to disk
	files  []string
}

func newSpillWriter(e *Executor, dir, prefix string, limit int) *spillWriter {
	return &spillWriter{e: e, dir: dir, prefix: prefix, limit: limit}
}

// flush writes the buffered payload as one run file: u32 payload length,
// u32 IEEE crc32 of the payload, payload — the same frame discipline the
// wire protocol and the WAL use — via durable.AtomicWriteFile.
func (w *spillWriter) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	path := filepath.Join(w.dir, fmt.Sprintf("%s-%d%s", w.prefix, w.run, SpillSuffix))
	w.run++
	frame := make([]byte, 8+len(w.buf))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(w.buf)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(w.buf))
	copy(frame[8:], w.buf)
	if short, ferr := w.e.spillProbe(PointSpillWrite); ferr != nil {
		if short >= 0 && short < len(frame) {
			// Torn run: the simulated kill landed mid-write. Leave the
			// partial file for the recovery sweep, exactly as a real crash
			// would.
			_ = os.WriteFile(path, frame[:short], 0o644) //atomicwrite:allow deliberately torn: models a crash mid-write for the recovery sweep
		}
		return spillFail("write", ferr)
	}
	if err := durable.AtomicWriteFile(path, frame, 0o644); err != nil {
		return spillFail("write", err)
	}
	w.bytes += int64(len(w.buf))
	w.files = append(w.files, path)
	w.buf = w.buf[:0]
	return nil
}

// maybeFlush flushes once the buffer crosses the run limit.
func (w *spillWriter) maybeFlush() error {
	if len(w.buf) >= w.limit {
		return w.flush()
	}
	return nil
}

// readSpillRun reads one run file back and verifies its frame.
func (e *Executor) readSpillRun(path string) ([]byte, error) {
	if _, ferr := e.spillProbe(PointSpillRead); ferr != nil {
		return nil, spillFail("read", ferr)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, spillFail("read", err)
	}
	if len(data) < 8 {
		return nil, spillFail("read", fmt.Errorf("%w: %s: truncated frame", errSpillCorrupt, filepath.Base(path)))
	}
	n := binary.LittleEndian.Uint32(data[0:4])
	if int(n) != len(data)-8 {
		return nil, spillFail("read", fmt.Errorf("%w: %s: length %d, want %d", errSpillCorrupt, filepath.Base(path), len(data)-8, n))
	}
	payload := data[8:]
	if crc := crc32.ChecksumIEEE(payload); crc != binary.LittleEndian.Uint32(data[4:8]) {
		return nil, spillFail("read", fmt.Errorf("%w: %s: checksum mismatch", errSpillCorrupt, filepath.Base(path)))
	}
	return payload, nil
}

// spillRunLimit sizes one partition's run buffer: a quarter of the
// budget shared across the partitions, floored so tiny budgets still
// make progress.
func spillRunLimit(budget int64, parts int) int {
	limit := int(budget / (4 * int64(parts)))
	if limit < 4096 {
		limit = 4096
	}
	if limit > 1<<20 {
		limit = 1 << 20
	}
	return limit
}

// spillHashJoin is the Grace hash join: the build side is partitioned
// into checksummed spill runs, probe rows are routed to matching
// in-memory index lists, each partition is joined within budget
// (re-partitioning recursively while over), and partition outputs merge
// back into exact probe-row order.
func (e *Executor) spillHashJoin(left, right *storage.Table, lKey, rKey int,
	residual compiled, outSchema *storage.Schema, stats *Stats, need int64) (out *storage.Table, err error) {
	root := e.spillRoot()
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, spillFail("create dir", err)
	}
	dir, err := os.MkdirTemp(root, "q")
	if err != nil {
		return nil, spillFail("create dir", err)
	}
	defer func() {
		if _, perr := e.spillProbe(PointSpillRemove); perr != nil {
			// Simulated crash during cleanup: the runs stay behind for the
			// els.Open recovery sweep, and the query reports the failure.
			if err == nil {
				out, err = nil, spillFail("remove", perr)
			}
			return
		}
		os.RemoveAll(dir)
	}()

	budget := e.gov.MaxMemory()
	parts := spillPartitions(need, budget)
	limit := spillRunLimit(budget, parts)

	// The run buffers are working memory too: account for them while the
	// partitioning passes hold them.
	bufCharge := int64(limit) * int64(parts)
	e.gov.ChargeBytes(bufCharge)
	defer e.gov.ReleaseBytes(bufCharge)

	// Phase 1: route build rows to partition run files, in row order.
	writers := make([]*spillWriter, parts)
	for p := range writers {
		writers[p] = newSpillWriter(e, dir, fmt.Sprintf("b%d", p), limit)
	}
	for r := 0; r < right.NumRows(); r++ {
		if err := e.visit(stats); err != nil {
			return nil, err
		}
		v := right.Value(r, rKey)
		if v.IsNull() {
			continue
		}
		w := writers[spillPart(v.Key(), parts, 0)]
		w.buf = encodeRow(w.buf, right, r)
		if err := w.maybeFlush(); err != nil {
			return nil, err
		}
	}
	var spilled int64
	for _, w := range writers {
		if err := w.flush(); err != nil {
			return nil, err
		}
		spilled += w.bytes
	}
	e.gov.RecordSpill(spilled)

	// Phase 2: route probe rows to in-memory partition index lists, in
	// row order (each list therefore stays ascending in original index).
	lparts := make([][]int, parts)
	for l := 0; l < left.NumRows(); l++ {
		if err := e.visit(stats); err != nil {
			return nil, err
		}
		v := left.Value(l, lKey)
		if v.IsNull() {
			continue
		}
		p := spillPart(v.Key(), parts, 0)
		lparts[p] = append(lparts[p], l)
	}

	// Phase 3: join each partition, then merge outputs by original
	// probe-row index to restore the serial emit order.
	outs := make([]*storage.Table, 0, parts)
	origins := make([][]int, 0, parts)
	for p := 0; p < parts; p++ {
		pOut, pIdx, err := e.joinSpillPartition(dir, writers[p].files, writers[p].bytes,
			lparts[p], left, right.Schema(), lKey, rKey, residual, outSchema, stats, 1)
		if err != nil {
			return nil, err
		}
		outs = append(outs, pOut)
		origins = append(origins, pIdx)
	}
	merged, _, err := e.mergeByOrigin(outSchema, outs, origins)
	return merged, err
}

// joinSpillPartition joins one partition's build runs against its probe
// index list. A partition still over budget re-partitions recursively
// (streaming rows file-to-file, never holding the oversized partition in
// memory) until maxSpillDepth.
func (e *Executor) joinSpillPartition(dir string, files []string, payloadBytes int64,
	lrows []int, left *storage.Table, rightSchema *storage.Schema, lKey, rKey int,
	residual compiled, outSchema *storage.Schema, stats *Stats, depth int) (*storage.Table, []int, error) {
	if len(files) == 0 || len(lrows) == 0 {
		// No matches possible; the runs (if any) die with the query dir.
		return storage.NewTable("join", outSchema), nil, nil
	}
	used, _, _ := e.gov.MemoryUsage()
	if budget := e.gov.MaxMemory(); budget > 0 && used+payloadBytes > budget && depth < maxSpillDepth {
		return e.respillPartition(dir, files, lrows, left, rightSchema, lKey, rKey, residual, outSchema, stats, depth)
	}

	// Decode the partition's build rows (run order = original row order).
	part := storage.NewTable("spill", rightSchema)
	vals := make([]storage.Value, 0, rightSchema.NumColumns())
	for _, f := range files {
		payload, err := e.readSpillRun(f)
		if err != nil {
			return nil, nil, err
		}
		for len(payload) > 0 {
			// Decoding revisits rows already counted in the routing pass, so
			// poll the governor without charging — counter parity with the
			// in-memory join is load-bearing.
			if err := e.gov.Err(); err != nil {
				return nil, nil, err
			}
			var derr error
			vals, payload, derr = decodeRow(payload, rightSchema, vals)
			if derr != nil {
				return nil, nil, spillFail("read", derr)
			}
			if err := part.AppendRow(vals...); err != nil {
				return nil, nil, spillFail("read", err)
			}
		}
	}
	partBytes := part.ApproxBytes()
	e.gov.ChargeBytes(partBytes)
	defer e.gov.ReleaseBytes(partBytes)

	build := make(map[string][]int, part.NumRows())
	for r := 0; r < part.NumRows(); r++ {
		build[part.Value(r, rKey).Key()] = append(build[part.Value(r, rKey).Key()], r)
	}
	out := storage.NewTable("join", outSchema)
	var origin []int
	row := make([]storage.Value, 0, outSchema.NumColumns())
	for _, l := range lrows {
		for _, r := range build[left.Value(l, lKey).Key()] {
			row = left.AppendRowTo(row[:0], l)
			row = part.AppendRowTo(row, r)
			ok, err := residual.eval(row, stats)
			if err != nil {
				return nil, nil, err
			}
			if ok {
				if err := e.emit(out, row); err != nil {
					return nil, nil, err
				}
				origin = append(origin, l)
			}
		}
	}
	return out, origin, nil
}

// respillPartition splits an over-budget partition one level deeper:
// build rows stream from the parent runs into salted sub-partition runs,
// probe indices re-route in memory, and each sub-partition joins
// recursively. Sub-outputs merge by origin, so the parent sees the same
// order it would have produced without the extra level.
func (e *Executor) respillPartition(dir string, files []string, lrows []int,
	left *storage.Table, rightSchema *storage.Schema, lKey, rKey int,
	residual compiled, outSchema *storage.Schema, stats *Stats, depth int) (*storage.Table, []int, error) {
	budget := e.gov.MaxMemory()
	parts := minSpillParts * 2
	limit := spillRunLimit(budget, parts)
	writers := make([]*spillWriter, parts)
	for p := range writers {
		writers[p] = newSpillWriter(e, dir, fmt.Sprintf("d%d-%s-%d", depth, filepath.Base(files[0]), p), limit)
	}
	vals := make([]storage.Value, 0, rightSchema.NumColumns())
	for _, f := range files {
		payload, err := e.readSpillRun(f)
		if err != nil {
			return nil, nil, err
		}
		for len(payload) > 0 {
			var derr error
			vals, payload, derr = decodeRow(payload, rightSchema, vals)
			if derr != nil {
				return nil, nil, spillFail("read", derr)
			}
			w := writers[spillPart(vals[rKey].Key(), parts, depth)]
			w.buf = encodeVals(w.buf, vals)
			if err := w.maybeFlush(); err != nil {
				return nil, nil, err
			}
		}
	}
	var spilled int64
	for _, w := range writers {
		if err := w.flush(); err != nil {
			return nil, nil, err
		}
		spilled += w.bytes
	}
	e.gov.RecordSpill(spilled)

	subRows := make([][]int, parts)
	for _, l := range lrows {
		p := spillPart(left.Value(l, lKey).Key(), parts, depth)
		subRows[p] = append(subRows[p], l)
	}
	outs := make([]*storage.Table, 0, parts)
	origins := make([][]int, 0, parts)
	for p := 0; p < parts; p++ {
		sOut, sIdx, err := e.joinSpillPartition(dir, writers[p].files, writers[p].bytes,
			subRows[p], left, rightSchema, lKey, rKey, residual, outSchema, stats, depth+1)
		if err != nil {
			return nil, nil, err
		}
		outs = append(outs, sOut)
		origins = append(origins, sIdx)
	}
	return e.mergeByOrigin(outSchema, outs, origins)
}

// mergeByOrigin interleaves partition outputs by original probe-row
// index. Each origin index occurs in exactly one partition (its key
// routes to one partition), and within a partition origins ascend, so
// repeatedly taking the partition with the smallest current origin
// reconstructs the serial probe order exactly.
func (e *Executor) mergeByOrigin(schema *storage.Schema, outs []*storage.Table, origins [][]int) (*storage.Table, []int, error) {
	live := 0
	total := 0
	last := -1
	for p := range origins {
		total += len(origins[p])
		if len(origins[p]) > 0 {
			live = p
			last++
		}
	}
	if last <= 0 {
		// Zero or one non-empty partition: its output is already in order.
		if total == 0 {
			return storage.NewTable("join", schema), nil, nil
		}
		return outs[live], origins[live], nil
	}
	merged := storage.NewTable("join", schema)
	mergedOrigin := make([]int, 0, total)
	cursors := make([]int, len(outs))
	row := make([]storage.Value, 0, schema.NumColumns())
	for {
		// The merge re-appends rows the join loops already charged via
		// emit; poll for cancellation only, keeping counters bit-identical
		// to the in-memory path.
		if err := e.gov.Err(); err != nil {
			return nil, nil, err
		}
		best, bestOrigin := -1, int(^uint(0)>>1)
		for p := range outs {
			if cursors[p] < len(origins[p]) && origins[p][cursors[p]] < bestOrigin {
				best, bestOrigin = p, origins[p][cursors[p]]
			}
		}
		if best < 0 {
			return merged, mergedOrigin, nil
		}
		row = outs[best].AppendRowTo(row[:0], cursors[best])
		if err := merged.AppendRow(row...); err != nil {
			return nil, nil, err
		}
		mergedOrigin = append(mergedOrigin, bestOrigin)
		cursors[best]++
	}
}
