package executor

import (
	"testing"

	"repro/internal/cardest"
	"repro/internal/datagen"
	"repro/internal/expr"
	"repro/internal/optimizer"
	"repro/internal/storage"
)

// chainSpec2 is a two-join-column table spec for residual-predicate tests.
func chainSpec2(name string, rows int) datagen.TableSpec {
	return datagen.TableSpec{Name: name, Rows: rows, Columns: []datagen.ColumnSpec{
		{Name: "k", Dist: datagen.DistUniform, Domain: 8},
		{Name: "u", Dist: datagen.DistUniform, Domain: 4},
	}}
}

func TestIndexNLMatchesOtherMethods(t *testing.T) {
	cat := buildCatalog(t, chainSpecs(40, 60)...)
	if err := cat.BuildIndex("T1", "k"); err != nil {
		t.Fatal(err)
	}
	preds := []expr.Predicate{
		expr.NewJoin(ref("T0", "k"), expr.OpEQ, ref("T1", "k")),
		expr.NewConst(ref("T1", "v"), expr.OpLT, storage.Int64(80)),
	}
	tabs := []cardest.TableRef{{Table: "T0"}, {Table: "T1"}}
	want := bruteForceJoinCount(t, cat, []string{"T0", "T1"}, []string{"T0", "T1"}, preds)

	est, err := cardest.New(cat, tabs, preds, cardest.ELS())
	if err != nil {
		t.Fatal(err)
	}
	o, err := optimizer.New(est, optimizer.Options{Methods: []optimizer.JoinMethod{optimizer.IndexNL}})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := o.PlanForOrder([]string{"T0", "T1"})
	if err != nil {
		t.Fatal(err)
	}
	j, ok := plan.(*optimizer.Join)
	if !ok || j.Method != optimizer.IndexNL || j.IndexColumn != "k" {
		t.Fatalf("expected an IndexNL plan on k: %v", plan)
	}
	res, err := New(cat).Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if int(res.Stats.RowsProduced) != want {
		t.Errorf("IndexNL rows = %d, want %d", res.Stats.RowsProduced, want)
	}
	// Index probes should visit far fewer inner tuples than full rescans:
	// 40 probes × ~6 matches ≈ 240 vs 40 × 60 = 2400.
	if res.Stats.TuplesScanned >= 40*60 {
		t.Errorf("index join scanned %d tuples; should be far below %d", res.Stats.TuplesScanned, 40*60)
	}
}

func TestIndexNLSkippedWithoutIndex(t *testing.T) {
	cat := buildCatalog(t, chainSpecs(10, 20)...)
	preds := []expr.Predicate{expr.NewJoin(ref("T0", "k"), expr.OpEQ, ref("T1", "k"))}
	tabs := []cardest.TableRef{{Table: "T0"}, {Table: "T1"}}
	est, _ := cardest.New(cat, tabs, preds, cardest.ELS())
	// IndexNL is the only allowed method but no index exists: planning the
	// join must fail (no applicable method).
	o, _ := optimizer.New(est, optimizer.Options{Methods: []optimizer.JoinMethod{optimizer.IndexNL}})
	if _, err := o.PlanForOrder([]string{"T0", "T1"}); err == nil {
		t.Error("IndexNL without an index should be inapplicable")
	}
	// With NL as fallback, planning succeeds and uses NL.
	o2, _ := optimizer.New(est, optimizer.Options{Methods: []optimizer.JoinMethod{optimizer.IndexNL, optimizer.NestedLoop}})
	plan, err := o2.PlanForOrder([]string{"T0", "T1"})
	if err != nil {
		t.Fatal(err)
	}
	if plan.(*optimizer.Join).Method != optimizer.NestedLoop {
		t.Errorf("expected NL fallback, got %v", plan)
	}
}

func TestIndexNLWithResidualPredicates(t *testing.T) {
	// Two equality predicates to the same inner table: one becomes the
	// probe key, the other a residual.
	cat := buildCatalog(t,
		chainSpec2("A", 30),
		chainSpec2("B", 50),
	)
	if err := cat.BuildIndex("B", "k"); err != nil {
		t.Fatal(err)
	}
	preds := []expr.Predicate{
		expr.NewJoin(ref("A", "k"), expr.OpEQ, ref("B", "k")),
		expr.NewJoin(ref("A", "u"), expr.OpEQ, ref("B", "u")),
	}
	tabs := []cardest.TableRef{{Table: "A"}, {Table: "B"}}
	want := bruteForceJoinCount(t, cat, []string{"A", "B"}, []string{"A", "B"}, preds)
	est, _ := cardest.New(cat, tabs, preds, cardest.ELS())
	o, _ := optimizer.New(est, optimizer.Options{Methods: []optimizer.JoinMethod{optimizer.IndexNL}})
	plan, err := o.PlanForOrder([]string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(cat).Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if int(res.Stats.RowsProduced) != want {
		t.Errorf("rows = %d, want %d", res.Stats.RowsProduced, want)
	}
}

func TestIndexNLErrors(t *testing.T) {
	cat := buildCatalog(t, chainSpecs(5, 5)...)
	// Hand-build a broken IndexNL plan: no index registered.
	preds := []expr.Predicate{expr.NewJoin(ref("T0", "k"), expr.OpEQ, ref("T1", "k"))}
	tabs := []cardest.TableRef{{Table: "T0"}, {Table: "T1"}}
	est, _ := cardest.New(cat, tabs, preds, cardest.ELS())
	o, _ := optimizer.New(est, optimizer.Options{Methods: []optimizer.JoinMethod{optimizer.NestedLoop}})
	plan, _ := o.PlanForOrder([]string{"T0", "T1"})
	j := plan.(*optimizer.Join)
	j.Method = optimizer.IndexNL
	if _, err := New(cat).Execute(j); err == nil {
		t.Error("IndexNL without IndexColumn should error")
	}
	j.IndexColumn = "k"
	if _, err := New(cat).Execute(j); err == nil {
		t.Error("IndexNL without a registered index should error")
	}
}
