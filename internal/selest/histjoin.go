package selest

import "repro/internal/catalog"

// HistogramJoinSelectivity estimates the selectivity of an equality join
// between two columns from their histograms, relaxing the uniformity
// assumption Equation 2 relies on — the extension the paper's Section 9
// motivates for Zipfian data. For every pair of overlapping buckets the
// expected number of matches is
//
//	c₁′ · c₂′ / max(d₁′, d₂′)
//
// (Equation 1 applied bucket-locally with pro-rated counts and distinct
// values), and the selectivity is the total divided by n₁·n₂. The second
// return value is false when either histogram is missing or empty, in
// which case the caller should fall back to Equation 2.
func HistogramJoinSelectivity(h1, h2 *catalog.Histogram) (float64, bool) {
	if h1 == nil || h2 == nil || h1.Total <= 0 || h2.Total <= 0 ||
		len(h1.Buckets) == 0 || len(h2.Buckets) == 0 {
		return 0, false
	}
	var matches float64
	for _, b1 := range h1.Buckets {
		for _, b2 := range h2.Buckets {
			lo := b1.Lo
			if b2.Lo > lo {
				lo = b2.Lo
			}
			hi := b1.Hi
			if b2.Hi < hi {
				hi = b2.Hi
			}
			if hi < lo {
				continue
			}
			f1 := overlapFraction(b1, lo, hi)
			f2 := overlapFraction(b2, lo, hi)
			if f1 <= 0 || f2 <= 0 {
				continue
			}
			c1, d1 := b1.Count*f1, b1.Distinct*f1
			c2, d2 := b2.Count*f2, b2.Distinct*f2
			if d1 < 1 {
				d1 = 1
			}
			if d2 < 1 {
				d2 = 1
			}
			dmax := d1
			if d2 > dmax {
				dmax = d2
			}
			matches += c1 * c2 / dmax
		}
	}
	sel := matches / (h1.Total * h2.Total)
	if sel < 0 {
		sel = 0
	}
	if sel > 1 {
		sel = 1
	}
	return sel, true
}

// overlapFraction returns the fraction of bucket b falling inside [lo, hi]
// under the uniform-within-bucket assumption. Zero-width (single-value)
// buckets contribute fully when their point lies in the range.
func overlapFraction(b catalog.Bucket, lo, hi float64) float64 {
	width := b.Hi - b.Lo
	if width <= 0 {
		if b.Lo >= lo && b.Lo <= hi {
			return 1
		}
		return 0
	}
	f := (hi - lo) / width
	if f > 1 {
		f = 1
	}
	if f < 0 {
		f = 0
	}
	return f
}
