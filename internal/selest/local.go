package selest

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/storage"
)

// Options configures selectivity estimation.
type Options struct {
	// Reduction selects urn-model or linear distinct-value reduction.
	Reduction DistinctReduction
	// UseHistograms enables distribution statistics for local predicates
	// when the catalog has them (Section 5: "If we have distribution
	// statistics on y, they can be used to accurately estimate ‖R‖′").
	UseHistograms bool
	// HistogramJoins enables histogram-based join selectivities
	// (HistogramJoinSelectivity), relaxing the uniformity assumption for
	// join columns — the paper's Section 9 future-work extension. Join
	// predicates whose columns both carry histograms use them; others fall
	// back to Equation 2. The histograms used are the raw (pre-local-
	// predicate) ones.
	HistogramJoins bool
}

// DefaultOptions returns the paper's configuration: urn model, histograms
// used when available.
func DefaultOptions() Options {
	return Options{Reduction: ReductionUrn, UseHistograms: true}
}

// ConstSelectivity estimates the fraction of rows of a column satisfying
// "col op const". With a histogram (and opts.UseHistograms) the histogram
// drives the estimate; otherwise the uniformity assumption over the
// column's [min, max] range (integer-aware) applies, with System-R style
// fallbacks when no range is known.
func ConstSelectivity(cs *catalog.ColumnStats, op expr.CompareOp, c storage.Value, opts Options) (float64, error) {
	if cs == nil {
		return 0, fmt.Errorf("selest: no statistics for column")
	}
	if c.IsNull() {
		return 0, nil // col op NULL is never true
	}
	// Equality and inequality use the distinct count directly.
	d := cs.Distinct
	switch op {
	case expr.OpEQ:
		if opts.UseHistograms && cs.Hist != nil && numeric(c) {
			return cs.Hist.SelectivityEQ(c.AsFloat()), nil
		}
		if d <= 0 {
			return 0, nil
		}
		return clamp01(1 / d), nil
	case expr.OpNE:
		if opts.UseHistograms && cs.Hist != nil && numeric(c) {
			return clamp01(1 - cs.Hist.SelectivityEQ(c.AsFloat())), nil
		}
		if d <= 0 {
			return 1, nil
		}
		return clamp01(1 - 1/d), nil
	}
	// Range comparison.
	if !numeric(c) {
		// Non-numeric ranges fall back to the classic 1/3 guess.
		return 1.0 / 3.0, nil
	}
	cf := c.AsFloat()
	if opts.UseHistograms && cs.Hist != nil {
		switch op {
		case expr.OpLT:
			return cs.Hist.SelectivityLT(cf), nil
		case expr.OpLE:
			return cs.Hist.SelectivityLE(cf), nil
		case expr.OpGT:
			return cs.Hist.SelectivityGT(cf), nil
		case expr.OpGE:
			return cs.Hist.SelectivityGE(cf), nil
		}
	}
	if !cs.HasRange || cs.Max < cs.Min {
		return 1.0 / 3.0, nil
	}
	return uniformRangeSelectivity(cs, op, cf), nil
}

func numeric(v storage.Value) bool {
	return v.Type() == storage.TypeInt64 || v.Type() == storage.TypeFloat64
}

// uniformRangeSelectivity applies the uniformity assumption over the
// column's value range. Integer columns use a discrete domain of
// max−min+1 values so that, e.g., x < 100 over domain 0..999 has
// selectivity exactly 100/1000 = 0.1, matching the arithmetic of the
// paper's Section 8 experiment.
func uniformRangeSelectivity(cs *catalog.ColumnStats, op expr.CompareOp, c float64) float64 {
	if cs.Type == storage.TypeInt64 {
		width := cs.Max - cs.Min + 1
		if width <= 0 {
			return 1.0 / 3.0
		}
		cc := math.Floor(c)
		var count float64
		switch op {
		case expr.OpLT:
			count = cc - cs.Min // values in [min, c-1]; c itself excluded even if fractional
			if c > cc {
				count++ // x < 100.5 includes 100
			}
		case expr.OpLE:
			count = cc - cs.Min + 1
		case expr.OpGT:
			count = cs.Max - cc
			if c > cc {
				count-- // x > 100.5 excludes 100... and floor handled the rest
			}
		case expr.OpGE:
			count = cs.Max - math.Ceil(c) + 1
		}
		return clamp01(count / width)
	}
	width := cs.Max - cs.Min
	if width <= 0 {
		// Point distribution: compare directly.
		v := cs.Min
		var hold bool
		switch op {
		case expr.OpLT:
			hold = v < c
		case expr.OpLE:
			hold = v <= c
		case expr.OpGT:
			hold = v > c
		case expr.OpGE:
			hold = v >= c
		}
		if hold {
			return 1
		}
		return 0
	}
	var frac float64
	switch op {
	case expr.OpLT, expr.OpLE:
		frac = (c - cs.Min) / width
	case expr.OpGT, expr.OpGE:
		frac = (cs.Max - c) / width
	}
	return clamp01(frac)
}

// ColumnPredicateSet groups the constant predicates applied to one column
// and resolves them to a single selectivity following [16]: the most
// restrictive equality wins if any equality exists; otherwise the tightest
// lower and upper range bounds form a combined range; <> predicates
// contribute multiplicatively on top.
type ColumnPredicateSet struct {
	// Column is the subject column.
	Column expr.ColumnRef
	// Preds are the constant predicates on the column.
	Preds []expr.Predicate
}

// Resolve computes the combined selectivity of the predicate set against
// the column's statistics.
func (s ColumnPredicateSet) Resolve(cs *catalog.ColumnStats, opts Options) (float64, error) {
	var eqs, ranges, nes []expr.Predicate
	for _, p := range s.Preds {
		if p.Kind() != expr.KindLocalConst {
			return 0, fmt.Errorf("selest: %s is not a constant predicate", p)
		}
		switch p.Op {
		case expr.OpEQ:
			eqs = append(eqs, p)
		case expr.OpNE:
			nes = append(nes, p)
		default:
			ranges = append(ranges, p)
		}
	}
	// Most restrictive equality, if any equality exists. Any conflicting
	// range/inequality predicates are subsumed (a contradiction would yield
	// zero rows; the estimator keeps the optimistic equality estimate, as a
	// real optimizer does absent constraint solving).
	if len(eqs) > 0 {
		best := math.Inf(1)
		for _, p := range eqs {
			sel, err := ConstSelectivity(cs, expr.OpEQ, p.Const, opts)
			if err != nil {
				return 0, err
			}
			if sel < best {
				best = sel
			}
		}
		// Two different equality constants contradict: selectivity 0.
		if distinctConstants(eqs) > 1 {
			return 0, nil
		}
		return clamp01(best), nil
	}
	sel := 1.0
	if len(ranges) > 0 {
		lo := math.Inf(-1)
		loStrict := false
		hi := math.Inf(1)
		hiStrict := false
		var nonNumeric []expr.Predicate
		for _, p := range ranges {
			if !numeric(p.Const) {
				nonNumeric = append(nonNumeric, p)
				continue
			}
			c := p.Const.AsFloat()
			switch p.Op {
			case expr.OpGT:
				if c > lo || (c == lo && !loStrict) {
					lo, loStrict = c, true
				}
			case expr.OpGE:
				if c > lo {
					lo, loStrict = c, false
				}
			case expr.OpLT:
				if c < hi || (c == hi && !hiStrict) {
					hi, hiStrict = c, true
				}
			case expr.OpLE:
				if c < hi {
					hi, hiStrict = c, false
				}
			}
		}
		if lo > hi || (lo == hi && (loStrict || hiStrict)) {
			return 0, nil // contradictory bounds
		}
		s, err := boundedRangeSelectivity(cs, lo, loStrict, hi, hiStrict, opts)
		if err != nil {
			return 0, err
		}
		sel *= s
		// Non-numeric range predicates multiply independently (rough model).
		for _, p := range nonNumeric {
			s, err := ConstSelectivity(cs, p.Op, p.Const, opts)
			if err != nil {
				return 0, err
			}
			sel *= s
		}
	}
	for _, p := range nes {
		s, err := ConstSelectivity(cs, expr.OpNE, p.Const, opts)
		if err != nil {
			return 0, err
		}
		sel *= s
	}
	return clamp01(sel), nil
}

func distinctConstants(eqs []expr.Predicate) int {
	seen := make(map[string]struct{}, len(eqs))
	for _, p := range eqs {
		seen[p.Const.Key()] = struct{}{}
	}
	return len(seen)
}

// boundedRangeSelectivity estimates the selectivity of lo (<|<=) x (<|<=) hi,
// where either bound may be infinite.
func boundedRangeSelectivity(cs *catalog.ColumnStats, lo float64, loStrict bool, hi float64, hiStrict bool, opts Options) (float64, error) {
	loOp := expr.OpGE
	if loStrict {
		loOp = expr.OpGT
	}
	hiOp := expr.OpLE
	if hiStrict {
		hiOp = expr.OpLT
	}
	switch {
	case math.IsInf(lo, -1) && math.IsInf(hi, 1):
		return 1, nil
	case math.IsInf(lo, -1):
		return ConstSelectivity(cs, hiOp, storage.Float64(hi), opts)
	case math.IsInf(hi, 1):
		return ConstSelectivity(cs, loOp, storage.Float64(lo), opts)
	default:
		sLo, err := ConstSelectivity(cs, loOp, storage.Float64(lo), opts)
		if err != nil {
			return 0, err
		}
		sHi, err := ConstSelectivity(cs, hiOp, storage.Float64(hi), opts)
		if err != nil {
			return 0, err
		}
		// P(lo-side) + P(hi-side) − 1 is the exact intersection for
		// complementary one-sided ranges; clamp at 0.
		return clamp01(sLo + sHi - 1), nil
	}
}

// GroupConstPredicates buckets constant predicates by subject column, in
// deterministic column-key order.
func GroupConstPredicates(preds []expr.Predicate) []ColumnPredicateSet {
	byCol := make(map[string]*ColumnPredicateSet)
	var order []string
	for _, p := range preds {
		if p.Kind() != expr.KindLocalConst {
			continue
		}
		k := p.Left.Key()
		set, ok := byCol[k]
		if !ok {
			set = &ColumnPredicateSet{Column: p.Left}
			byCol[k] = set
			order = append(order, k)
		}
		set.Preds = append(set.Preds, p)
	}
	sort.Strings(order)
	out := make([]ColumnPredicateSet, 0, len(order))
	for _, k := range order {
		out = append(out, *byCol[k])
	}
	return out
}

func clamp01(x float64) float64 {
	switch {
	case x < 0 || math.IsNaN(x):
		return 0
	case x > 1:
		return 1
	default:
		return x
	}
}
