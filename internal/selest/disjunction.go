package selest

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/expr"
)

// DisjunctionSelectivity estimates the fraction of a table's rows
// satisfying (p1 OR ... OR pn) as 1 − ∏(1 − sᵢ) under the independence
// assumption — the classic System-R treatment. For disjuncts over one
// column with overlapping ranges this overestimates slightly (it
// double-counts the overlap), which is the standard tradeoff the paper's
// future-work discussion leaves open.
func DisjunctionSelectivity(ts *catalog.TableStats, d expr.Disjunction, opts Options) (float64, error) {
	if ts == nil {
		return 0, fmt.Errorf("selest: nil table stats")
	}
	if len(d.Preds) == 0 {
		return 0, fmt.Errorf("selest: empty disjunction")
	}
	notAny := 1.0
	for _, p := range d.Preds {
		var s float64
		switch p.Kind() {
		case expr.KindLocalConst:
			cs := ts.Column(p.Left.Column)
			if cs == nil {
				return 0, fmt.Errorf("selest: table %s has no column %q", ts.Name, p.Left.Column)
			}
			var err error
			s, err = ConstSelectivity(cs, p.Op, p.Const, opts)
			if err != nil {
				return 0, err
			}
		case expr.KindLocalColCol:
			l := ts.Column(p.Left.Column)
			r := ts.Column(p.Right.Column)
			if l == nil || r == nil {
				return 0, fmt.Errorf("selest: table %s missing a column of %s", ts.Name, p)
			}
			if p.Op == expr.OpEQ {
				dmax := l.Distinct
				if r.Distinct > dmax {
					dmax = r.Distinct
				}
				if dmax > 0 {
					s = 1 / dmax
				}
			} else {
				s = defaultColColSelectivity
			}
		default:
			return 0, fmt.Errorf("selest: join predicate %s not allowed in a disjunction", p)
		}
		notAny *= 1 - clamp01(s)
	}
	return clamp01(1 - notAny), nil
}
