// Package selest implements the selectivity machinery of Algorithm ELS:
// local-predicate selectivities (with or without distribution statistics),
// the resolution of multiple local predicates on one column (per the
// companion report RJ 9569 cited as [16]), the urn-model estimate of
// distinct values surviving a selection (Section 5), and the single-table
// j-equivalent column reduction (Section 6).
package selest

import "math"

// UrnDistinct returns the expected number of distinct values remaining in a
// column of d distinct values after k rows are selected, under the urn
// model of Section 5: throwing k balls uniformly into d urns leaves
// d·(1−(1−1/d)^k) urns non-empty. The paper rounds up; we return the raw
// expectation and let callers apply Ceil (the worked numbers in the paper
// use the ceiling).
//
// Numerical care: (1−1/d)^k is computed as exp(k·log1p(−1/d)) so that large
// d and k do not lose precision.
func UrnDistinct(d, k float64) float64 {
	if d <= 0 || k <= 0 {
		return 0
	}
	if d == 1 {
		return 1
	}
	if math.IsInf(k, 1) {
		return d
	}
	p := math.Exp(k * math.Log1p(-1/d))
	out := d * (1 - p)
	if out > d {
		out = d
	}
	if out > k {
		out = k // cannot see more distinct values than rows
	}
	return out
}

// UrnDistinctCeil is the ceiling of UrnDistinct, matching the paper's
// ⌈d·(1−(1−1/d)^k)⌉ exactly (Section 5 and Section 6 formulas).
func UrnDistinctCeil(d, k float64) float64 {
	v := UrnDistinct(d, k)
	if v <= 0 {
		return 0
	}
	return math.Ceil(v)
}

// LinearDistinct is the "other common estimate" the paper contrasts the urn
// model with: d′ = d·(k/n), the distinct count scaled by the fraction of
// rows kept. It is provided for the urn-vs-linear ablation. n is the
// original row count and k the surviving row count.
func LinearDistinct(d, n, k float64) float64 {
	if n <= 0 || d <= 0 || k <= 0 {
		return 0
	}
	out := d * k / n
	if out > d {
		out = d
	}
	if out < 1 {
		out = 1
	}
	return out
}

// DistinctReduction selects how the estimator shrinks column cardinalities
// when rows are removed by predicates on other columns.
type DistinctReduction int

const (
	// ReductionUrn uses the paper's urn model (the ELS choice).
	ReductionUrn DistinctReduction = iota
	// ReductionLinear uses the proportional rule d·(k/n) (the baseline the
	// paper argues against; kept for ablation).
	ReductionLinear
)

// String names the reduction rule.
func (r DistinctReduction) String() string {
	switch r {
	case ReductionUrn:
		return "urn"
	case ReductionLinear:
		return "linear"
	default:
		return "unknown"
	}
}

// ReduceDistinct applies the selected reduction: given a column with d
// distinct values in a table of n rows, of which k survive selection, it
// returns the estimated surviving distinct count (ceiling applied, capped
// at both d and k, floor of 0).
func ReduceDistinct(rule DistinctReduction, d, n, k float64) float64 {
	if k <= 0 || d <= 0 {
		return 0
	}
	if k >= n {
		return d
	}
	var v float64
	switch rule {
	case ReductionLinear:
		v = LinearDistinct(d, n, k)
	default:
		v = UrnDistinct(d, k)
	}
	v = math.Ceil(v)
	if v > d {
		v = d
	}
	if v > k {
		v = math.Ceil(k)
	}
	if v < 1 {
		v = 1
	}
	return v
}
