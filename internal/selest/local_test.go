package selest

import (
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/storage"
)

func intCol(name string, d, min, max float64) *catalog.ColumnStats {
	return &catalog.ColumnStats{Name: name, Type: storage.TypeInt64, Distinct: d, HasRange: true, Min: min, Max: max}
}

func ref(t, c string) expr.ColumnRef { return expr.ColumnRef{Table: t, Column: c} }

func TestConstSelectivityEquality(t *testing.T) {
	cs := intCol("x", 1000, 0, 999)
	sel, err := ConstSelectivity(cs, expr.OpEQ, storage.Int64(5), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sel != 0.001 {
		t.Errorf("EQ selectivity = %g, want 1/1000", sel)
	}
	sel, _ = ConstSelectivity(cs, expr.OpNE, storage.Int64(5), DefaultOptions())
	if sel != 0.999 {
		t.Errorf("NE selectivity = %g, want 0.999", sel)
	}
}

func TestConstSelectivityRangeExactPaperNumbers(t *testing.T) {
	// The Section 8 experiment needs sel(s < 100) = 0.1 for d_s = 1000 over
	// the integer domain 0..999.
	cs := intCol("s", 1000, 0, 999)
	sel, err := ConstSelectivity(cs, expr.OpLT, storage.Int64(100), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sel != 0.1 {
		t.Errorf("sel(s<100) = %g, want exactly 0.1", sel)
	}
	// And the other tables: 100/10000, 100/50000, 100/100000.
	for _, tc := range []struct {
		d    float64
		want float64
	}{{10000, 0.01}, {50000, 0.002}, {100000, 0.001}} {
		c := intCol("c", tc.d, 0, tc.d-1)
		sel, _ := ConstSelectivity(c, expr.OpLT, storage.Int64(100), DefaultOptions())
		if math.Abs(sel-tc.want) > 1e-12 {
			t.Errorf("d=%g: sel = %g, want %g", tc.d, sel, tc.want)
		}
	}
}

func TestConstSelectivityIntRangeOps(t *testing.T) {
	cs := intCol("x", 10, 0, 9)
	cases := []struct {
		op   expr.CompareOp
		c    int64
		want float64
	}{
		{expr.OpLT, 5, 0.5},
		{expr.OpLE, 5, 0.6},
		{expr.OpGT, 5, 0.4},
		{expr.OpGE, 5, 0.5},
		{expr.OpLT, 0, 0},
		{expr.OpLE, 9, 1},
		{expr.OpGT, 9, 0},
		{expr.OpGE, 0, 1},
		{expr.OpLT, 100, 1},
		{expr.OpGT, -5, 1},
	}
	for _, c := range cases {
		sel, err := ConstSelectivity(cs, c.op, storage.Int64(c.c), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sel-c.want) > 1e-12 {
			t.Errorf("x %s %d = %g, want %g", c.op, c.c, sel, c.want)
		}
	}
}

func TestConstSelectivityFloatRange(t *testing.T) {
	cs := &catalog.ColumnStats{Name: "f", Type: storage.TypeFloat64, Distinct: 100, HasRange: true, Min: 0, Max: 10}
	sel, _ := ConstSelectivity(cs, expr.OpLT, storage.Float64(2.5), DefaultOptions())
	if sel != 0.25 {
		t.Errorf("float LT = %g, want 0.25", sel)
	}
	sel, _ = ConstSelectivity(cs, expr.OpGE, storage.Float64(7.5), DefaultOptions())
	if sel != 0.25 {
		t.Errorf("float GE = %g, want 0.25", sel)
	}
}

func TestConstSelectivityFallbacks(t *testing.T) {
	// No range info: 1/3 for ranges.
	cs := &catalog.ColumnStats{Name: "x", Type: storage.TypeInt64, Distinct: 10}
	sel, _ := ConstSelectivity(cs, expr.OpLT, storage.Int64(5), DefaultOptions())
	if sel != 1.0/3.0 {
		t.Errorf("no-range fallback = %g, want 1/3", sel)
	}
	// Non-numeric constant with a range op.
	cs2 := &catalog.ColumnStats{Name: "s", Type: storage.TypeString, Distinct: 10}
	sel, _ = ConstSelectivity(cs2, expr.OpGT, storage.String64("m"), DefaultOptions())
	if sel != 1.0/3.0 {
		t.Errorf("string range fallback = %g, want 1/3", sel)
	}
	// Equality on a string column uses 1/d.
	sel, _ = ConstSelectivity(cs2, expr.OpEQ, storage.String64("m"), DefaultOptions())
	if sel != 0.1 {
		t.Errorf("string EQ = %g, want 0.1", sel)
	}
	// NULL constant never matches.
	sel, _ = ConstSelectivity(cs, expr.OpEQ, storage.Null(storage.TypeInt64), DefaultOptions())
	if sel != 0 {
		t.Errorf("NULL const = %g, want 0", sel)
	}
	// Zero distinct count.
	cs3 := &catalog.ColumnStats{Name: "x", Type: storage.TypeInt64}
	sel, _ = ConstSelectivity(cs3, expr.OpEQ, storage.Int64(1), DefaultOptions())
	if sel != 0 {
		t.Errorf("empty column EQ = %g", sel)
	}
	sel, _ = ConstSelectivity(cs3, expr.OpNE, storage.Int64(1), DefaultOptions())
	if sel != 1 {
		t.Errorf("empty column NE = %g", sel)
	}
	// Nil stats error.
	if _, err := ConstSelectivity(nil, expr.OpEQ, storage.Int64(1), DefaultOptions()); err == nil {
		t.Error("nil stats should error")
	}
}

func TestConstSelectivityWithHistogram(t *testing.T) {
	// A skewed histogram should beat uniformity: 90% of mass at value 0.
	vals := make([]float64, 100)
	for i := 90; i < 100; i++ {
		vals[i] = float64(i)
	}
	h, err := catalog.NewEquiDepthHistogram(vals, 8)
	if err != nil {
		t.Fatal(err)
	}
	cs := &catalog.ColumnStats{Name: "x", Type: storage.TypeInt64, Distinct: 11, HasRange: true, Min: 0, Max: 99, Hist: h}
	sel, _ := ConstSelectivity(cs, expr.OpEQ, storage.Int64(0), DefaultOptions())
	if math.Abs(sel-0.9) > 0.05 {
		t.Errorf("histogram EQ(0) = %g, want ~0.9", sel)
	}
	// Histograms disabled: falls back to 1/d.
	sel, _ = ConstSelectivity(cs, expr.OpEQ, storage.Int64(0), Options{UseHistograms: false})
	if math.Abs(sel-1.0/11) > 1e-9 {
		t.Errorf("uniform EQ(0) = %g, want 1/11", sel)
	}
	// Range with histogram.
	sel, _ = ConstSelectivity(cs, expr.OpLT, storage.Int64(1), DefaultOptions())
	if math.Abs(sel-0.9) > 0.05 {
		t.Errorf("histogram LT(1) = %g, want ~0.9", sel)
	}
	selGE, _ := ConstSelectivity(cs, expr.OpGE, storage.Int64(1), DefaultOptions())
	if math.Abs(selGE-(1-sel)) > 1e-9 {
		t.Errorf("GE should complement LT: %g vs %g", selGE, sel)
	}
	selNE, _ := ConstSelectivity(cs, expr.OpNE, storage.Int64(0), DefaultOptions())
	if math.Abs(selNE-0.1) > 0.05 {
		t.Errorf("histogram NE(0) = %g, want ~0.1", selNE)
	}
	selLE, _ := ConstSelectivity(cs, expr.OpLE, storage.Int64(0), DefaultOptions())
	if math.Abs(selLE-0.9) > 0.05 {
		t.Errorf("histogram LE(0) = %g, want ~0.9", selLE)
	}
	selGT, _ := ConstSelectivity(cs, expr.OpGT, storage.Int64(0), DefaultOptions())
	if math.Abs(selGT-0.1) > 0.05 {
		t.Errorf("histogram GT(0) = %g, want ~0.1", selGT)
	}
}

func constPred(col string, op expr.CompareOp, c int64) expr.Predicate {
	return expr.NewConst(ref("R", col), op, storage.Int64(c))
}

func TestResolveMostRestrictiveEquality(t *testing.T) {
	// [16]: "the most restrictive equality predicate is chosen if it exists".
	cs := intCol("x", 1000, 0, 999)
	set := ColumnPredicateSet{Column: ref("R", "x"), Preds: []expr.Predicate{
		constPred("x", expr.OpEQ, 5),
		constPred("x", expr.OpLT, 800),
	}}
	sel, err := set.Resolve(cs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sel != 0.001 {
		t.Errorf("equality should win: %g, want 0.001", sel)
	}
}

func TestResolveContradictoryEqualities(t *testing.T) {
	cs := intCol("x", 1000, 0, 999)
	set := ColumnPredicateSet{Column: ref("R", "x"), Preds: []expr.Predicate{
		constPred("x", expr.OpEQ, 5),
		constPred("x", expr.OpEQ, 6),
	}}
	sel, err := set.Resolve(cs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sel != 0 {
		t.Errorf("x=5 AND x=6 must be 0, got %g", sel)
	}
}

func TestResolveTightestRangePair(t *testing.T) {
	// [16]: "a pair of range predicates which form the tightest bound".
	cs := intCol("x", 1000, 0, 999)
	set := ColumnPredicateSet{Column: ref("R", "x"), Preds: []expr.Predicate{
		constPred("x", expr.OpGT, 99),  // x > 99  → x >= 100
		constPred("x", expr.OpGE, 50),  // weaker lower bound
		constPred("x", expr.OpLT, 300), // x < 300
		constPred("x", expr.OpLE, 900), // weaker upper bound
	}}
	sel, err := set.Resolve(cs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Tightest: 99 < x < 300 → values 100..299 = 200 of 1000.
	if math.Abs(sel-0.2) > 1e-9 {
		t.Errorf("tightest range = %g, want 0.2", sel)
	}
}

func TestResolveContradictoryRange(t *testing.T) {
	cs := intCol("x", 1000, 0, 999)
	set := ColumnPredicateSet{Column: ref("R", "x"), Preds: []expr.Predicate{
		constPred("x", expr.OpGT, 500),
		constPred("x", expr.OpLT, 100),
	}}
	sel, err := set.Resolve(cs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sel != 0 {
		t.Errorf("x>500 AND x<100 must be 0, got %g", sel)
	}
	// Touching bounds with strict comparison also contradict: x>5 AND x<5... and x>=5 AND x<=5 is a point.
	point := ColumnPredicateSet{Column: ref("R", "x"), Preds: []expr.Predicate{
		constPred("x", expr.OpGE, 5),
		constPred("x", expr.OpLE, 5),
	}}
	sel, _ = point.Resolve(cs, DefaultOptions())
	if math.Abs(sel-0.001) > 1e-9 {
		t.Errorf("point range 5<=x<=5 = %g, want ~1/1000", sel)
	}
	strict := ColumnPredicateSet{Column: ref("R", "x"), Preds: []expr.Predicate{
		constPred("x", expr.OpGT, 5),
		constPred("x", expr.OpLT, 5),
	}}
	sel, _ = strict.Resolve(cs, DefaultOptions())
	if sel != 0 {
		t.Errorf("x>5 AND x<5 = %g, want 0", sel)
	}
}

func TestResolveNEMultiplies(t *testing.T) {
	cs := intCol("x", 10, 0, 9)
	set := ColumnPredicateSet{Column: ref("R", "x"), Preds: []expr.Predicate{
		constPred("x", expr.OpNE, 3),
		constPred("x", expr.OpNE, 4),
	}}
	sel, err := set.Resolve(cs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sel-0.81) > 1e-9 {
		t.Errorf("two NE = %g, want 0.9*0.9", sel)
	}
}

func TestResolveRejectsNonConst(t *testing.T) {
	cs := intCol("x", 10, 0, 9)
	set := ColumnPredicateSet{Column: ref("R", "x"), Preds: []expr.Predicate{
		expr.NewJoin(ref("R", "x"), expr.OpEQ, ref("Q", "y")),
	}}
	if _, err := set.Resolve(cs, DefaultOptions()); err == nil {
		t.Error("join predicate in const set should error")
	}
}

func TestGroupConstPredicates(t *testing.T) {
	preds := []expr.Predicate{
		constPred("b", expr.OpLT, 5),
		constPred("a", expr.OpGT, 1),
		constPred("b", expr.OpGT, 2),
		expr.NewJoin(ref("R", "a"), expr.OpEQ, ref("Q", "z")), // ignored
	}
	groups := GroupConstPredicates(preds)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	if groups[0].Column.Column != "a" || len(groups[0].Preds) != 1 {
		t.Errorf("group 0 = %+v", groups[0])
	}
	if groups[1].Column.Column != "b" || len(groups[1].Preds) != 2 {
		t.Errorf("group 1 = %+v", groups[1])
	}
}
