package selest

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/expr"
)

// EffectiveStats are the statistics of one table after all of its local
// predicates have been folded in (ELS step 4 plus the Section 6 single-table
// j-equivalence reduction of step 5). Join selectivity computation and
// result-size estimation use these instead of the raw catalog statistics;
// the raw statistics stay in the catalog for access-cost calculations, as
// Section 5 prescribes.
type EffectiveStats struct {
	// Table is the table (or alias) name.
	Table string
	// OrigCard is the unreduced table cardinality ‖R‖.
	OrigCard float64
	// Card is the effective cardinality ‖R‖′ after local predicates.
	Card float64
	// LocalSelectivity is Card/OrigCard (1 when no local predicates).
	LocalSelectivity float64
	// ColCard maps lower-cased column names to effective column
	// cardinalities d′.
	ColCard map[string]float64
	// ColSel maps lower-cased column names to the combined selectivity of
	// the constant predicates on that column (only predicated columns
	// appear).
	ColSel map[string]float64
	// JEquivGroups lists the same-table j-equivalent join column groups
	// that were folded via the Section 6 formulas (each sorted, lower-cased).
	JEquivGroups [][]string
}

// ColumnCard returns the effective column cardinality of the named column,
// or an error if the column is unknown.
func (e *EffectiveStats) ColumnCard(name string) (float64, error) {
	if d, ok := e.ColCard[strings.ToLower(name)]; ok {
		return d, nil
	}
	return 0, fmt.Errorf("selest: table %s has no column %q", e.Table, name)
}

// defaultColColSelectivity is the classic System-R guess for a non-equality
// comparison between two columns, used for local column-column predicates
// the paper does not model.
const defaultColColSelectivity = 1.0 / 3.0

// EffectiveTable folds the table's local predicates into its statistics.
// locals must all reference the table named by ts.Name: constant predicates
// (handled per Section 5 with the [16] multi-predicate resolution),
// same-table column equality predicates (handled per Section 6), and
// same-table non-equality column comparisons (classic 1/3 heuristic).
// disjs are OR-groups over this table (a beyond-paper extension); each
// reduces the cardinality by its DisjunctionSelectivity and urn-reduces
// every column, pinning none.
func EffectiveTable(ts *catalog.TableStats, locals []expr.Predicate, disjs []expr.Disjunction, opts Options) (*EffectiveStats, error) {
	if ts == nil {
		return nil, fmt.Errorf("selest: nil table stats")
	}
	eff := &EffectiveStats{
		Table:            ts.Name,
		OrigCard:         ts.Card,
		Card:             ts.Card,
		LocalSelectivity: 1,
		ColCard:          make(map[string]float64, len(ts.Columns)),
		ColSel:           make(map[string]float64),
	}
	for k, cs := range ts.Columns {
		eff.ColCard[k] = cs.Distinct
	}

	var consts, colEq, colOther []expr.Predicate
	for _, p := range locals {
		if !p.References(ts.Name) {
			return nil, fmt.Errorf("selest: predicate %s does not reference table %s", p, ts.Name)
		}
		switch p.Kind() {
		case expr.KindLocalConst:
			consts = append(consts, p)
		case expr.KindLocalColCol:
			if p.Op == expr.OpEQ {
				colEq = append(colEq, p)
			} else {
				colOther = append(colOther, p)
			}
		default:
			return nil, fmt.Errorf("selest: %s is a join predicate, not a local predicate of %s", p, ts.Name)
		}
	}

	// --- Constant predicates (Section 5, with [16] resolution per column).
	cardBefore := eff.Card
	for _, set := range GroupConstPredicates(consts) {
		cs := ts.Column(set.Column.Column)
		if cs == nil {
			return nil, fmt.Errorf("selest: table %s has no column %q", ts.Name, set.Column.Column)
		}
		sel, err := set.Resolve(cs, opts)
		if err != nil {
			return nil, err
		}
		key := strings.ToLower(set.Column.Column)
		eff.ColSel[key] = sel
		eff.Card *= sel
		// The predicate's own column: equality pins d′ to the number of
		// matching constants (1, or 0 on contradiction); ranges scale d by
		// the predicate selectivity, d′_y = d_y × S_L (Section 5).
		if hasEquality(set.Preds) {
			if sel > 0 {
				eff.ColCard[key] = 1
			} else {
				eff.ColCard[key] = 0
			}
		} else {
			d := eff.ColCard[key] * sel
			if sel > 0 && d < 1 {
				d = 1
			}
			eff.ColCard[key] = d
		}
	}
	// Same-table non-equality column comparisons: heuristic selectivity.
	for range colOther {
		eff.Card *= defaultColColSelectivity
	}
	// OR-groups: pure row reduction, no column pinning.
	for _, d := range disjs {
		if !d.References(ts.Name) {
			return nil, fmt.Errorf("selest: disjunction %s does not reference table %s", d, ts.Name)
		}
		sel, err := DisjunctionSelectivity(ts, d, opts)
		if err != nil {
			return nil, err
		}
		eff.Card *= sel
	}
	// Other columns shrink via the urn model now that rows were removed.
	if eff.Card < cardBefore {
		for k, cs := range ts.Columns {
			key := strings.ToLower(k)
			if _, predicated := eff.ColSel[key]; predicated {
				continue
			}
			eff.ColCard[key] = ReduceDistinct(opts.Reduction, cs.Distinct, cardBefore, eff.Card)
		}
	}

	// --- Same-table j-equivalent join columns (Section 6).
	groups := sameTableGroups(colEq)
	for _, group := range groups {
		ds := make([]float64, 0, len(group))
		for _, col := range group {
			d, ok := eff.ColCard[col]
			if !ok {
				return nil, fmt.Errorf("selest: table %s has no column %q", ts.Name, col)
			}
			ds = append(ds, d)
		}
		sort.Float64s(ds)
		// ‖R‖′ = ⌈‖R‖ / (d_(2) · d_(3) ⋯ d_(n))⌉
		div := 1.0
		for _, d := range ds[1:] {
			div *= d
		}
		before := eff.Card
		if div > 0 {
			eff.Card = math.Ceil(eff.Card / div)
		} else {
			eff.Card = 0
		}
		// Effective join cardinality: ⌈d_(1)·(1−(1−1/d_(1))^‖R‖′)⌉ for every
		// column in the group (only one of them will be joined; they are
		// interchangeable after the local equality is applied).
		dEff := UrnDistinctCeil(ds[0], eff.Card)
		for _, col := range group {
			eff.ColCard[col] = dEff
		}
		// Remaining columns shrink again for the extra row reduction.
		if eff.Card < before {
			inGroup := make(map[string]bool, len(group))
			for _, col := range group {
				inGroup[col] = true
			}
			for k := range eff.ColCard {
				if inGroup[k] {
					continue
				}
				eff.ColCard[k] = ReduceDistinct(opts.Reduction, eff.ColCard[k], before, eff.Card)
			}
		}
		eff.JEquivGroups = append(eff.JEquivGroups, group)
	}

	if eff.OrigCard > 0 {
		eff.LocalSelectivity = eff.Card / eff.OrigCard
	}
	return eff, nil
}

func hasEquality(preds []expr.Predicate) bool {
	for _, p := range preds {
		if p.Op == expr.OpEQ {
			return true
		}
	}
	return false
}

// sameTableGroups unions the columns linked by same-table equality
// predicates and returns the groups of size >= 2 (sorted members, groups
// ordered by first member).
func sameTableGroups(colEq []expr.Predicate) [][]string {
	parent := make(map[string]string)
	var find func(string) string
	find = func(x string) string {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	add := func(x string) {
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
	}
	var order []string
	for _, p := range colEq {
		l := strings.ToLower(p.Left.Column)
		r := strings.ToLower(p.Right.Column)
		for _, c := range []string{l, r} {
			if _, ok := parent[c]; !ok {
				add(c)
				order = append(order, c)
			}
		}
		if find(l) != find(r) {
			parent[find(l)] = find(r)
		}
	}
	byRoot := make(map[string][]string)
	for _, c := range order {
		r := find(c)
		byRoot[r] = append(byRoot[r], c)
	}
	var out [][]string
	for _, g := range byRoot {
		if len(g) < 2 {
			continue
		}
		sort.Strings(g)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
