package selest

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Section 5's worked numbers: d_x = 10000, ‖R‖ = 100000, ‖R‖′ = 50000 give
// the urn estimate 9933 whereas the linear rule gives 5000; at ‖R‖′ = ‖R‖
// the urn estimate is the full 10000.
func TestUrnModelPaperSection5(t *testing.T) {
	if got := UrnDistinctCeil(10000, 50000); got != 9933 {
		t.Errorf("urn(10000, 50000) = %g, want 9933 (paper Section 5)", got)
	}
	if got := LinearDistinct(10000, 100000, 50000); got != 5000 {
		t.Errorf("linear(10000, 100000, 50000) = %g, want 5000", got)
	}
	if got := UrnDistinctCeil(10000, 100000); got != 10000 {
		t.Errorf("urn(10000, 100000) = %g, want 10000", got)
	}
}

// Section 6's worked numbers: ⌈10·(1−(1−1/10)^20)⌉ = 9.
func TestUrnModelPaperSection6(t *testing.T) {
	if got := UrnDistinctCeil(10, 20); got != 9 {
		t.Errorf("urn(10, 20) = %g, want 9 (paper Section 6)", got)
	}
}

func TestUrnDistinctEdgeCases(t *testing.T) {
	if UrnDistinct(0, 10) != 0 || UrnDistinct(10, 0) != 0 || UrnDistinct(-1, 5) != 0 {
		t.Error("non-positive inputs should give 0")
	}
	if UrnDistinct(1, 100) != 1 {
		t.Error("single urn is always hit")
	}
	if got := UrnDistinct(100, math.Inf(1)); got != 100 {
		t.Errorf("infinite balls fill all urns: %g", got)
	}
	if got := UrnDistinct(1000, 1); math.Abs(got-1) > 1e-9 {
		t.Errorf("one ball hits exactly one urn: %g", got)
	}
	// Capped at k: can't observe more distinct values than rows.
	if got := UrnDistinct(1e9, 3); got > 3 {
		t.Errorf("distinct capped at rows: %g", got)
	}
}

func TestUrnDistinctLargeValuesStable(t *testing.T) {
	// With d = 1e12 and k = 1e6, naive (1-1/d)^k would suffer float
	// cancellation; result must be very close to k.
	got := UrnDistinct(1e12, 1e6)
	if math.Abs(got-1e6)/1e6 > 1e-3 {
		t.Errorf("urn(1e12, 1e6) = %g, want ≈1e6", got)
	}
}

func TestLinearDistinctEdges(t *testing.T) {
	if LinearDistinct(10, 0, 5) != 0 || LinearDistinct(0, 10, 5) != 0 || LinearDistinct(10, 10, 0) != 0 {
		t.Error("degenerate linear inputs should give 0")
	}
	if LinearDistinct(10, 100, 200) != 10 {
		t.Error("linear capped at d")
	}
	if LinearDistinct(10, 1000, 1) != 1 {
		t.Error("linear floored at 1")
	}
}

func TestDistinctReductionString(t *testing.T) {
	if ReductionUrn.String() != "urn" || ReductionLinear.String() != "linear" {
		t.Error("reduction names wrong")
	}
	if DistinctReduction(9).String() != "unknown" {
		t.Error("unknown reduction name wrong")
	}
}

func TestReduceDistinct(t *testing.T) {
	// Keeping all rows keeps all distinct values.
	if got := ReduceDistinct(ReductionUrn, 50, 100, 100); got != 50 {
		t.Errorf("full retention: %g", got)
	}
	if got := ReduceDistinct(ReductionUrn, 50, 100, 150); got != 50 {
		t.Errorf("k > n clamps: %g", got)
	}
	if got := ReduceDistinct(ReductionUrn, 50, 100, 0); got != 0 {
		t.Errorf("no rows, no values: %g", got)
	}
	if got := ReduceDistinct(ReductionLinear, 10000, 100000, 50000); got != 5000 {
		t.Errorf("linear rule: %g", got)
	}
	if got := ReduceDistinct(ReductionUrn, 10000, 100000, 50000); got != 9933 {
		t.Errorf("urn rule: %g", got)
	}
	// Floors at 1 when any row remains.
	if got := ReduceDistinct(ReductionUrn, 10, 1000, 0.5); got != 1 {
		t.Errorf("tiny k floors at 1: %g", got)
	}
}

// Property: 0 <= urn(d,k) <= min(d,k); monotone in both arguments.
func TestUrnBoundsProperty(t *testing.T) {
	f := func(dRaw, kRaw uint16) bool {
		d, k := float64(dRaw%5000)+1, float64(kRaw%5000)+1
		v := UrnDistinct(d, k)
		if v < 0 || v > d+1e-9 || v > k+1e-9 {
			return false
		}
		// Monotonicity in k and d.
		if UrnDistinct(d, k+1) < v-1e-9 {
			return false
		}
		if UrnDistinct(d+1, k) < v-1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the urn expectation matches simulation within a few percent.
func TestUrnMatchesSimulationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, tc := range []struct{ d, k int }{{10, 20}, {100, 50}, {1000, 1000}, {50, 500}} {
		const trials = 200
		sum := 0.0
		for tr := 0; tr < trials; tr++ {
			urns := make(map[int]struct{}, tc.d)
			for b := 0; b < tc.k; b++ {
				urns[rng.Intn(tc.d)] = struct{}{}
			}
			sum += float64(len(urns))
		}
		sim := sum / trials
		est := UrnDistinct(float64(tc.d), float64(tc.k))
		if math.Abs(sim-est)/est > 0.05 {
			t.Errorf("d=%d k=%d: urn estimate %g vs simulated %g", tc.d, tc.k, est, sim)
		}
	}
}
