package selest

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/storage"
)

func TestEffectiveTableNoLocals(t *testing.T) {
	ts := catalog.SimpleTable("R", 1000, map[string]float64{"x": 100, "y": 50})
	eff, err := EffectiveTable(ts, nil, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if eff.Card != 1000 || eff.LocalSelectivity != 1 {
		t.Errorf("card = %g sel = %g", eff.Card, eff.LocalSelectivity)
	}
	if d, _ := eff.ColumnCard("x"); d != 100 {
		t.Errorf("d_x = %g", d)
	}
	if d, _ := eff.ColumnCard("Y"); d != 50 {
		t.Errorf("d_y = %g (case-insensitive lookup)", d)
	}
	if _, err := eff.ColumnCard("zz"); err == nil {
		t.Error("unknown column should error")
	}
}

func TestEffectiveTableRangeOnJoinColumn(t *testing.T) {
	// Section 8's table S: ‖S‖=1000, d_s=1000, s<100 ⇒ ‖S‖′=100, d′_s=100.
	ts := catalog.SimpleTable("S", 1000, map[string]float64{"s": 1000})
	eff, err := EffectiveTable(ts, []expr.Predicate{
		expr.NewConst(ref("S", "s"), expr.OpLT, storage.Int64(100)),
	}, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if eff.Card != 100 {
		t.Errorf("‖S‖′ = %g, want 100", eff.Card)
	}
	if d, _ := eff.ColumnCard("s"); d != 100 {
		t.Errorf("d′_s = %g, want 100 (d × S_L per Section 5)", d)
	}
	if eff.LocalSelectivity != 0.1 {
		t.Errorf("local selectivity = %g, want 0.1", eff.LocalSelectivity)
	}
}

func TestEffectiveTableEqualityPinsDistinct(t *testing.T) {
	// Section 5: local predicate y=a gives d′_y = 1.
	ts := catalog.SimpleTable("R", 1000, map[string]float64{"y": 100, "x": 500})
	eff, err := EffectiveTable(ts, []expr.Predicate{
		expr.NewConst(ref("R", "y"), expr.OpEQ, storage.Int64(7)),
	}, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := eff.ColumnCard("y"); d != 1 {
		t.Errorf("d′_y = %g, want 1", d)
	}
	if eff.Card != 10 {
		t.Errorf("‖R‖′ = %g, want 1000/100", eff.Card)
	}
	// Unpredicated column x shrinks by the urn model: urn(500, 10) ≈ 10.
	d, _ := eff.ColumnCard("x")
	if d != UrnDistinctCeil(500, 10) {
		t.Errorf("d′_x = %g, want urn(500,10) = %g", d, UrnDistinctCeil(500, 10))
	}
}

func TestEffectiveTableUrnVsLinearOnOtherColumn(t *testing.T) {
	// The Section 5 numeric contrast: d_x=10000, ‖R‖=100000, predicate keeps
	// half the rows. Urn gives 9933, linear gives 5000.
	ts := catalog.SimpleTable("R", 100000, map[string]float64{"x": 10000, "y": 200000})
	// y's domain 0..199999 clamped to distinct 100000 by catalog; use range
	// predicate keeping half.
	ts.Columns["y"].Distinct = 100000
	ts.Columns["y"].Max = 99999
	locals := []expr.Predicate{expr.NewConst(ref("R", "y"), expr.OpLT, storage.Int64(50000))}

	effUrn, err := EffectiveTable(ts, locals, nil, Options{Reduction: ReductionUrn})
	if err != nil {
		t.Fatal(err)
	}
	if effUrn.Card != 50000 {
		t.Fatalf("‖R‖′ = %g, want 50000", effUrn.Card)
	}
	if d, _ := effUrn.ColumnCard("x"); d != 9933 {
		t.Errorf("urn d′_x = %g, want 9933 (paper Section 5)", d)
	}
	effLin, err := EffectiveTable(ts, locals, nil, Options{Reduction: ReductionLinear})
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := effLin.ColumnCard("x"); d != 5000 {
		t.Errorf("linear d′_x = %g, want 5000", d)
	}
}

func TestEffectiveTableSection6Example(t *testing.T) {
	// Section 6: ‖R2‖=1000, d_y=10, d_w=50, predicate (R2.y = R2.w).
	// ‖R2‖′ = ⌈1000/50⌉ = 20, effective join cardinality ⌈10(1−0.9^20)⌉ = 9.
	ts := catalog.SimpleTable("R2", 1000, map[string]float64{"y": 10, "w": 50})
	eff, err := EffectiveTable(ts, []expr.Predicate{
		expr.NewJoin(ref("R2", "y"), expr.OpEQ, ref("R2", "w")),
	}, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if eff.Card != 20 {
		t.Errorf("‖R2‖′ = %g, want 20", eff.Card)
	}
	dy, _ := eff.ColumnCard("y")
	dw, _ := eff.ColumnCard("w")
	if dy != 9 || dw != 9 {
		t.Errorf("effective join cardinalities = (%g, %g), want (9, 9)", dy, dw)
	}
	if len(eff.JEquivGroups) != 1 || len(eff.JEquivGroups[0]) != 2 {
		t.Errorf("JEquivGroups = %v", eff.JEquivGroups)
	}
}

func TestEffectiveTableThreeWayJEquiv(t *testing.T) {
	// Generalization: three j-equivalent columns d = (4, 10, 20) in a table
	// of 10000 rows. ‖R‖′ = ⌈10000/(10·20)⌉ = 50; d_eff = ⌈4(1−0.75^50)⌉ = 4.
	ts := catalog.SimpleTable("R", 10000, map[string]float64{"a": 4, "b": 10, "c": 20})
	eff, err := EffectiveTable(ts, []expr.Predicate{
		expr.NewJoin(ref("R", "a"), expr.OpEQ, ref("R", "b")),
		expr.NewJoin(ref("R", "b"), expr.OpEQ, ref("R", "c")),
	}, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if eff.Card != 50 {
		t.Errorf("‖R‖′ = %g, want 50", eff.Card)
	}
	for _, col := range []string{"a", "b", "c"} {
		if d, _ := eff.ColumnCard(col); d != 4 {
			t.Errorf("d′_%s = %g, want 4", col, d)
		}
	}
}

func TestEffectiveTableConstThenJEquiv(t *testing.T) {
	// Both kinds of local predicates compose: first the constant predicate
	// halves the table, then the j-equivalence reduction divides by the
	// (urn-reduced) larger column cardinality.
	ts := catalog.SimpleTable("R", 1000, map[string]float64{"y": 10, "w": 50, "z": 1000})
	eff, err := EffectiveTable(ts, []expr.Predicate{
		expr.NewConst(ref("R", "z"), expr.OpLT, storage.Int64(500)),
		expr.NewJoin(ref("R", "y"), expr.OpEQ, ref("R", "w")),
	}, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// After z<500: card 500, d_y and d_w barely reduced (urn(10,500)=10,
	// urn(50,500)=50). Then j-equiv: card = ceil(500/50) = 10.
	if eff.Card != 10 {
		t.Errorf("‖R‖′ = %g, want 10", eff.Card)
	}
	dy, _ := eff.ColumnCard("y")
	want := UrnDistinctCeil(10, 10)
	if dy != want {
		t.Errorf("d′_y = %g, want %g", dy, want)
	}
}

func TestEffectiveTableColColNonEquality(t *testing.T) {
	ts := catalog.SimpleTable("R", 900, map[string]float64{"a": 30, "b": 30})
	eff, err := EffectiveTable(ts, []expr.Predicate{
		expr.NewJoin(ref("R", "a"), expr.OpLT, ref("R", "b")),
	}, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if eff.Card != 300 {
		t.Errorf("‖R‖′ = %g, want 900/3", eff.Card)
	}
}

func TestEffectiveTableErrors(t *testing.T) {
	ts := catalog.SimpleTable("R", 100, map[string]float64{"x": 10})
	if _, err := EffectiveTable(nil, nil, nil, DefaultOptions()); err == nil {
		t.Error("nil stats should error")
	}
	// Predicate on a different table.
	if _, err := EffectiveTable(ts, []expr.Predicate{
		expr.NewConst(ref("Q", "x"), expr.OpEQ, storage.Int64(1)),
	}, nil, DefaultOptions()); err == nil {
		t.Error("foreign predicate should error")
	}
	// Join predicate passed as local.
	if _, err := EffectiveTable(ts, []expr.Predicate{
		expr.NewJoin(ref("R", "x"), expr.OpEQ, ref("Q", "y")),
	}, nil, DefaultOptions()); err == nil {
		t.Error("join predicate should error")
	}
	// Unknown column.
	if _, err := EffectiveTable(ts, []expr.Predicate{
		expr.NewConst(ref("R", "zz"), expr.OpEQ, storage.Int64(1)),
	}, nil, DefaultOptions()); err == nil {
		t.Error("unknown column should error")
	}
	// Unknown column in j-equiv group.
	if _, err := EffectiveTable(ts, []expr.Predicate{
		expr.NewJoin(ref("R", "x"), expr.OpEQ, ref("R", "nope")),
	}, nil, DefaultOptions()); err == nil {
		t.Error("unknown j-equiv column should error")
	}
}

func TestEffectiveTableZeroSelectivity(t *testing.T) {
	ts := catalog.SimpleTable("R", 100, map[string]float64{"x": 10, "y": 5})
	eff, err := EffectiveTable(ts, []expr.Predicate{
		expr.NewConst(ref("R", "x"), expr.OpEQ, storage.Int64(1)),
		expr.NewConst(ref("R", "x"), expr.OpEQ, storage.Int64(2)),
	}, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if eff.Card != 0 {
		t.Errorf("contradiction should empty the table: %g", eff.Card)
	}
	if d, _ := eff.ColumnCard("x"); d != 0 {
		t.Errorf("d′_x = %g, want 0", d)
	}
}

// Property: effective stats respect the invariants 0 ≤ ‖R‖′ ≤ ‖R‖ and, for
// every column, 0 ≤ d′ ≤ d with d′ ≤ ‖R‖′ + 1 (ceiling slack), across
// random range predicates.
func TestEffectiveInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		card := float64(1 + rng.Intn(10000))
		dx := float64(1 + rng.Intn(int(card)))
		dy := float64(1 + rng.Intn(int(card)))
		ts := catalog.SimpleTable("R", card, map[string]float64{"x": dx, "y": dy})
		cut := int64(rng.Intn(int(dy) + 1))
		eff, err := EffectiveTable(ts, []expr.Predicate{
			expr.NewConst(ref("R", "y"), expr.OpLT, storage.Int64(cut)),
		}, nil, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if eff.Card < 0 || eff.Card > card {
			t.Fatalf("trial %d: card %g outside [0, %g]", trial, eff.Card, card)
		}
		for _, col := range []string{"x", "y"} {
			d, _ := eff.ColumnCard(col)
			if d < 0 || d > math.Max(dx, dy)+1e-9 {
				t.Fatalf("trial %d: d′_%s = %g out of range", trial, col, d)
			}
			if eff.Card > 0 && d > math.Ceil(eff.Card)+1e-9 {
				t.Fatalf("trial %d: d′_%s = %g exceeds rows %g", trial, col, d, eff.Card)
			}
		}
	}
}
