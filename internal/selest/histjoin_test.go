package selest

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datagen"
)

func histOf(t *testing.T, vals []float64, buckets int) *catalog.Histogram {
	t.Helper()
	h, err := catalog.NewEquiDepthHistogram(vals, buckets)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func trueJoinSelectivity(a, b []float64) float64 {
	counts := make(map[float64]float64)
	for _, v := range a {
		counts[v]++
	}
	matches := 0.0
	for _, v := range b {
		matches += counts[v]
	}
	return matches / (float64(len(a)) * float64(len(b)))
}

func TestHistogramJoinSelectivityMissingInputs(t *testing.T) {
	h := histOf(t, []float64{1, 2, 3}, 2)
	if _, ok := HistogramJoinSelectivity(nil, h); ok {
		t.Error("nil histogram should not be usable")
	}
	if _, ok := HistogramJoinSelectivity(h, &catalog.Histogram{}); ok {
		t.Error("empty histogram should not be usable")
	}
}

func TestHistogramJoinSelectivityUniformMatchesEquation2(t *testing.T) {
	// Uniform columns over the same domain: the histogram estimate should
	// agree with Equation 2's 1/max(d1, d2) = 1/1000. The domain is dense
	// relative to the bucket count so the continuous within-bucket
	// approximation is accurate.
	rng := rand.New(rand.NewSource(5))
	a := make([]float64, 20000)
	b := make([]float64, 12000)
	for i := range a {
		a[i] = float64(rng.Intn(1000))
	}
	for i := range b {
		b[i] = float64(rng.Intn(1000))
	}
	ha, hb := histOf(t, a, 16), histOf(t, b, 16)
	sel, ok := HistogramJoinSelectivity(ha, hb)
	if !ok {
		t.Fatal("histograms should be usable")
	}
	if math.Abs(sel-0.001)/0.001 > 0.2 {
		t.Errorf("uniform hist join sel = %g, want ≈0.001", sel)
	}
}

func TestHistogramJoinSelectivitySkewBeatsUniformity(t *testing.T) {
	// Heavily skewed join columns: Equation 2 underestimates; the histogram
	// estimate must land much closer to the measured truth.
	rng := rand.New(rand.NewSource(9))
	z, err := datagen.NewZipf(rng, 100, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	a := make([]float64, 4000)
	b := make([]float64, 2500)
	for i := range a {
		a[i] = float64(z.Next())
	}
	for i := range b {
		b[i] = float64(z.Next())
	}
	truth := trueJoinSelectivity(a, b)
	uniform := 1.0 / 100 // Equation 2 with d1 = d2 = 100
	ha, hb := histOf(t, a, 48), histOf(t, b, 48)
	histSel, ok := HistogramJoinSelectivity(ha, hb)
	if !ok {
		t.Fatal("histograms should be usable")
	}
	errHist := math.Max(histSel/truth, truth/histSel)
	errUniform := math.Max(uniform/truth, truth/uniform)
	if errHist >= errUniform {
		t.Errorf("hist q-error %.3f should beat uniform q-error %.3f (truth %g, hist %g)",
			errHist, errUniform, truth, histSel)
	}
	if errHist > 2 {
		t.Errorf("hist estimate too far off: sel %g vs truth %g", histSel, truth)
	}
}

func TestHistogramJoinSelectivityDisjointRanges(t *testing.T) {
	ha := histOf(t, []float64{1, 2, 3, 4}, 2)
	hb := histOf(t, []float64{100, 200, 300}, 2)
	sel, ok := HistogramJoinSelectivity(ha, hb)
	if !ok {
		t.Fatal("histograms should be usable")
	}
	if sel != 0 {
		t.Errorf("disjoint domains should give 0, got %g", sel)
	}
}

func TestHistogramJoinSelectivityPointBuckets(t *testing.T) {
	// Constant columns: every row matches every row → selectivity 1.
	ha := histOf(t, []float64{7, 7, 7, 7}, 4)
	hb := histOf(t, []float64{7, 7}, 4)
	sel, ok := HistogramJoinSelectivity(ha, hb)
	if !ok {
		t.Fatal("histograms should be usable")
	}
	if math.Abs(sel-1) > 1e-9 {
		t.Errorf("constant columns sel = %g, want 1", sel)
	}
}

func TestOverlapFraction(t *testing.T) {
	b := catalog.Bucket{Lo: 0, Hi: 10, Count: 10, Distinct: 10}
	if f := overlapFraction(b, 0, 5); math.Abs(f-0.5) > 1e-9 {
		t.Errorf("half overlap = %g", f)
	}
	if f := overlapFraction(b, -5, 20); f != 1 {
		t.Errorf("containing overlap = %g", f)
	}
	point := catalog.Bucket{Lo: 3, Hi: 3}
	if overlapFraction(point, 0, 5) != 1 || overlapFraction(point, 4, 5) != 0 {
		t.Error("point bucket overlap wrong")
	}
}
