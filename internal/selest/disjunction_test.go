package selest

import (
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/storage"
)

func mustDisj(t *testing.T, preds ...expr.Predicate) expr.Disjunction {
	t.Helper()
	d, err := expr.NewDisjunction(preds)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDisjunctionSelectivityTwoEqualities(t *testing.T) {
	ts := catalog.SimpleTable("R", 1000, map[string]float64{"x": 10})
	d := mustDisj(t,
		expr.NewConst(ref("R", "x"), expr.OpEQ, storage.Int64(1)),
		expr.NewConst(ref("R", "x"), expr.OpEQ, storage.Int64(2)),
	)
	sel, err := DisjunctionSelectivity(ts, d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// 1 - (1 - 0.1)^2 = 0.19 under independence.
	if math.Abs(sel-0.19) > 1e-9 {
		t.Errorf("sel = %g, want 0.19", sel)
	}
}

func TestDisjunctionSelectivityMixed(t *testing.T) {
	ts := catalog.SimpleTable("R", 1000, map[string]float64{"x": 10, "y": 100})
	d := mustDisj(t,
		expr.NewConst(ref("R", "x"), expr.OpEQ, storage.Int64(1)),  // 0.1
		expr.NewConst(ref("R", "y"), expr.OpLT, storage.Int64(50)), // 0.5
		expr.NewJoin(ref("R", "x"), expr.OpEQ, ref("R", "y")),      // 1/100
	)
	sel, err := DisjunctionSelectivity(ts, d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - 0.9*0.5*0.99
	if math.Abs(sel-want) > 1e-9 {
		t.Errorf("sel = %g, want %g", sel, want)
	}
}

func TestDisjunctionSelectivityColColNonEq(t *testing.T) {
	ts := catalog.SimpleTable("R", 100, map[string]float64{"a": 10, "b": 10})
	d := mustDisj(t, expr.NewJoin(ref("R", "a"), expr.OpLT, ref("R", "b")))
	sel, err := DisjunctionSelectivity(ts, d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sel-1.0/3.0) > 1e-9 {
		t.Errorf("sel = %g, want 1/3", sel)
	}
}

func TestDisjunctionSelectivityErrors(t *testing.T) {
	ts := catalog.SimpleTable("R", 100, map[string]float64{"x": 10})
	if _, err := DisjunctionSelectivity(nil, expr.Disjunction{}, DefaultOptions()); err == nil {
		t.Error("nil stats should error")
	}
	if _, err := DisjunctionSelectivity(ts, expr.Disjunction{}, DefaultOptions()); err == nil {
		t.Error("empty disjunction should error")
	}
	bad := expr.Disjunction{Preds: []expr.Predicate{
		expr.NewConst(ref("R", "zz"), expr.OpEQ, storage.Int64(1)),
	}}
	if _, err := DisjunctionSelectivity(ts, bad, DefaultOptions()); err == nil {
		t.Error("unknown column should error")
	}
	join := expr.Disjunction{Preds: []expr.Predicate{
		expr.NewJoin(ref("R", "x"), expr.OpEQ, ref("Q", "y")),
	}}
	if _, err := DisjunctionSelectivity(ts, join, DefaultOptions()); err == nil {
		t.Error("join disjunct should error")
	}
	badCol := expr.Disjunction{Preds: []expr.Predicate{
		expr.NewJoin(ref("R", "x"), expr.OpEQ, ref("R", "zz")),
	}}
	if _, err := DisjunctionSelectivity(ts, badCol, DefaultOptions()); err == nil {
		t.Error("unknown colcol column should error")
	}
}

func TestEffectiveTableWithDisjunction(t *testing.T) {
	ts := catalog.SimpleTable("R", 1000, map[string]float64{"x": 10, "y": 100})
	d := mustDisj(t,
		expr.NewConst(ref("R", "x"), expr.OpEQ, storage.Int64(1)),
		expr.NewConst(ref("R", "x"), expr.OpEQ, storage.Int64(2)),
	)
	eff, err := EffectiveTable(ts, nil, []expr.Disjunction{d}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eff.Card-190) > 1e-9 {
		t.Errorf("‖R‖′ = %g, want 190", eff.Card)
	}
	// Disjunction on a foreign table errors.
	foreign := mustDisj(t, expr.NewConst(ref("Q", "x"), expr.OpEQ, storage.Int64(1)))
	if _, err := EffectiveTable(ts, nil, []expr.Disjunction{foreign}, DefaultOptions()); err == nil {
		t.Error("foreign disjunction should error")
	}
}
