package storage

import (
	"fmt"
	"sort"
	"strings"
)

// column is the typed column-major storage for one column. Exactly one of
// the payload slices is used, selected by typ. nulls is nil until the first
// NULL is appended.
type column struct {
	typ    Type
	ints   []int64
	floats []float64
	strs   []string
	bools  []bool
	nulls  []bool
}

func newColumn(t Type) *column { return &column{typ: t} }

func (c *column) length() int {
	switch c.typ {
	case TypeInt64:
		return len(c.ints)
	case TypeFloat64:
		return len(c.floats)
	case TypeString:
		return len(c.strs)
	case TypeBool:
		return len(c.bools)
	default:
		return 0
	}
}

func (c *column) append(v Value) error {
	if v.Type() != c.typ {
		if v.IsNull() {
			// Permit NULLs of any declared type slot; store as this column's type.
			v = Null(c.typ)
		} else {
			return fmt.Errorf("storage: cannot append %s value to %s column", v.Type(), c.typ)
		}
	}
	if v.IsNull() {
		if c.nulls == nil {
			c.nulls = make([]bool, c.length())
		}
		c.nulls = append(c.nulls, true)
	} else if c.nulls != nil {
		c.nulls = append(c.nulls, false)
	}
	switch c.typ {
	case TypeInt64:
		if v.IsNull() {
			c.ints = append(c.ints, 0)
		} else {
			c.ints = append(c.ints, v.i)
		}
	case TypeFloat64:
		if v.IsNull() {
			c.floats = append(c.floats, 0)
		} else {
			c.floats = append(c.floats, v.f)
		}
	case TypeString:
		if v.IsNull() {
			c.strs = append(c.strs, "")
		} else {
			c.strs = append(c.strs, v.s)
		}
	case TypeBool:
		if v.IsNull() {
			c.bools = append(c.bools, false)
		} else {
			c.bools = append(c.bools, v.b)
		}
	default:
		return fmt.Errorf("storage: append to invalid column type")
	}
	return nil
}

func (c *column) value(i int) Value {
	if c.nulls != nil && c.nulls[i] {
		return Null(c.typ)
	}
	switch c.typ {
	case TypeInt64:
		return Int64(c.ints[i])
	case TypeFloat64:
		return Float64(c.floats[i])
	case TypeString:
		return String64(c.strs[i])
	case TypeBool:
		return Bool(c.bools[i])
	default:
		panic("storage: value from invalid column")
	}
}

// Table is an append-only, column-major in-memory table.
//
// Tables are not safe for concurrent mutation; concurrent reads are safe
// once loading is complete.
type Table struct {
	name   string
	schema *Schema
	cols   []*column
	rows   int
}

// NewTable creates an empty table with the given name and schema.
func NewTable(name string, schema *Schema) *Table {
	cols := make([]*column, schema.NumColumns())
	for i := range cols {
		cols[i] = newColumn(schema.Column(i).Type)
	}
	return &Table{name: name, schema: schema, cols: cols}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// NumRows returns the number of rows currently stored.
func (t *Table) NumRows() int { return t.rows }

// AppendRow appends one row. The number and types of values must match the
// schema.
func (t *Table) AppendRow(vals ...Value) error {
	if len(vals) != len(t.cols) {
		return fmt.Errorf("storage: table %s: row has %d values, schema has %d columns",
			t.name, len(vals), len(t.cols))
	}
	for i, v := range vals {
		if err := t.cols[i].append(v); err != nil {
			// Roll back the columns already appended for this row so the table
			// stays rectangular.
			for j := 0; j < i; j++ {
				t.cols[j].truncate(t.rows)
			}
			return fmt.Errorf("storage: table %s column %s: %w", t.name, t.schema.Column(i).Name, err)
		}
	}
	t.rows++
	return nil
}

func (c *column) truncate(n int) {
	switch c.typ {
	case TypeInt64:
		c.ints = c.ints[:n]
	case TypeFloat64:
		c.floats = c.floats[:n]
	case TypeString:
		c.strs = c.strs[:n]
	case TypeBool:
		c.bools = c.bools[:n]
	}
	if c.nulls != nil {
		c.nulls = c.nulls[:n]
	}
}

// MustAppendRow appends one row and panics on error. Intended for tests and
// generators that construct rows from the table's own schema.
func (t *Table) MustAppendRow(vals ...Value) {
	if err := t.AppendRow(vals...); err != nil {
		panic(err)
	}
}

// Value returns the value at the given row and column ordinals.
func (t *Table) Value(row, col int) Value {
	return t.cols[col].value(row)
}

// IntAt returns the int64 at (row, col) without boxing. It panics if the
// column is not TypeInt64 or the value is NULL. Hot loops in the executor
// use it to avoid allocation.
func (t *Table) IntAt(row, col int) int64 {
	c := t.cols[col]
	if c.typ != TypeInt64 {
		panic(fmt.Sprintf("storage: IntAt on %s column", c.typ))
	}
	if c.nulls != nil && c.nulls[row] {
		panic("storage: IntAt on NULL")
	}
	return c.ints[row]
}

// Row materializes row i as a slice of values. The slice is freshly
// allocated on each call.
func (t *Table) Row(i int) []Value {
	out := make([]Value, len(t.cols))
	for c := range t.cols {
		out[c] = t.cols[c].value(i)
	}
	return out
}

// AppendRowTo appends row i's values to dst and returns the extended slice,
// letting callers reuse buffers across rows.
func (t *Table) AppendRowTo(dst []Value, i int) []Value {
	for c := range t.cols {
		dst = append(dst, t.cols[c].value(i))
	}
	return dst
}

// ColumnValues returns all values of the named column in row order. It
// returns an error if the column does not exist.
func (t *Table) ColumnValues(name string) ([]Value, error) {
	idx := t.schema.ColumnIndex(name)
	if idx < 0 {
		return nil, fmt.Errorf("storage: table %s has no column %q", t.name, name)
	}
	out := make([]Value, t.rows)
	for i := 0; i < t.rows; i++ {
		out[i] = t.cols[idx].value(i)
	}
	return out, nil
}

// SortedIndices returns row indices of the table ordered by the given
// column (NULLs first). The table itself is not modified; sort-merge join
// uses the permutation to stream rows in order.
func (t *Table) SortedIndices(col int) []int {
	idx := make([]int, t.rows)
	for i := range idx {
		idx[i] = i
	}
	c := t.cols[col]
	sort.SliceStable(idx, func(a, b int) bool {
		return Compare(c.value(idx[a]), c.value(idx[b])) < 0
	})
	return idx
}

// AppendTable appends every row of src to t by concatenating the column
// storage directly, without boxing values row by row. The schemas must
// have the same column count and types (names may differ). Parallel
// operators use it to stitch per-chunk outputs back into one table in
// chunk order.
func (t *Table) AppendTable(src *Table) error {
	if src.schema.NumColumns() != t.schema.NumColumns() {
		return fmt.Errorf("storage: append %d-column table to %d-column table",
			src.schema.NumColumns(), t.schema.NumColumns())
	}
	for i, c := range t.cols {
		if src.cols[i].typ != c.typ {
			return fmt.Errorf("storage: column %d type mismatch: %s vs %s",
				i, src.cols[i].typ, c.typ)
		}
	}
	for i, c := range t.cols {
		sc := src.cols[i]
		if c.nulls == nil && sc.nulls != nil {
			c.nulls = make([]bool, c.length(), c.length()+sc.length())
		}
		if c.nulls != nil {
			if sc.nulls != nil {
				c.nulls = append(c.nulls, sc.nulls...)
			} else {
				c.nulls = append(c.nulls, make([]bool, sc.length())...)
			}
		}
		switch c.typ {
		case TypeInt64:
			c.ints = append(c.ints, sc.ints...)
		case TypeFloat64:
			c.floats = append(c.floats, sc.floats...)
		case TypeString:
			c.strs = append(c.strs, sc.strs...)
		case TypeBool:
			c.bools = append(c.bools, sc.bools...)
		}
	}
	t.rows += src.rows
	return nil
}

// Rename returns a shallow copy of the table under a new name; the column
// data is shared. Useful for self-joins and aliases.
func (t *Table) Rename(name string) *Table {
	return &Table{name: name, schema: t.schema, cols: t.cols, rows: t.rows}
}

// String renders a small human-readable summary (name, schema, row count).
func (t *Table) String() string {
	return fmt.Sprintf("%s%s [%d rows]", t.name, t.schema, t.rows)
}

// Format renders up to max rows as an aligned text table for debugging and
// example programs. If max <= 0 all rows are rendered.
func (t *Table) Format(max int) string {
	if max <= 0 || max > t.rows {
		max = t.rows
	}
	var b strings.Builder
	for i, c := range t.schema.Columns() {
		if i > 0 {
			b.WriteByte('\t')
		}
		b.WriteString(c.Name)
	}
	b.WriteByte('\n')
	for r := 0; r < max; r++ {
		for c := 0; c < t.schema.NumColumns(); c++ {
			if c > 0 {
				b.WriteByte('\t')
			}
			b.WriteString(t.cols[c].value(r).String())
		}
		b.WriteByte('\n')
	}
	if max < t.rows {
		fmt.Fprintf(&b, "... (%d more rows)\n", t.rows-max)
	}
	return b.String()
}
