package storage

// Byte accounting for the governor's memory ledger. The model is a fixed
// per-value footprint — int64/float64 8 bytes, bool 1 byte, string 16
// bytes of header plus its content — chosen so that the same total is
// reached whether a materialization is charged value-by-value (row engine
// emit paths), row-by-row (spill runs), or table-at-once (operator
// outputs): Table.ApproxBytes equals the sum of RowBytes over the
// table's rows exactly. NULLs charge their type's base footprint (the
// column slot is allocated either way); the lazily-built null bitmap is
// deliberately excluded from both sides to keep the equality exact.

// valueBaseBytes is the footprint of one value of the given type,
// excluding string content.
func valueBaseBytes(t Type) int64 {
	switch t {
	case TypeBool:
		return 1
	case TypeString:
		return 16
	default:
		return 8
	}
}

// ValueBytes returns the accounted footprint of one value.
func ValueBytes(v Value) int64 {
	n := valueBaseBytes(v.Type())
	if v.Type() == TypeString && !v.IsNull() {
		n += int64(len(v.s))
	}
	return n
}

// RowBytes returns the accounted footprint of one materialized row.
func RowBytes(vals []Value) int64 {
	var n int64
	for _, v := range vals {
		n += ValueBytes(v)
	}
	return n
}

// ApproxBytes returns the accounted footprint of the whole table under
// the same per-value model, computed column-wise without boxing.
func (t *Table) ApproxBytes() int64 {
	var n int64
	for _, c := range t.cols {
		switch c.typ {
		case TypeInt64:
			n += 8 * int64(len(c.ints))
		case TypeFloat64:
			n += 8 * int64(len(c.floats))
		case TypeBool:
			n += int64(len(c.bools))
		case TypeString:
			n += 16 * int64(len(c.strs))
			for _, s := range c.strs {
				n += int64(len(s))
			}
		}
	}
	return n
}
