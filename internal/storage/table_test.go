package storage

import (
	"strings"
	"testing"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema(
		ColumnDef{Name: "id", Type: TypeInt64},
		ColumnDef{Name: "name", Type: TypeString},
		ColumnDef{Name: "score", Type: TypeFloat64},
	)
}

func TestNewSchemaErrors(t *testing.T) {
	if _, err := NewSchema(ColumnDef{Name: "", Type: TypeInt64}); err == nil {
		t.Error("empty column name should error")
	}
	if _, err := NewSchema(ColumnDef{Name: "x", Type: TypeInvalid}); err == nil {
		t.Error("invalid type should error")
	}
	if _, err := NewSchema(
		ColumnDef{Name: "x", Type: TypeInt64},
		ColumnDef{Name: "X", Type: TypeInt64},
	); err == nil {
		t.Error("case-insensitive duplicate should error")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSchema should panic on bad schema")
		}
	}()
	MustSchema(ColumnDef{Name: "", Type: TypeInt64})
}

func TestSchemaLookup(t *testing.T) {
	s := testSchema(t)
	if s.NumColumns() != 3 {
		t.Fatalf("NumColumns = %d, want 3", s.NumColumns())
	}
	if s.ColumnIndex("ID") != 0 || s.ColumnIndex("Name") != 1 || s.ColumnIndex("score") != 2 {
		t.Error("case-insensitive ColumnIndex failed")
	}
	if s.ColumnIndex("missing") != -1 {
		t.Error("missing column should give -1")
	}
	if !s.HasColumn("id") || s.HasColumn("nope") {
		t.Error("HasColumn wrong")
	}
	if s.Column(1).Name != "name" {
		t.Error("Column(1) wrong")
	}
	cols := s.Columns()
	cols[0].Name = "mutated"
	if s.Column(0).Name != "id" {
		t.Error("Columns() must return a copy")
	}
}

func TestSchemaRowWidth(t *testing.T) {
	s := testSchema(t)
	want := 8 + 16 + 8
	if s.RowWidth() != want {
		t.Errorf("RowWidth = %d, want %d", s.RowWidth(), want)
	}
	empty := MustSchema()
	if empty.RowWidth() <= 0 {
		t.Error("empty schema RowWidth must be positive")
	}
}

func TestSchemaConcat(t *testing.T) {
	a := MustSchema(ColumnDef{Name: "x", Type: TypeInt64}, ColumnDef{Name: "y", Type: TypeInt64})
	b := MustSchema(ColumnDef{Name: "x", Type: TypeInt64}, ColumnDef{Name: "z", Type: TypeInt64})
	j, err := a.Concat(b, "l", "r")
	if err != nil {
		t.Fatal(err)
	}
	if j.NumColumns() != 4 {
		t.Fatalf("concat columns = %d, want 4", j.NumColumns())
	}
	if j.ColumnIndex("x") != 0 {
		t.Error("left x should keep plain name")
	}
	if j.ColumnIndex("r.x") != 2 {
		t.Errorf("right x should be qualified, got schema %s", j)
	}
}

func TestSchemaString(t *testing.T) {
	s := testSchema(t)
	got := s.String()
	if !strings.Contains(got, "id BIGINT") || !strings.Contains(got, "score DOUBLE") {
		t.Errorf("schema string %q missing pieces", got)
	}
}

func TestTableAppendAndRead(t *testing.T) {
	tbl := NewTable("people", testSchema(t))
	if err := tbl.AppendRow(Int64(1), String64("ann"), Float64(3.5)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AppendRow(Int64(2), Null(TypeString), Float64(1.25)); err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", tbl.NumRows())
	}
	if tbl.Value(0, 0).Int() != 1 || tbl.Value(0, 1).Str() != "ann" {
		t.Error("row 0 values wrong")
	}
	if !tbl.Value(1, 1).IsNull() {
		t.Error("row 1 name should be NULL")
	}
	row := tbl.Row(1)
	if len(row) != 3 || row[2].Float() != 1.25 {
		t.Errorf("Row(1) = %v", row)
	}
}

func TestTableAppendErrors(t *testing.T) {
	tbl := NewTable("t", testSchema(t))
	if err := tbl.AppendRow(Int64(1)); err == nil {
		t.Error("arity mismatch should error")
	}
	if err := tbl.AppendRow(String64("x"), String64("y"), Float64(0)); err == nil {
		t.Error("type mismatch should error")
	}
	if tbl.NumRows() != 0 {
		t.Error("failed appends must not change row count")
	}
	// A failure mid-row must roll back earlier columns of that row.
	if err := tbl.AppendRow(Int64(1), Int64(2), Float64(0)); err == nil {
		t.Error("second column type mismatch should error")
	}
	if err := tbl.AppendRow(Int64(9), String64("ok"), Float64(1)); err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
	if tbl.NumRows() != 1 || tbl.Value(0, 0).Int() != 9 {
		t.Error("table corrupted after rolled-back append")
	}
}

func TestMustAppendRowPanics(t *testing.T) {
	tbl := NewTable("t", testSchema(t))
	defer func() {
		if recover() == nil {
			t.Error("MustAppendRow should panic on bad row")
		}
	}()
	tbl.MustAppendRow(Int64(1))
}

func TestTableIntAt(t *testing.T) {
	tbl := NewTable("t", MustSchema(ColumnDef{Name: "v", Type: TypeInt64}))
	tbl.MustAppendRow(Int64(17))
	if tbl.IntAt(0, 0) != 17 {
		t.Error("IntAt wrong")
	}
}

func TestTableIntAtPanics(t *testing.T) {
	tbl := NewTable("t", MustSchema(ColumnDef{Name: "v", Type: TypeInt64}))
	tbl.MustAppendRow(Null(TypeInt64))
	defer func() {
		if recover() == nil {
			t.Error("IntAt on NULL should panic")
		}
	}()
	tbl.IntAt(0, 0)
}

func TestColumnValues(t *testing.T) {
	tbl := NewTable("t", testSchema(t))
	tbl.MustAppendRow(Int64(3), String64("a"), Float64(0))
	tbl.MustAppendRow(Int64(1), String64("b"), Float64(0))
	vals, err := tbl.ColumnValues("id")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0].Int() != 3 || vals[1].Int() != 1 {
		t.Errorf("ColumnValues = %v", vals)
	}
	if _, err := tbl.ColumnValues("nope"); err == nil {
		t.Error("missing column should error")
	}
}

func TestSortedIndices(t *testing.T) {
	tbl := NewTable("t", MustSchema(ColumnDef{Name: "v", Type: TypeInt64}))
	for _, v := range []int64{5, 1, 4, 1, 3} {
		tbl.MustAppendRow(Int64(v))
	}
	tbl.MustAppendRow(Null(TypeInt64))
	idx := tbl.SortedIndices(0)
	if len(idx) != 6 {
		t.Fatalf("len = %d", len(idx))
	}
	if !tbl.Value(idx[0], 0).IsNull() {
		t.Error("NULL should sort first")
	}
	prev := tbl.Value(idx[1], 0)
	for _, i := range idx[2:] {
		cur := tbl.Value(i, 0)
		if Compare(prev, cur) > 0 {
			t.Errorf("not sorted: %v > %v", prev, cur)
		}
		prev = cur
	}
}

func TestRename(t *testing.T) {
	tbl := NewTable("orig", MustSchema(ColumnDef{Name: "v", Type: TypeInt64}))
	tbl.MustAppendRow(Int64(1))
	alias := tbl.Rename("alias")
	if alias.Name() != "alias" || alias.NumRows() != 1 || alias.Value(0, 0).Int() != 1 {
		t.Error("Rename should share data under a new name")
	}
	if tbl.Name() != "orig" {
		t.Error("Rename must not modify the original")
	}
}

func TestAppendRowTo(t *testing.T) {
	tbl := NewTable("t", testSchema(t))
	tbl.MustAppendRow(Int64(1), String64("a"), Float64(2))
	buf := make([]Value, 0, 8)
	buf = tbl.AppendRowTo(buf, 0)
	if len(buf) != 3 || buf[0].Int() != 1 {
		t.Errorf("AppendRowTo = %v", buf)
	}
}

func TestTableFormatAndString(t *testing.T) {
	tbl := NewTable("t", MustSchema(ColumnDef{Name: "v", Type: TypeInt64}))
	for i := int64(0); i < 5; i++ {
		tbl.MustAppendRow(Int64(i))
	}
	out := tbl.Format(2)
	if !strings.Contains(out, "3 more rows") {
		t.Errorf("Format(2) missing truncation note: %q", out)
	}
	all := tbl.Format(0)
	if strings.Contains(all, "more rows") {
		t.Errorf("Format(0) should include all rows: %q", all)
	}
	if !strings.Contains(tbl.String(), "[5 rows]") {
		t.Errorf("String() = %q", tbl.String())
	}
}

func TestNullsAppearMidColumn(t *testing.T) {
	// The nulls bitmap is lazily created; verify a NULL after non-NULLs works.
	tbl := NewTable("t", MustSchema(ColumnDef{Name: "v", Type: TypeInt64}))
	tbl.MustAppendRow(Int64(1))
	tbl.MustAppendRow(Int64(2))
	tbl.MustAppendRow(Null(TypeInt64))
	tbl.MustAppendRow(Int64(4))
	if tbl.Value(0, 0).IsNull() || tbl.Value(1, 0).IsNull() {
		t.Error("early rows must not be NULL")
	}
	if !tbl.Value(2, 0).IsNull() {
		t.Error("row 2 must be NULL")
	}
	if tbl.Value(3, 0).IsNull() || tbl.Value(3, 0).Int() != 4 {
		t.Error("row 3 must be 4")
	}
}

func TestNullOfWrongDeclaredType(t *testing.T) {
	// A NULL value carrying a different type tag is coerced to the column type.
	tbl := NewTable("t", MustSchema(ColumnDef{Name: "v", Type: TypeInt64}))
	if err := tbl.AppendRow(Null(TypeString)); err != nil {
		t.Fatalf("NULL of any type should be appendable: %v", err)
	}
	if !tbl.Value(0, 0).IsNull() || tbl.Value(0, 0).Type() != TypeInt64 {
		t.Error("stored NULL should carry the column type")
	}
}

func TestAppendTable(t *testing.T) {
	schema := MustSchema(
		ColumnDef{Name: "k", Type: TypeInt64},
		ColumnDef{Name: "s", Type: TypeString},
	)
	a := NewTable("a", schema)
	a.MustAppendRow(Int64(1), String64("x"))
	a.MustAppendRow(Int64(2), Null(TypeString))
	b := NewTable("b", schema)
	b.MustAppendRow(Int64(3), String64("y"))
	if err := a.AppendTable(b); err != nil {
		t.Fatal(err)
	}
	if a.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", a.NumRows())
	}
	if a.Value(2, 0).Int() != 3 || a.Value(2, 1).Str() != "y" {
		t.Errorf("appended row wrong: %v %v", a.Value(2, 0), a.Value(2, 1))
	}
	if !a.Value(1, 1).IsNull() {
		t.Error("pre-existing NULL lost")
	}
}

func TestAppendTableNullsFromSource(t *testing.T) {
	// Destination has no nulls bitmap yet; source does.
	schema := MustSchema(ColumnDef{Name: "v", Type: TypeInt64})
	a := NewTable("a", schema)
	a.MustAppendRow(Int64(1))
	b := NewTable("b", schema)
	b.MustAppendRow(Null(TypeInt64))
	b.MustAppendRow(Int64(5))
	if err := a.AppendTable(b); err != nil {
		t.Fatal(err)
	}
	if a.Value(0, 0).IsNull() {
		t.Error("row 0 must stay non-NULL")
	}
	if !a.Value(1, 0).IsNull() {
		t.Error("appended NULL lost")
	}
	if a.Value(2, 0).Int() != 5 {
		t.Error("appended value lost")
	}
}

func TestAppendTableTypeMismatch(t *testing.T) {
	a := NewTable("a", MustSchema(ColumnDef{Name: "v", Type: TypeInt64}))
	b := NewTable("b", MustSchema(ColumnDef{Name: "v", Type: TypeString}))
	if err := a.AppendTable(b); err == nil {
		t.Fatal("type mismatch must be rejected")
	}
	c := NewTable("c", MustSchema(
		ColumnDef{Name: "v", Type: TypeInt64}, ColumnDef{Name: "w", Type: TypeInt64}))
	if err := a.AppendTable(c); err == nil {
		t.Fatal("column-count mismatch must be rejected")
	}
}
