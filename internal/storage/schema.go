package storage

import (
	"fmt"
	"strings"
)

// ColumnDef describes one column of a table schema.
type ColumnDef struct {
	// Name is the column name, unique within its schema (case-insensitive).
	Name string
	// Type is the column's value type.
	Type Type
}

// Schema is an ordered list of column definitions.
type Schema struct {
	cols  []ColumnDef
	index map[string]int // lower-cased name -> ordinal
}

// NewSchema builds a schema from column definitions. It returns an error if
// a column name is duplicated (case-insensitively) or a type is invalid.
func NewSchema(cols ...ColumnDef) (*Schema, error) {
	s := &Schema{
		cols:  make([]ColumnDef, len(cols)),
		index: make(map[string]int, len(cols)),
	}
	copy(s.cols, cols)
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("storage: column %d has empty name", i)
		}
		if !c.Type.Valid() {
			return nil, fmt.Errorf("storage: column %q has invalid type", c.Name)
		}
		key := strings.ToLower(c.Name)
		if _, dup := s.index[key]; dup {
			return nil, fmt.Errorf("storage: duplicate column name %q", c.Name)
		}
		s.index[key] = i
	}
	return s, nil
}

// MustSchema is NewSchema but panics on error; intended for tests and
// static schemas.
func MustSchema(cols ...ColumnDef) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumColumns returns the number of columns in the schema.
func (s *Schema) NumColumns() int { return len(s.cols) }

// Column returns the definition of the i-th column.
func (s *Schema) Column(i int) ColumnDef { return s.cols[i] }

// Columns returns a copy of all column definitions.
func (s *Schema) Columns() []ColumnDef {
	out := make([]ColumnDef, len(s.cols))
	copy(out, s.cols)
	return out
}

// ColumnIndex returns the ordinal of the named column (case-insensitive),
// or -1 if the schema has no such column.
func (s *Schema) ColumnIndex(name string) int {
	if i, ok := s.index[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// HasColumn reports whether the schema contains the named column.
func (s *Schema) HasColumn(name string) bool { return s.ColumnIndex(name) >= 0 }

// RowWidth returns the estimated width of one row in bytes, used by the
// cost model to convert cardinalities into page counts.
func (s *Schema) RowWidth() int {
	w := 0
	for _, c := range s.cols {
		w += c.Type.Width()
	}
	if w == 0 {
		w = 1
	}
	return w
}

// Concat returns a new schema that is the concatenation of s and other,
// prefixing duplicated names to keep them unique. Join operators use it to
// build the schema of a join result; prefixes are the given qualifiers.
func (s *Schema) Concat(other *Schema, leftQual, rightQual string) (*Schema, error) {
	cols := make([]ColumnDef, 0, len(s.cols)+len(other.cols))
	seen := make(map[string]bool, len(s.cols)+len(other.cols))
	add := func(c ColumnDef, qual string) {
		name := c.Name
		if seen[strings.ToLower(name)] && qual != "" {
			name = qual + "." + name
		}
		// If still colliding, keep appending the qualifier; pathological but safe.
		for seen[strings.ToLower(name)] {
			name = qual + "." + name
		}
		seen[strings.ToLower(name)] = true
		cols = append(cols, ColumnDef{Name: name, Type: c.Type})
	}
	for _, c := range s.cols {
		add(c, leftQual)
	}
	for _, c := range other.cols {
		add(c, rightQual)
	}
	return NewSchema(cols...)
}

// String renders the schema as "(name TYPE, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
	}
	b.WriteByte(')')
	return b.String()
}
