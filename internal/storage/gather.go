package storage

import "fmt"

// ColumnData is a read-only view of one column's typed storage. Exactly one
// payload slice is non-nil, selected by Type; Nulls is nil when the column
// holds no NULLs. The vectorized executor reads these views directly so its
// kernels run over flat slices instead of boxed Values. Callers must not
// mutate the slices — they alias the table's live storage.
type ColumnData struct {
	Type   Type
	Ints   []int64
	Floats []float64
	Strs   []string
	Bools  []bool
	Nulls  []bool
}

// ColumnData returns the typed view of column col.
func (t *Table) ColumnData(col int) ColumnData {
	c := t.cols[col]
	return ColumnData{
		Type:   c.typ,
		Ints:   c.ints,
		Floats: c.floats,
		Strs:   c.strs,
		Bools:  c.bools,
		Nulls:  c.nulls,
	}
}

// Null reports whether row i of the view is NULL.
func (d ColumnData) Null(i int) bool { return d.Nulls != nil && d.Nulls[i] }

// Value boxes row i of the view. Vectorized kernels fall back to it for the
// type combinations they do not specialize.
func (d ColumnData) Value(i int) Value {
	if d.Null(i) {
		return Null(d.Type)
	}
	switch d.Type {
	case TypeInt64:
		return Int64(d.Ints[i])
	case TypeFloat64:
		return Float64(d.Floats[i])
	case TypeString:
		return String64(d.Strs[i])
	case TypeBool:
		return Bool(d.Bools[i])
	default:
		panic("storage: Value from invalid column view")
	}
}

// appendGather appends src's values at the selected row indices, in
// selection order. Like AppendTable, the destination's nulls slice is
// materialized as soon as the source has one.
func (c *column) appendGather(src *column, sel []int) {
	if c.nulls == nil && src.nulls != nil {
		c.nulls = make([]bool, c.length(), c.length()+len(sel))
	}
	if c.nulls != nil {
		if src.nulls != nil {
			for _, r := range sel {
				c.nulls = append(c.nulls, src.nulls[r])
			}
		} else {
			c.nulls = append(c.nulls, make([]bool, len(sel))...)
		}
	}
	switch c.typ {
	case TypeInt64:
		for _, r := range sel {
			c.ints = append(c.ints, src.ints[r])
		}
	case TypeFloat64:
		for _, r := range sel {
			c.floats = append(c.floats, src.floats[r])
		}
	case TypeString:
		for _, r := range sel {
			c.strs = append(c.strs, src.strs[r])
		}
	case TypeBool:
		for _, r := range sel {
			c.bools = append(c.bools, src.bools[r])
		}
	}
}

// AppendGather appends the rows of src selected by sel (in selection order)
// by gathering column storage directly, without boxing values. The schemas
// must have the same column count and types (names may differ). It is the
// sink of the vectorized scan: a selection vector over a base chunk turns
// into output rows only here.
func (t *Table) AppendGather(src *Table, sel []int) error {
	if src.schema.NumColumns() != t.schema.NumColumns() {
		return fmt.Errorf("storage: gather %d-column table into %d-column table",
			src.schema.NumColumns(), t.schema.NumColumns())
	}
	for i, c := range t.cols {
		if src.cols[i].typ != c.typ {
			return fmt.Errorf("storage: column %d type mismatch: %s vs %s",
				i, src.cols[i].typ, c.typ)
		}
	}
	for i, c := range t.cols {
		c.appendGather(src.cols[i], sel)
	}
	t.rows += len(sel)
	return nil
}

// AppendPairGather appends joined rows formed by pairing left[lsel[i]] with
// right[rsel[i]]. The receiver's schema must be the concatenation of left's
// and right's column types (names may differ). lsel and rsel must have equal
// length. It is the sink of the vectorized hash join: matched (left, right)
// index pairs turn into output rows column by column.
func (t *Table) AppendPairGather(left, right *Table, lsel, rsel []int) error {
	if len(lsel) != len(rsel) {
		return fmt.Errorf("storage: pair gather with %d left and %d right indices", len(lsel), len(rsel))
	}
	lcols := left.schema.NumColumns()
	if lcols+right.schema.NumColumns() != t.schema.NumColumns() {
		return fmt.Errorf("storage: pair gather %d+%d columns into %d-column table",
			lcols, right.schema.NumColumns(), t.schema.NumColumns())
	}
	for i, c := range t.cols {
		var st Type
		if i < lcols {
			st = left.cols[i].typ
		} else {
			st = right.cols[i-lcols].typ
		}
		if st != c.typ {
			return fmt.Errorf("storage: column %d type mismatch: %s vs %s", i, st, c.typ)
		}
	}
	for i, c := range t.cols {
		if i < lcols {
			c.appendGather(left.cols[i], lsel)
		} else {
			c.appendGather(right.cols[i-lcols], rsel)
		}
	}
	t.rows += len(lsel)
	return nil
}
