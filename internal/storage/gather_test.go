package storage

import "testing"

func gatherSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		ColumnDef{Name: "i", Type: TypeInt64},
		ColumnDef{Name: "f", Type: TypeFloat64},
		ColumnDef{Name: "s", Type: TypeString},
		ColumnDef{Name: "b", Type: TypeBool},
	)
	if err != nil {
		t.Fatalf("schema: %v", err)
	}
	return s
}

func gatherSource(t *testing.T) *Table {
	t.Helper()
	src := NewTable("src", gatherSchema(t))
	src.MustAppendRow(Int64(1), Float64(1.5), String64("a"), Bool(true))
	src.MustAppendRow(Null(TypeInt64), Float64(2.5), String64("b"), Bool(false))
	src.MustAppendRow(Int64(3), Null(TypeFloat64), String64("c"), Bool(true))
	src.MustAppendRow(Int64(4), Float64(4.5), String64("d"), Bool(false))
	return src
}

func TestAppendGather(t *testing.T) {
	src := gatherSource(t)
	dst := NewTable("dst", gatherSchema(t))
	sel := []int{3, 1, 1, 0}
	if err := dst.AppendGather(src, sel); err != nil {
		t.Fatalf("AppendGather: %v", err)
	}
	if dst.NumRows() != len(sel) {
		t.Fatalf("rows = %d, want %d", dst.NumRows(), len(sel))
	}
	for out, in := range sel {
		for c := 0; c < 4; c++ {
			got, want := dst.Value(out, c), src.Value(in, c)
			if got.IsNull() != want.IsNull() || (!got.IsNull() && !Equal(got, want)) {
				t.Errorf("row %d col %d: got %s, want %s", out, c, got, want)
			}
		}
	}
}

func TestAppendGatherAfterRowAppends(t *testing.T) {
	// A destination that already has rows (with no nulls slice) must
	// materialize its nulls when gathering from a nullable source.
	src := gatherSource(t)
	dst := NewTable("dst", gatherSchema(t))
	dst.MustAppendRow(Int64(9), Float64(9.5), String64("z"), Bool(true))
	if err := dst.AppendGather(src, []int{1}); err != nil {
		t.Fatalf("AppendGather: %v", err)
	}
	if !dst.Value(1, 0).IsNull() {
		t.Errorf("expected NULL at (1,0), got %s", dst.Value(1, 0))
	}
	if dst.Value(0, 0).IsNull() {
		t.Errorf("pre-existing row became NULL")
	}
}

func TestAppendGatherTypeMismatch(t *testing.T) {
	src := gatherSource(t)
	other, err := NewSchema(ColumnDef{Name: "x", Type: TypeString})
	if err != nil {
		t.Fatalf("schema: %v", err)
	}
	dst := NewTable("dst", other)
	if err := dst.AppendGather(src, []int{0}); err == nil {
		t.Fatalf("expected column-count mismatch error")
	}
}

func TestAppendPairGather(t *testing.T) {
	left := gatherSource(t)
	rs, err := NewSchema(ColumnDef{Name: "k", Type: TypeInt64}, ColumnDef{Name: "v", Type: TypeString})
	if err != nil {
		t.Fatalf("schema: %v", err)
	}
	right := NewTable("right", rs)
	right.MustAppendRow(Int64(10), String64("x"))
	right.MustAppendRow(Null(TypeInt64), String64("y"))

	joined, err := NewSchema(
		ColumnDef{Name: "i", Type: TypeInt64},
		ColumnDef{Name: "f", Type: TypeFloat64},
		ColumnDef{Name: "s", Type: TypeString},
		ColumnDef{Name: "b", Type: TypeBool},
		ColumnDef{Name: "k", Type: TypeInt64},
		ColumnDef{Name: "v", Type: TypeString},
	)
	if err != nil {
		t.Fatalf("schema: %v", err)
	}
	dst := NewTable("dst", joined)
	lsel := []int{2, 0}
	rsel := []int{1, 0}
	if err := dst.AppendPairGather(left, right, lsel, rsel); err != nil {
		t.Fatalf("AppendPairGather: %v", err)
	}
	if dst.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", dst.NumRows())
	}
	if !dst.Value(0, 4).IsNull() {
		t.Errorf("expected NULL right key in first joined row")
	}
	if got := dst.Value(1, 5); !Equal(got, String64("x")) {
		t.Errorf("joined (1, v) = %s, want x", got)
	}
	if err := dst.AppendPairGather(left, right, []int{0}, []int{0, 1}); err == nil {
		t.Fatalf("expected length mismatch error")
	}
}
