// Package storage implements the in-memory relational storage substrate used
// by the estimation library, the optimizer and the executor. Tables are
// column-major, append-only collections of typed values. The package has no
// dependencies outside the Go standard library.
//
// The storage layer deliberately stays small: it provides exactly what a
// query optimizer's test harness needs — typed columns, cheap scans, row
// materialization, and deterministic ordering — without transactions,
// durability or concurrency control, none of which the paper's experiments
// exercise.
package storage

import (
	"fmt"
	"math"
	"strconv"
)

// Type identifies the runtime type of a Value and of a table column.
type Type int

// The supported column types. The paper's experiments only require integer
// join columns, but strings, floats and booleans are supported so that the
// library is usable on realistic schemas.
const (
	// TypeInvalid is the zero Type; it is never a valid column type.
	TypeInvalid Type = iota
	// TypeInt64 is a 64-bit signed integer.
	TypeInt64
	// TypeFloat64 is a 64-bit IEEE-754 floating point number.
	TypeFloat64
	// TypeString is an immutable UTF-8 string.
	TypeString
	// TypeBool is a boolean.
	TypeBool
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TypeInt64:
		return "BIGINT"
	case TypeFloat64:
		return "DOUBLE"
	case TypeString:
		return "VARCHAR"
	case TypeBool:
		return "BOOLEAN"
	default:
		return "INVALID"
	}
}

// Valid reports whether t is one of the defined column types.
func (t Type) Valid() bool {
	return t > TypeInvalid && t <= TypeBool
}

// Width returns the estimated storage width of a value of this type in
// bytes. It is used by the cost model to translate cardinalities into page
// counts.
func (t Type) Width() int {
	switch t {
	case TypeInt64, TypeFloat64:
		return 8
	case TypeString:
		return 16 // average assumption; catalog stats can refine this
	case TypeBool:
		return 1
	default:
		return 0
	}
}

// Value is a dynamically typed scalar. The zero Value is the SQL NULL of an
// invalid type; use the typed constructors to build valid values.
type Value struct {
	typ  Type
	null bool
	i    int64
	f    float64
	s    string
	b    bool
}

// Int64 returns an int64 Value.
func Int64(v int64) Value { return Value{typ: TypeInt64, i: v} }

// Float64 returns a float64 Value.
func Float64(v float64) Value { return Value{typ: TypeFloat64, f: v} }

// String64 returns a string Value. (Named to avoid clashing with the
// fmt.Stringer method on Value.)
func String64(v string) Value { return Value{typ: TypeString, s: v} }

// Bool returns a boolean Value.
func Bool(v bool) Value { return Value{typ: TypeBool, b: v} }

// Null returns the NULL value of the given type.
func Null(t Type) Value { return Value{typ: t, null: true} }

// Type returns the type of the value.
func (v Value) Type() Type { return v.typ }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.null }

// Int returns the integer payload. It panics if the value is not a non-null
// TypeInt64.
func (v Value) Int() int64 {
	if v.typ != TypeInt64 || v.null {
		panic(fmt.Sprintf("storage: Int() on %s", v))
	}
	return v.i
}

// Float returns the float payload. It panics if the value is not a non-null
// TypeFloat64.
func (v Value) Float() float64 {
	if v.typ != TypeFloat64 || v.null {
		panic(fmt.Sprintf("storage: Float() on %s", v))
	}
	return v.f
}

// Str returns the string payload. It panics if the value is not a non-null
// TypeString.
func (v Value) Str() string {
	if v.typ != TypeString || v.null {
		panic(fmt.Sprintf("storage: Str() on %s", v))
	}
	return v.s
}

// BoolVal returns the boolean payload. It panics if the value is not a
// non-null TypeBool.
func (v Value) BoolVal() bool {
	if v.typ != TypeBool || v.null {
		panic(fmt.Sprintf("storage: BoolVal() on %s", v))
	}
	return v.b
}

// AsFloat converts a numeric value to float64 for use in arithmetic over
// mixed int/float comparisons. It panics on non-numeric types.
func (v Value) AsFloat() float64 {
	switch v.typ {
	case TypeInt64:
		return float64(v.i)
	case TypeFloat64:
		return v.f
	default:
		panic(fmt.Sprintf("storage: AsFloat() on %s", v))
	}
}

// String renders the value for diagnostics and EXPLAIN output.
func (v Value) String() string {
	if v.null {
		return "NULL"
	}
	switch v.typ {
	case TypeInt64:
		return strconv.FormatInt(v.i, 10)
	case TypeFloat64:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case TypeString:
		return strconv.Quote(v.s)
	case TypeBool:
		if v.b {
			return "TRUE"
		}
		return "FALSE"
	default:
		return "<invalid>"
	}
}

// Key returns a string that is equal for exactly the values that compare
// equal under Compare. It is used as a hash key by hash joins and by
// distinct-value counting in ANALYZE.
func (v Value) Key() string {
	if v.null {
		return "\x00N"
	}
	switch v.typ {
	case TypeInt64:
		return "\x01" + strconv.FormatInt(v.i, 36)
	case TypeFloat64:
		// Normalize -0.0 to 0.0 so they hash identically, matching Compare.
		f := v.f
		if f == 0 {
			f = 0
		}
		return "\x02" + strconv.FormatUint(math.Float64bits(f), 36)
	case TypeString:
		return "\x03" + v.s
	case TypeBool:
		if v.b {
			return "\x04t"
		}
		return "\x04f"
	default:
		return "\x00I"
	}
}

// Compare orders two values of the same type. NULL sorts before all
// non-null values, matching the sort order used by the sort-merge join.
// It panics if the types differ (the planner guarantees comparable types).
func Compare(a, b Value) int {
	if a.typ != b.typ {
		// Allow numeric cross-type comparison; everything else is a planner bug.
		if (a.typ == TypeInt64 || a.typ == TypeFloat64) && (b.typ == TypeInt64 || b.typ == TypeFloat64) {
			if a.null || b.null {
				return compareNulls(a.null, b.null)
			}
			return compareFloat(a.AsFloat(), b.AsFloat())
		}
		panic(fmt.Sprintf("storage: Compare(%s, %s): mismatched types", a.typ, b.typ))
	}
	if a.null || b.null {
		return compareNulls(a.null, b.null)
	}
	switch a.typ {
	case TypeInt64:
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		}
		return 0
	case TypeFloat64:
		return compareFloat(a.f, b.f)
	case TypeString:
		switch {
		case a.s < b.s:
			return -1
		case a.s > b.s:
			return 1
		}
		return 0
	case TypeBool:
		switch {
		case !a.b && b.b:
			return -1
		case a.b && !b.b:
			return 1
		}
		return 0
	default:
		panic("storage: Compare on invalid type")
	}
}

func compareNulls(an, bn bool) int {
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	default:
		return 1
	}
}

func compareFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports whether two values compare equal. NULL is not equal to
// anything, including NULL, mirroring SQL three-valued logic for equality
// predicates.
func Equal(a, b Value) bool {
	if a.null || b.null {
		return false
	}
	return Compare(a, b) == 0
}
