package storage

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	cases := []struct {
		typ  Type
		want string
	}{
		{TypeInt64, "BIGINT"},
		{TypeFloat64, "DOUBLE"},
		{TypeString, "VARCHAR"},
		{TypeBool, "BOOLEAN"},
		{TypeInvalid, "INVALID"},
		{Type(99), "INVALID"},
	}
	for _, c := range cases {
		if got := c.typ.String(); got != c.want {
			t.Errorf("Type(%d).String() = %q, want %q", c.typ, got, c.want)
		}
	}
}

func TestTypeValid(t *testing.T) {
	for _, typ := range []Type{TypeInt64, TypeFloat64, TypeString, TypeBool} {
		if !typ.Valid() {
			t.Errorf("%s should be valid", typ)
		}
	}
	if TypeInvalid.Valid() || Type(42).Valid() {
		t.Error("invalid types reported valid")
	}
}

func TestTypeWidth(t *testing.T) {
	if TypeInt64.Width() != 8 || TypeFloat64.Width() != 8 {
		t.Error("numeric widths should be 8")
	}
	if TypeBool.Width() != 1 {
		t.Error("bool width should be 1")
	}
	if TypeString.Width() <= 0 {
		t.Error("string width should be positive")
	}
	if TypeInvalid.Width() != 0 {
		t.Error("invalid width should be 0")
	}
}

func TestValueConstructorsAndAccessors(t *testing.T) {
	iv := Int64(42)
	if iv.Type() != TypeInt64 || iv.IsNull() || iv.Int() != 42 {
		t.Errorf("Int64 round-trip failed: %v", iv)
	}
	fv := Float64(2.5)
	if fv.Type() != TypeFloat64 || fv.Float() != 2.5 {
		t.Errorf("Float64 round-trip failed: %v", fv)
	}
	sv := String64("abc")
	if sv.Type() != TypeString || sv.Str() != "abc" {
		t.Errorf("String64 round-trip failed: %v", sv)
	}
	bv := Bool(true)
	if bv.Type() != TypeBool || !bv.BoolVal() {
		t.Errorf("Bool round-trip failed: %v", bv)
	}
	nv := Null(TypeInt64)
	if !nv.IsNull() || nv.Type() != TypeInt64 {
		t.Errorf("Null round-trip failed: %v", nv)
	}
}

func TestValueAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Int on string", func() { String64("x").Int() })
	mustPanic("Float on int", func() { Int64(1).Float() })
	mustPanic("Str on int", func() { Int64(1).Str() })
	mustPanic("BoolVal on int", func() { Int64(1).BoolVal() })
	mustPanic("Int on null", func() { Null(TypeInt64).Int() })
	mustPanic("AsFloat on string", func() { String64("x").AsFloat() })
}

func TestAsFloat(t *testing.T) {
	if Int64(3).AsFloat() != 3.0 {
		t.Error("AsFloat(Int64(3)) != 3.0")
	}
	if Float64(1.5).AsFloat() != 1.5 {
		t.Error("AsFloat(Float64(1.5)) != 1.5")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int64(-7), "-7"},
		{Float64(0.5), "0.5"},
		{String64("hi"), `"hi"`},
		{Bool(true), "TRUE"},
		{Bool(false), "FALSE"},
		{Null(TypeInt64), "NULL"},
		{Value{}, "<invalid>"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCompareInts(t *testing.T) {
	if Compare(Int64(1), Int64(2)) >= 0 {
		t.Error("1 < 2 failed")
	}
	if Compare(Int64(2), Int64(1)) <= 0 {
		t.Error("2 > 1 failed")
	}
	if Compare(Int64(5), Int64(5)) != 0 {
		t.Error("5 == 5 failed")
	}
}

func TestCompareStringsAndBools(t *testing.T) {
	if Compare(String64("a"), String64("b")) >= 0 {
		t.Error(`"a" < "b" failed`)
	}
	if Compare(String64("b"), String64("a")) <= 0 {
		t.Error(`"b" > "a" failed`)
	}
	if Compare(String64("x"), String64("x")) != 0 {
		t.Error(`"x" == "x" failed`)
	}
	if Compare(Bool(false), Bool(true)) >= 0 {
		t.Error("false < true failed")
	}
	if Compare(Bool(true), Bool(false)) <= 0 {
		t.Error("true > false failed")
	}
	if Compare(Bool(true), Bool(true)) != 0 {
		t.Error("true == true failed")
	}
}

func TestCompareNulls(t *testing.T) {
	n := Null(TypeInt64)
	if Compare(n, Int64(0)) >= 0 {
		t.Error("NULL should sort before non-null")
	}
	if Compare(Int64(0), n) <= 0 {
		t.Error("non-null should sort after NULL")
	}
	if Compare(n, Null(TypeInt64)) != 0 {
		t.Error("NULL should compare equal to NULL for sorting")
	}
}

func TestCompareNumericCrossType(t *testing.T) {
	if Compare(Int64(1), Float64(1.5)) >= 0 {
		t.Error("1 < 1.5 failed across types")
	}
	if Compare(Float64(2.5), Int64(2)) <= 0 {
		t.Error("2.5 > 2 failed across types")
	}
	if Compare(Int64(3), Float64(3.0)) != 0 {
		t.Error("3 == 3.0 failed across types")
	}
	if Compare(Null(TypeInt64), Float64(1)) >= 0 {
		t.Error("NULL int vs float should sort first")
	}
}

func TestCompareMismatchedTypesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on string vs int compare")
		}
	}()
	Compare(String64("a"), Int64(1))
}

func TestEqualNullSemantics(t *testing.T) {
	if Equal(Null(TypeInt64), Null(TypeInt64)) {
		t.Error("NULL = NULL must be false (SQL semantics)")
	}
	if Equal(Null(TypeInt64), Int64(1)) || Equal(Int64(1), Null(TypeInt64)) {
		t.Error("NULL = x must be false")
	}
	if !Equal(Int64(4), Int64(4)) {
		t.Error("4 = 4 must be true")
	}
}

func TestKeyDistinguishesTypesAndValues(t *testing.T) {
	vals := []Value{
		Int64(1), Int64(2), Float64(1), String64("1"), Bool(true), Bool(false),
		Null(TypeInt64), String64(""),
	}
	seen := make(map[string]Value)
	for _, v := range vals {
		k := v.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("Key collision between %v and %v", prev, v)
		}
		seen[k] = v
	}
}

func TestKeyNegativeZero(t *testing.T) {
	if Float64(0.0).Key() != Float64(math.Copysign(0, -1)).Key() {
		t.Error("0.0 and -0.0 must share a key (they compare equal)")
	}
}

// Property: Key agreement matches Compare equality for int values.
func TestKeyMatchesCompareProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int64(a), Int64(b)
		return (va.Key() == vb.Key()) == (Compare(va, vb) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric and reflexive on int64.
func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int64(a), Int64(b)
		return Compare(va, vb) == -Compare(vb, va) && Compare(va, va) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is transitive on triples of int64.
func TestCompareTransitivityProperty(t *testing.T) {
	f := func(a, b, c int64) bool {
		va, vb, vc := Int64(a), Int64(b), Int64(c)
		if Compare(va, vb) <= 0 && Compare(vb, vc) <= 0 {
			return Compare(va, vc) <= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
