package els

import (
	"math"
	"testing"
)

// End-to-end OR support (the paper's "queries involving disjunctions"
// future work): parse, estimate, plan and execute a query whose WHERE
// clause mixes a conjunction with an OR-group.
func TestQueryWithDisjunction(t *testing.T) {
	sys := New()
	var rows [][]int64
	// 100 rows: k cycles 0..9, v = i.
	for i := int64(0); i < 100; i++ {
		rows = append(rows, []int64{i % 10, i})
	}
	if err := sys.LoadTable("T", []string{"k", "v"}, rows); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query("SELECT COUNT(*) FROM T WHERE (k = 1 OR k = 2) AND v < 50", AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	// k=1 or k=2 keeps 20 rows, half have v < 50.
	if res.Count != 10 {
		t.Errorf("count = %d, want 10", res.Count)
	}
	// The estimate should be in the right ballpark: 100 × (1-(0.9)²) × 0.5 = 9.5.
	est := res.Estimate.FinalSize
	if math.Abs(est-9.5) > 0.6 {
		t.Errorf("estimate = %g, want ≈9.5", est)
	}
}

func TestQueryDisjunctionWithJoin(t *testing.T) {
	sys := New()
	var a, b [][]int64
	for i := int64(0); i < 60; i++ {
		a = append(a, []int64{i % 6, i})
	}
	for i := int64(0); i < 30; i++ {
		b = append(b, []int64{i % 6, i})
	}
	if err := sys.LoadTable("A", []string{"k", "v"}, a); err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadTable("B", []string{"k", "w"}, b); err != nil {
		t.Fatal(err)
	}
	sql := "SELECT COUNT(*) FROM A, B WHERE A.k = B.k AND (A.v = 0 OR A.v = 6)"
	// Brute truth: A rows with v∈{0,6} are two rows with k=0; B has 5 rows
	// with k=0 → 10.
	for _, algo := range []Algorithm{AlgorithmELS, AlgorithmSM, AlgorithmSSS} {
		res, err := sys.Query(sql, algo)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if res.Count != 10 {
			t.Errorf("%s count = %d, want 10", algo, res.Count)
		}
	}
	// Estimation-only path also works.
	est, err := sys.Estimate(sql, AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if est.FinalSize <= 0 {
		t.Errorf("estimate = %g", est.FinalSize)
	}
}

func TestEstimateDisjunctionReducesCard(t *testing.T) {
	sys := New()
	sys.MustDeclareStats("R", 1000, map[string]float64{"x": 10})
	with, err := sys.Estimate("SELECT COUNT(*) FROM R WHERE x = 1 OR x = 2", AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	// 1000 × (1 − 0.9²) = 190.
	if math.Abs(with.FinalSize-190) > 1e-9 {
		t.Errorf("OR estimate = %g, want 190", with.FinalSize)
	}
	without, _ := sys.Estimate("SELECT COUNT(*) FROM R", AlgorithmELS)
	if without.FinalSize != 1000 {
		t.Errorf("baseline = %g", without.FinalSize)
	}
}
