package els

import (
	"strings"
	"testing"
)

// Building an index grows the optimizer repertoire with index
// nested-loops, which slashes the work of join execution.
func TestBuildIndexEnablesIndexJoin(t *testing.T) {
	// A selective join: a small outer probing a large inner on a
	// high-cardinality key, where per-probe index lookups beat sorting the
	// whole inner.
	mkSys := func() *System {
		sys := New()
		var a, b [][]int64
		for i := int64(0); i < 50; i++ {
			a = append(a, []int64{(i * 37) % 1000})
		}
		for i := int64(0); i < 2000; i++ {
			b = append(b, []int64{i % 1000})
		}
		if err := sys.LoadTable("A", []string{"k"}, a); err != nil {
			t.Fatal(err)
		}
		if err := sys.LoadTable("B", []string{"k"}, b); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	sql := "SELECT COUNT(*) FROM A, B WHERE A.k = B.k"

	plain := mkSys()
	resPlain, err := plain.Query(sql, AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	indexed := mkSys()
	if err := indexed.BuildIndex("B", "k"); err != nil {
		t.Fatal(err)
	}
	resIdx, err := indexed.Query(sql, AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if resIdx.Count != resPlain.Count {
		t.Fatalf("counts differ: %d vs %d", resIdx.Count, resPlain.Count)
	}
	if !strings.Contains(strings.Join(resIdx.Estimate.JoinMethods, ","), "IDXNL") {
		t.Errorf("indexed plan should use IDXNL: %v", resIdx.Estimate.JoinMethods)
	}
	if resIdx.TuplesScanned >= resPlain.TuplesScanned {
		t.Errorf("indexed work %d should be below plain %d", resIdx.TuplesScanned, resPlain.TuplesScanned)
	}
	// BuildIndex on a stats-only table fails.
	statsOnly := New()
	statsOnly.MustDeclareStats("Q", 10, map[string]float64{"x": 5})
	if err := statsOnly.BuildIndex("Q", "x"); err == nil {
		t.Error("indexing a table without data should error")
	}
}

func TestLoadCSVPublicAPI(t *testing.T) {
	sys := New()
	csv := "k,v\n1,10\n2,20\n2,30\n"
	if err := sys.LoadCSVReader("T", strings.NewReader(csv), true, 4); err != nil {
		t.Fatal(err)
	}
	card, err := sys.TableCard("T")
	if err != nil || card != 3 {
		t.Errorf("card = %g, err %v", card, err)
	}
	d, _ := sys.ColumnDistinct("T", "k")
	if d != 2 {
		t.Errorf("distinct k = %g", d)
	}
	res, err := sys.Query("SELECT COUNT(*) FROM T WHERE k = 2", AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 2 {
		t.Errorf("count = %d", res.Count)
	}
	// Missing file path errors cleanly.
	if err := sys.LoadCSV("X", "/nonexistent/x.csv", true, 0); err == nil {
		t.Error("missing file should error")
	}
	cols, err := sys.TableColumns("T")
	if err != nil || len(cols) != 2 || cols[0] != "k" {
		t.Errorf("TableColumns = %v, %v", cols, err)
	}
	if _, err := sys.TableColumns("nope"); err == nil {
		t.Error("unknown table should error")
	}
}

func TestFormatAnalyze(t *testing.T) {
	sys := New()
	var rows [][]int64
	for i := int64(0); i < 20; i++ {
		rows = append(rows, []int64{i % 4})
	}
	if err := sys.LoadTable("A", []string{"k"}, rows); err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadTable("B", []string{"k"}, rows); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query("SELECT COUNT(*) FROM A, B WHERE A.k = B.k", AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) == 0 {
		t.Fatal("Nodes should be populated")
	}
	out := res.FormatAnalyze()
	if !strings.Contains(out, "est=") || !strings.Contains(out, "actual=") {
		t.Errorf("FormatAnalyze output:\n%s", out)
	}
	if res.Nodes[0].ActualRows != res.Count {
		t.Errorf("root actual %d != count %d", res.Nodes[0].ActualRows, res.Count)
	}
}
