package els

import (
	"math"
	"testing"
)

// AlgorithmELSHist uses histograms to relax the uniformity assumption for
// join columns: on skewed data its estimate must beat plain ELS; on tables
// without histograms it must fall back to the plain ELS estimate.
func TestAlgorithmELSHist(t *testing.T) {
	sys := New()
	// Two skewed tables: 90% of the join key mass on value 0.
	mk := func(n int) [][]int64 {
		rows := make([][]int64, n)
		for i := range rows {
			v := int64(0)
			if i%10 == 9 {
				v = int64(1 + i%50)
			}
			rows[i] = []int64{v}
		}
		return rows
	}
	if err := sys.LoadTableHist("A", []string{"k"}, mk(1000), 32); err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadTableHist("B", []string{"k"}, mk(600), 32); err != nil {
		t.Fatal(err)
	}
	sql := "SELECT COUNT(*) FROM A, B WHERE A.k = B.k"
	truth, err := sys.Query(sql, AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := sys.Estimate(sql, AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := sys.Estimate(sql, AlgorithmELSHist)
	if err != nil {
		t.Fatal(err)
	}
	tc := float64(truth.Count)
	qe := func(est float64) float64 { return math.Max(est/tc, tc/est) }
	if qe(hist.FinalSize) >= qe(plain.FinalSize) {
		t.Errorf("hist q-error %.3f should beat plain %.3f (truth %g, hist %g, plain %g)",
			qe(hist.FinalSize), qe(plain.FinalSize), tc, hist.FinalSize, plain.FinalSize)
	}
	if qe(hist.FinalSize) > 1.5 {
		t.Errorf("hist estimate %g too far from truth %g", hist.FinalSize, tc)
	}

	// Without histograms the two algorithms agree (graceful fallback).
	sys2 := New()
	sys2.MustDeclareStats("A", 1000, map[string]float64{"k": 50})
	sys2.MustDeclareStats("B", 600, map[string]float64{"k": 50})
	p2, err := sys2.Estimate(sql, AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := sys2.Estimate(sql, AlgorithmELSHist)
	if err != nil {
		t.Fatal(err)
	}
	if p2.FinalSize != h2.FinalSize {
		t.Errorf("without histograms, ELS+hist (%g) must equal ELS (%g)", h2.FinalSize, p2.FinalSize)
	}
}
