// Endtoend reproduces the paper's Section 8 experiment through the public
// API: generate the S/M/B/G tables, plan the experiment query under every
// algorithm, execute each chosen plan, and compare estimates, work and wall
// time. It also runs the full experiment harness to print the paper-style
// table.
//
// Run with: go run ./examples/endtoend [-scale 10]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	els "repro"
	"repro/internal/experiment"
)

func main() {
	scale := flag.Int("scale", 10, "divide the paper's table sizes by this factor (1 = full size)")
	flag.Parse()

	// --- Through the public API: generate, estimate, execute. -------------
	sys := els.New()
	sizes := map[string]int{"S": 1000, "M": 10000, "B": 50000, "G": 100000}
	cols := map[string]string{"S": "s", "M": "m", "B": "b", "G": "g"}
	seed := int64(1)
	for _, name := range []string{"S", "M", "B", "G"} {
		rows := sizes[name] / *scale
		if err := sys.GenerateTable(name, cols[name], "permutation", rows, rows, 0, seed); err != nil {
			log.Fatal(err)
		}
		seed++
	}
	cut := 100 / *scale
	sql := fmt.Sprintf(
		"SELECT COUNT(*) FROM S, M, B, G WHERE s = m AND m = b AND b = g AND s < %d", cut)

	fmt.Printf("query: %s (correct count: %d)\n\n", sql, cut)
	results, err := sys.CompareAlgorithms(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s %-10s %-28s %8s %12s %10s\n",
		"algo", "order", "estimated sizes", "count", "tuples", "elapsed")
	for _, r := range results {
		steps := make([]string, len(r.Estimate.Steps))
		for i, s := range r.Estimate.Steps {
			steps[i] = fmt.Sprintf("%.3g", s.Size)
		}
		fmt.Printf("%-8s %-10s %-28s %8d %12d %10s\n",
			r.Estimate.Algorithm, strings.Join(r.Estimate.JoinOrder, "⋈"),
			"("+strings.Join(steps, ", ")+")",
			r.Count, r.TuplesScanned, r.Elapsed.Round(100_000))
	}

	// --- Through the experiment harness: the paper-style table. ----------
	fmt.Println()
	res, err := experiment.RunSection8(experiment.Section8Options{Scale: *scale, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiment.FormatSection8(res))

	els8 := res.Rows[3]
	worst := res.Rows[0]
	for _, r := range res.Rows[:3] {
		if r.Stats.Elapsed > worst.Stats.Elapsed {
			worst = r
		}
	}
	fmt.Printf("\nELS plan ran %.1fx faster than the slowest baseline (%s / %s).\n",
		float64(worst.Stats.Elapsed)/float64(els8.Stats.Elapsed), worst.Query, worst.Algorithm)
}
