// Chainjoin walks through the paper's worked Examples 1b, 2 and 3 plus the
// representative-selectivity argument of Section 3.3: the same three-table
// chain query estimated under every selectivity-choice rule, against the
// Equation 3 ground truth.
//
// Run with: go run ./examples/chainjoin
package main

import (
	"fmt"
	"log"

	els "repro"
)

func main() {
	sys := els.New()
	sys.MustDeclareStats("R1", 100, map[string]float64{"x": 10})
	sys.MustDeclareStats("R2", 1000, map[string]float64{"y": 100})
	sys.MustDeclareStats("R3", 1000, map[string]float64{"z": 1000})

	sql := "SELECT COUNT(*) FROM R1, R2, R3 WHERE R1.x = R2.y AND R2.y = R3.z"
	order := []string{"R2", "R3", "R1"} // the order used by Examples 2 and 3

	fmt.Println("Chain query:", sql)
	fmt.Println("Join order R2 ⋈ R3 ⋈ R1; the correct result size is 1000 (Equation 3).")
	fmt.Println()
	fmt.Printf("%-16s %14s %s\n", "algorithm", "estimate", "per-step sizes")

	for _, algo := range els.Algorithms() {
		est, err := sys.EstimateOrder(sql, algo, order)
		if err != nil {
			log.Fatal(err)
		}
		var steps []float64
		for _, s := range est.Steps {
			steps = append(steps, s.Size)
		}
		note := ""
		switch algo {
		case els.AlgorithmSMPTC:
			note = "   <- Example 2: Rule M multiplies dependent selectivities"
		case els.AlgorithmSSS:
			note = "   <- Example 3: Rule SS picks the most restrictive, still wrong"
		case els.AlgorithmELS:
			note = "   <- Rule LS: largest selectivity per class, exact"
		case els.AlgorithmRepSmallest, els.AlgorithmRepLargest:
			note = "   <- Section 3.3: no representative value can be right"
		}
		fmt.Printf("%-16s %14g %v%s\n", algo, est.FinalSize, steps, note)
	}

	fmt.Println()
	fmt.Println("Step detail under ELS (the group with J1 and J3 chooses the LARGEST selectivity):")
	est, err := sys.EstimateOrder(sql, els.AlgorithmELS, order)
	if err != nil {
		log.Fatal(err)
	}
	for i, s := range est.Steps {
		fmt.Printf("  step %d: join %s -> size %g (selectivity %g, eligible: %v)\n",
			i+1, s.Table, s.Size, s.Selectivity, s.EligiblePredicates)
	}
}
