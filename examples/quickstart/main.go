// Quickstart: declare table statistics, estimate a join query's result
// size with Algorithm ELS, and inspect the optimizer's explanation.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	els "repro"
)

func main() {
	sys := els.New()

	// The statistics of the paper's Example 1b: three tables joined on a
	// single equivalence class of columns.
	//   ‖R1‖ = 100,  d_x = 10
	//   ‖R2‖ = 1000, d_y = 100
	//   ‖R3‖ = 1000, d_z = 1000
	sys.MustDeclareStats("R1", 100, map[string]float64{"x": 10})
	sys.MustDeclareStats("R2", 1000, map[string]float64{"y": 100})
	sys.MustDeclareStats("R3", 1000, map[string]float64{"z": 1000})

	// Unqualified columns are resolved against the FROM tables, exactly as
	// the paper writes its queries.
	sql := "SELECT COUNT(*) FROM R1, R2, R3 WHERE x = y AND y = z"

	est, err := sys.Estimate(sql, els.AlgorithmELS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\n", sql)
	fmt.Printf("estimated result size (ELS): %g rows\n", est.FinalSize)
	fmt.Printf("join order: %v, methods: %v\n\n", est.JoinOrder, est.JoinMethods)

	// The transitive closure derived the implied predicate R1.x = R3.z,
	// which is why the optimizer may start with any table pair.
	fmt.Println("implied predicates:", est.ImpliedPredicates)
	fmt.Println()

	out, err := sys.Explain(sql, els.AlgorithmELS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)

	// The same query estimated with the classic multiplicative rule after
	// transitive closure collapses to 1 row — the paper's Example 2.
	bad, err := sys.EstimateOrder(sql, els.AlgorithmSMPTC, []string{"R2", "R3", "R1"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the multiplicative rule along R2,R3,R1 estimates %g rows (correct: 1000)\n", bad.FinalSize)
}
