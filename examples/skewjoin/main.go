// Skewjoin demonstrates the two headline beyond-paper extensions on
// Zipf-distributed data: histogram-based join selectivities (relaxing the
// uniformity assumption, the paper's Section 9 future work) and per-node
// EXPLAIN ANALYZE output comparing estimated with actual cardinalities.
// It finishes with a GROUP BY aggregate whose group-count estimate comes
// from the effective column cardinalities Algorithm ELS maintains.
//
// Run with: go run ./examples/skewjoin
package main

import (
	"fmt"
	"log"

	els "repro"
)

func main() {
	// Two tables with heavily skewed join keys (Zipf, theta = 1.0): a few
	// hot keys carry most of the mass, so the uniformity assumption
	// drastically underestimates the join size. Both are loaded with
	// 64-bucket equi-depth histograms so AlgorithmELSHist can see the skew.
	sys := els.New()
	if err := loadZipf(sys, "orders", 4000, 300, 1.0, 11); err != nil {
		log.Fatal(err)
	}
	if err := loadZipf(sys, "clicks", 9000, 300, 1.0, 22); err != nil {
		log.Fatal(err)
	}
	sql := "SELECT COUNT(*) FROM orders, clicks WHERE orders.cust = clicks.cust"

	truth, err := sys.Query(sql, els.AlgorithmELS)
	if err != nil {
		log.Fatal(err)
	}
	plain, err := sys.Estimate(sql, els.AlgorithmELS)
	if err != nil {
		log.Fatal(err)
	}
	hist, err := sys.Estimate(sql, els.AlgorithmELSHist)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("true join size:        %d rows\n", truth.Count)
	fmt.Printf("ELS (uniformity):      %.0f rows  (%.1fx off)\n",
		plain.FinalSize, ratio(plain.FinalSize, float64(truth.Count)))
	fmt.Printf("ELS+hist (64 buckets): %.0f rows  (%.2fx off)\n\n",
		hist.FinalSize, ratio(hist.FinalSize, float64(truth.Count)))

	fmt.Println("EXPLAIN ANALYZE under plain ELS (estimated vs actual per node):")
	fmt.Print(truth.FormatAnalyze())
	fmt.Println()

	// GROUP BY: the group-count estimate is the effective d′ of the
	// grouping column — the statistic Algorithm ELS maintains per table.
	res, err := sys.Query(
		"SELECT orders.cust, COUNT(*) FROM orders, clicks WHERE orders.cust = clicks.cust GROUP BY orders.cust",
		els.AlgorithmELSHist)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GROUP BY cust: %d groups (estimated %.0f)\n", res.Count, res.Estimate.GroupEstimate)
	fmt.Println("first groups (key order):")
	for i := 0; i < 3 && i < len(res.Rows); i++ {
		fmt.Printf("  cust=%s count=%s\n", res.Rows[i][0], res.Rows[i][1])
	}
}

// loadZipf materializes a Zipf(theta) column of n rows over the given
// domain into sys under name, analyzed with 64-bucket equi-depth
// histograms. It goes through a scratch system's GROUP BY to obtain the
// exact value frequencies, then expands them into LoadTableHist — the
// library path a real user with external data would take via LoadCSV.
func loadZipf(sys *els.System, name string, n, domain int, theta float64, seed int64) error {
	tmp := els.New()
	if err := tmp.GenerateTable(name, "cust", "zipf", n, domain, theta, seed); err != nil {
		return err
	}
	res, err := tmp.Query("SELECT cust, COUNT(*) FROM "+name+" GROUP BY cust", els.AlgorithmELS)
	if err != nil {
		return err
	}
	var rows [][]int64
	for _, r := range res.Rows {
		var v, c int64
		fmt.Sscanf(r[0], "%d", &v)
		fmt.Sscanf(r[1], "%d", &c)
		for i := int64(0); i < c; i++ {
			rows = append(rows, []int64{v})
		}
	}
	return sys.LoadTableHist(name, []string{"cust"}, rows, 64)
}

func ratio(a, b float64) float64 {
	if a > b {
		return a / b
	}
	return b / a
}
