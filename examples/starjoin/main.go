// Starjoin demonstrates the Section 5 and Section 6 machinery on a star
// schema: local predicates on dimension join columns fold into effective
// table and column cardinalities before any join selectivity is computed,
// and a fact table whose two join columns land in one equivalence class
// triggers the single-table j-equivalence reduction.
//
// Run with: go run ./examples/starjoin
package main

import (
	"fmt"
	"log"

	els "repro"
)

func main() {
	sys := els.New()

	// A fact table with two dimension keys. The dimensions' key columns
	// have MORE distinct values than the fact's foreign keys (think: the
	// dimension master lists entities the fact table never references).
	sys.MustDeclareStats("fact", 1_000_000, map[string]float64{
		"cust_key": 10_000,
		"item_key": 5_000,
	})
	sys.MustDeclareStats("customer", 50_000, map[string]float64{"ckey": 50_000})
	sys.MustDeclareStats("item", 20_000, map[string]float64{"ikey": 20_000})

	// Range predicates on the dimension JOIN columns. Section 5: the
	// predicate reduces both ‖customer‖ and d(ckey); with d′(ckey) = 5000
	// falling below d(cust_key) = 10000, the join selectivity changes from
	// 1/50000 to 1/10000. The standard algorithm keeps the raw d(ckey) and
	// underestimates 20x.
	sql := `SELECT COUNT(*) FROM fact, customer, item
	        WHERE fact.cust_key = customer.ckey
	          AND fact.item_key = item.ikey
	          AND customer.ckey < 5000
	          AND item.ikey < 1000`

	fmt.Println("Star query with range predicates on the dimension join columns.")
	fmt.Println("Under nested integer domains the true count is 1000000 × (5000/10000) × (1000/5000) = 100000.")
	fmt.Println()
	for _, algo := range []els.Algorithm{els.AlgorithmELS, els.AlgorithmSM} {
		est, err := sys.Estimate(sql, algo)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s estimate %14.0f rows  (order %v)\n", algo, est.FinalSize, est.JoinOrder)
	}
	fmt.Println()
	fmt.Println("ELS folds ckey<5000 into ‖customer‖′ = 5000 AND d′(ckey) = 5000, so")
	fmt.Println("S_J = 1/max(10000, 5000); the standard algorithm uses the raw 1/50000.")
	fmt.Println()

	// Section 6: two fact columns joined to the SAME dimension column become
	// j-equivalent; transitive closure implies the fact-local predicate
	// (fact.cust_key = fact.item_key), which divides ‖fact‖ by the larger
	// column cardinality and joins on the urn-reduced smaller one.
	sys2 := els.New()
	sys2.MustDeclareStats("fact", 1_000_000, map[string]float64{
		"cust_key": 50_000,
		"item_key": 50_000,
	})
	sys2.MustDeclareStats("customer", 50_000, map[string]float64{"ckey": 10_000})
	sql2 := `SELECT COUNT(*) FROM fact, customer
	         WHERE fact.cust_key = customer.ckey
	           AND fact.item_key = customer.ckey`
	fmt.Println("Two fact columns joined to one dimension key (Section 6):")
	est, err := sys2.Estimate(sql2, els.AlgorithmELS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  implied predicates: %v\n", est.ImpliedPredicates)
	fmt.Printf("  ELS estimate: %.0f rows\n", est.FinalSize)
	fmt.Println("  (‖fact‖′ = ⌈1000000/50000⌉ = 20 rows, effective d = urn(50000, 20) = 20,")
	fmt.Println("   then 20 × 50000 / max(20, 10000) = 100)")

	smEst, err := sys2.Estimate(sql2, els.AlgorithmSM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  standard multiplicative estimate: %.0f rows\n", smEst.FinalSize)
	fmt.Println("  (multiplies both dependent selectivities: 10^6 × 50000 / 50000² = 20, a 5x underestimate)")
}
