package driver

import (
	"database/sql"
	"fmt"
	"os"
	"strings"
	"testing"
)

// TestDriverLiveServer drives an externally started elsserve — the CI
// server-smoke job builds the binary with -race, starts it with three
// tenants on a durable data dir, and runs this test against it before and
// after a SIGTERM drain/restart cycle. It skips unless ELS_SMOKE_ADDR is
// set, so the normal test run is self-contained.
//
// First pass (ELS_SMOKE_EXPECT_STATS unset): declare tenant-distinct
// statistics through the driver and read them back. Second pass (set):
// declare nothing and assert the first pass's stats survived the drain
// checkpoint and recovery — an acknowledged mutation crossed the restart.
// The cardinalities are tenant-banded, so a cross-tenant mixup shows up
// as a wrong estimate, not just a missing one.
func TestDriverLiveServer(t *testing.T) {
	addr := os.Getenv("ELS_SMOKE_ADDR")
	if addr == "" {
		t.Skip("ELS_SMOKE_ADDR not set; this test drives an external elsserve")
	}
	tenantList := os.Getenv("ELS_SMOKE_TENANTS")
	if tenantList == "" {
		tenantList = "alpha,beta,gamma"
	}
	expectRecovered := os.Getenv("ELS_SMOKE_EXPECT_STATS") != ""

	for i, tenant := range strings.Split(tenantList, ",") {
		want := float64(10000 * (i + 1))
		db, err := sql.Open("els", fmt.Sprintf("els://%s/%s?timeout=5s&retries=3", addr, tenant))
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Ping(); err != nil {
			t.Fatalf("tenant %s: ping: %v", tenant, err)
		}
		if !expectRecovered {
			res, err := db.Exec(fmt.Sprintf("DECLARE STATS SMOKE %d k=100", int64(want)))
			if err != nil {
				t.Fatalf("tenant %s: declare: %v", tenant, err)
			}
			if v, err := res.LastInsertId(); err != nil || v == 0 {
				t.Fatalf("tenant %s: declare acked version %d, %v", tenant, v, err)
			}
		}
		var algo, joinOrder string
		var size float64
		var version int64
		err = db.QueryRow("ESTIMATE SELECT COUNT(*) FROM SMOKE").
			Scan(&algo, &size, &version, &joinOrder)
		if err != nil {
			t.Fatalf("tenant %s: estimate (recovered=%v): %v", tenant, expectRecovered, err)
		}
		if size != want {
			t.Errorf("tenant %s: estimate = %g, want %g (recovered=%v)", tenant, size, want, expectRecovered)
		}
		if err := db.Close(); err != nil {
			t.Errorf("tenant %s: close: %v", tenant, err)
		}
	}
}
