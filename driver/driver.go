// Package driver is a database/sql driver for elsserve, the networked
// multi-tenant estimation server. Register is implicit:
//
//	import _ "repro/driver"
//	db, err := sql.Open("els", "els://127.0.0.1:7447/acme?timeout=5s&retries=3")
//
// # DSN
//
// els://host:port/tenant[?options] — the path selects the tenant, and
// the options bound the client side of the bulkhead:
//
//	timeout=30s   per-statement deadline when the caller's context has
//	              none; propagated to the server so its admission queue,
//	              planner, and executor run under the same budget
//	algo=els      estimation algorithm for queries/estimates/explains
//	retries=0     extra attempts for failures els.Retryable reports
//	              (overload sheds, transient internal errors, stale
//	              replicas), honoring the server's Retry-After hint
//
// # Statement dialect
//
// The server estimates and executes the repo's SELECT dialect; the
// driver adds three prefixes of its own:
//
//	SELECT ...                      executed query (rows, or one count row)
//	ESTIMATE SELECT ...             estimate only — one row: algorithm,
//	                                final_size, catalog_version, join_order
//	EXPLAIN SELECT ...              one row, one column: the plan text
//	DECLARE STATS t 1000 a=10,b=25  Exec: declare table statistics
//
// Placeholders are not supported (the dialect has no parameters); any
// bind args fail with a typed parse error.
//
// # Typed errors
//
// Every server-side failure surfaces as an error for which errors.Is
// against the els taxonomy sentinels holds (els.ErrOverloaded,
// els.ErrParse, els.ErrTenant, ...), exactly as if the call were
// in-process. Torn transport on a read-only statement maps to
// driver.ErrBadConn so database/sql retires the connection and retries
// on a fresh one; a torn DECLARE is NOT ErrBadConn — the mutation may
// have been applied, and blind replay would double-acknowledge — it
// surfaces as a typed wire error for the caller to reconcile by digest.
package driver

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"errors"
	"fmt"
	"io"
	"net/url"
	"strconv"
	"strings"
	"time"

	els "repro"
	"repro/internal/wire"
)

func init() {
	sql.Register("els", &Driver{})
}

// Driver implements database/sql/driver.Driver and DriverContext.
type Driver struct{}

// Open dials using the connector with no dial bound beyond the DSN's
// timeout (database/sql's context-less entry point).
func (d *Driver) Open(dsn string) (driver.Conn, error) {
	c, err := d.OpenConnector(dsn)
	if err != nil {
		return nil, err
	}
	return c.Connect(context.Background()) //ctxflow:allow database/sql Driver.Open has no context
}

// OpenConnector parses the DSN once; the pool dials through the
// connector with its own contexts.
func (d *Driver) OpenConnector(dsn string) (driver.Connector, error) {
	cfg, err := parseDSN(dsn)
	if err != nil {
		return nil, err
	}
	return &connector{cfg: cfg, drv: d}, nil
}

// config is one parsed DSN.
type config struct {
	addr    string
	tenant  string
	timeout time.Duration
	algo    string
	retries int
}

func parseDSN(dsn string) (config, error) {
	u, err := url.Parse(dsn)
	if err != nil {
		return config{}, fmt.Errorf("%w: parsing DSN: %w", els.ErrParse, err)
	}
	if u.Scheme != "els" {
		return config{}, fmt.Errorf("%w: DSN scheme must be els://, got %q", els.ErrParse, u.Scheme)
	}
	cfg := config{
		addr:    u.Host,
		tenant:  strings.Trim(u.Path, "/"),
		timeout: wire.DefaultOpTimeout,
	}
	if cfg.addr == "" {
		return config{}, fmt.Errorf("%w: DSN has no host:port", els.ErrParse)
	}
	if cfg.tenant == "" || strings.Contains(cfg.tenant, "/") {
		return config{}, fmt.Errorf("%w: DSN path must be exactly one tenant name", els.ErrParse)
	}
	q := u.Query()
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return config{}, fmt.Errorf("%w: bad timeout %q", els.ErrParse, v)
		}
		cfg.timeout = d
	}
	cfg.algo = q.Get("algo")
	if v := q.Get("retries"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return config{}, fmt.Errorf("%w: bad retries %q", els.ErrParse, v)
		}
		cfg.retries = n
	}
	return cfg, nil
}

type connector struct {
	cfg config
	drv *Driver
}

func (c *connector) Connect(ctx context.Context) (driver.Conn, error) {
	cl, err := wire.Dial(ctx, c.cfg.addr)
	if err != nil {
		return nil, err
	}
	cl.OpTimeout = c.cfg.timeout
	return &conn{cfg: c.cfg, cl: cl}, nil
}

func (c *connector) Driver() driver.Driver { return c.drv }

// conn is one wire connection. database/sql serializes calls per conn,
// matching the wire client's one-in-flight discipline.
type conn struct {
	cfg config
	cl  *wire.Client
}

func (c *conn) Close() error { return c.cl.Close() }

// Begin is required by driver.Conn; the server has no transactions.
func (c *conn) Begin() (driver.Tx, error) {
	return nil, fmt.Errorf("%w: transactions are not supported", els.ErrParse)
}

// IsValid keeps torn connections out of the pool.
func (c *conn) IsValid() bool { return !c.cl.Broken() }

// Ping round-trips a tenant-routed ping, so it also verifies the tenant
// exists and is not quarantined.
func (c *conn) Ping(ctx context.Context) error {
	_, err := c.do(ctx, &wire.Request{Op: wire.OpPing, Tenant: c.cfg.tenant}, true)
	return err
}

func (c *conn) Prepare(query string) (driver.Stmt, error) {
	return &stmt{c: c, query: query}, nil
}

func (c *conn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	if len(args) > 0 {
		return nil, fmt.Errorf("%w: the els dialect has no placeholders", els.ErrParse)
	}
	return c.query(ctx, query)
}

func (c *conn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	if len(args) > 0 {
		return nil, fmt.Errorf("%w: the els dialect has no placeholders", els.ErrParse)
	}
	return c.exec(ctx, query)
}

// query routes one read statement by its driver-level prefix.
func (c *conn) query(ctx context.Context, q string) (driver.Rows, error) {
	trimmed := strings.TrimSpace(q)
	upper := strings.ToUpper(trimmed)
	switch {
	case strings.HasPrefix(upper, "ESTIMATE"):
		resp, err := c.do(ctx, &wire.Request{
			Op: wire.OpEstimate, Tenant: c.cfg.tenant,
			SQL: strings.TrimSpace(trimmed[len("ESTIMATE"):]), Algo: c.cfg.algo,
		}, true)
		if err != nil {
			return nil, err
		}
		e := resp.Estimate
		return &rows{
			cols: []string{"algorithm", "final_size", "catalog_version", "join_order"},
			data: [][]driver.Value{{e.Algorithm, e.FinalSize, int64(e.CatalogVersion), strings.Join(e.JoinOrder, ",")}},
		}, nil
	case strings.HasPrefix(upper, "EXPLAIN"):
		resp, err := c.do(ctx, &wire.Request{
			Op: wire.OpExplain, Tenant: c.cfg.tenant,
			SQL: strings.TrimSpace(trimmed[len("EXPLAIN"):]), Algo: c.cfg.algo,
		}, true)
		if err != nil {
			return nil, err
		}
		return &rows{cols: []string{"plan"}, data: [][]driver.Value{{resp.Explain}}}, nil
	default:
		resp, err := c.do(ctx, &wire.Request{
			Op: wire.OpQuery, Tenant: c.cfg.tenant, SQL: trimmed, Algo: c.cfg.algo,
		}, true)
		if err != nil {
			return nil, err
		}
		res := resp.Result
		if len(res.Columns) == 0 {
			// A bare COUNT(*) query: surface the count as one row.
			return &rows{cols: []string{"count"}, data: [][]driver.Value{{res.Count}}}, nil
		}
		out := &rows{cols: res.Columns}
		for _, r := range res.Rows {
			vals := make([]driver.Value, len(r))
			for i, s := range r {
				vals[i] = s
			}
			out.data = append(out.data, vals)
		}
		return out, nil
	}
}

// exec handles DECLARE STATS — the one mutating statement.
func (c *conn) exec(ctx context.Context, q string) (driver.Result, error) {
	req, err := parseDeclare(q)
	if err != nil {
		return nil, err
	}
	req.Tenant = c.cfg.tenant
	resp, err := c.do(ctx, req, false)
	if err != nil {
		return nil, err
	}
	return declareResult{version: int64(resp.Version)}, nil
}

// parseDeclare parses `DECLARE STATS <table> <rows> [col=d,col=d,...]`.
func parseDeclare(q string) (*wire.Request, error) {
	fields := strings.Fields(q)
	if len(fields) < 4 || !strings.EqualFold(fields[0], "DECLARE") || !strings.EqualFold(fields[1], "STATS") {
		return nil, fmt.Errorf("%w: Exec accepts only DECLARE STATS <table> <rows> [col=distinct,...]", els.ErrParse)
	}
	rowsN, err := strconv.ParseFloat(fields[3], 64)
	if err != nil {
		return nil, fmt.Errorf("%w: bad row count %q", els.ErrParse, fields[3])
	}
	req := &wire.Request{Op: wire.OpDeclare, Table: fields[2], Rows: rowsN}
	if len(fields) > 4 {
		req.Distinct = make(map[string]float64)
		for _, part := range strings.Split(strings.Join(fields[4:], ""), ",") {
			col, val, ok := strings.Cut(part, "=")
			if !ok {
				return nil, fmt.Errorf("%w: bad column spec %q (want col=distinct)", els.ErrParse, part)
			}
			d, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: bad distinct count %q for column %q", els.ErrParse, val, col)
			}
			req.Distinct[col] = d
		}
	}
	return req, nil
}

// do performs one round trip with the configured retry budget. Retries
// fire only on failures els.Retryable reports — the same predicate as
// the in-process retry loop and the server's wire flag — waiting out the
// server's Retry-After hint between attempts. idempotent additionally
// maps torn transport to driver.ErrBadConn (pool-level retry on a fresh
// connection); mutations never take either retry path.
func (c *conn) do(ctx context.Context, req *wire.Request, idempotent bool) (*wire.Response, error) {
	retries := c.cfg.retries
	if !idempotent {
		retries = 0
	}
	for attempt := 0; ; attempt++ {
		resp, err := c.cl.Do(ctx, &wire.Request{
			Op: req.Op, Tenant: req.Tenant, SQL: req.SQL, Algo: req.Algo,
			Table: req.Table, Rows: req.Rows, Distinct: req.Distinct,
		})
		if err == nil {
			return resp, nil
		}
		if idempotent && errors.Is(err, els.ErrBadWire) {
			return nil, driver.ErrBadConn
		}
		var remote *wire.RemoteError
		//wirecover:retryvia
		if attempt >= retries || !errors.As(err, &remote) || !els.Retryable(err) {
			return nil, err
		}
		if werr := waitRetry(ctx, remote.RetryAfter()); werr != nil {
			return nil, werr
		}
	}
}

// waitRetry sleeps the server's hint (or a 1ms floor), aborting with the
// caller's cancellation.
func waitRetry(ctx context.Context, hint time.Duration) error {
	if hint <= 0 {
		hint = time.Millisecond
	}
	t := time.NewTimer(hint)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("%w: %w", els.ErrCanceled, ctx.Err())
	}
}

// stmt is a trivial prepared statement (the dialect has no parameters,
// so preparing is just remembering the text).
type stmt struct {
	c     *conn
	query string
}

func (s *stmt) Close() error  { return nil }
func (s *stmt) NumInput() int { return 0 }

func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	if len(args) > 0 {
		return nil, fmt.Errorf("%w: the els dialect has no placeholders", els.ErrParse)
	}
	return s.c.exec(context.Background(), s.query) //ctxflow:allow database/sql Stmt.Exec has no context
}

func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	if len(args) > 0 {
		return nil, fmt.Errorf("%w: the els dialect has no placeholders", els.ErrParse)
	}
	return s.c.query(context.Background(), s.query) //ctxflow:allow database/sql Stmt.Query has no context
}

func (s *stmt) ExecContext(ctx context.Context, args []driver.NamedValue) (driver.Result, error) {
	return s.c.ExecContext(ctx, s.query, args)
}

func (s *stmt) QueryContext(ctx context.Context, args []driver.NamedValue) (driver.Rows, error) {
	return s.c.QueryContext(ctx, s.query, args)
}

// declareResult acknowledges a DECLARE STATS: LastInsertId carries the
// acknowledged catalog version (fsynced before the server answered, on a
// durable tenant).
type declareResult struct{ version int64 }

func (r declareResult) LastInsertId() (int64, error) { return r.version, nil }
func (r declareResult) RowsAffected() (int64, error) { return 0, nil }

// rows is a fully materialized driver.Rows (the server caps row payloads
// via els.Limits.MaxRows, so materializing is bounded).
type rows struct {
	cols []string
	data [][]driver.Value
	next int
}

func (r *rows) Columns() []string { return r.cols }
func (r *rows) Close() error      { return nil }

func (r *rows) Next(dest []driver.Value) error {
	if r.next >= len(r.data) {
		return io.EOF
	}
	copy(dest, r.data[r.next])
	r.next++
	return nil
}
