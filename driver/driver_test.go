package driver

import (
	"context"
	"database/sql"
	"errors"
	"fmt"
	"testing"
	"time"

	els "repro"
	"repro/internal/server"
)

// startServer brings up a single-tenant in-memory server with demo data
// and returns a DSN for it.
func startServer(t *testing.T, tenant string, opts string) string {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	srv, err := server.Start(ctx, server.Config{
		Addr: "127.0.0.1:0",
		Tenants: []server.TenantConfig{{
			Name:   tenant,
			Limits: els.Limits{Timeout: 5 * time.Second, MaxConcurrent: 4, MaxRows: 100},
			Bootstrap: func(sys *els.System) error {
				rows := make([][]int64, 20)
				for i := range rows {
					rows[i] = []int64{int64(i % 5), int64(i % 3)}
				}
				return sys.LoadTable("R", []string{"a", "b"}, rows)
			},
		}},
	})
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer scancel()
		srv.Shutdown(sctx)
		cancel()
	})
	return fmt.Sprintf("els://%s/%s%s", srv.Addr(), tenant, opts)
}

func TestDriverQueryRoundTrip(t *testing.T) {
	db, err := sql.Open("els", startServer(t, "acme", "?timeout=5s"))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}

	// A COUNT query surfaces one count row.
	var count int64
	if err := db.QueryRow("SELECT COUNT(*) FROM R WHERE R.a = 1").Scan(&count); err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Errorf("count = %d, want 4", count)
	}

	// ESTIMATE surfaces the estimator's row.
	var algo, joinOrder string
	var size float64
	var version int64
	if err := db.QueryRow("ESTIMATE SELECT COUNT(*) FROM R").Scan(&algo, &size, &version, &joinOrder); err != nil {
		t.Fatal(err)
	}
	if size != 20 || version == 0 {
		t.Errorf("estimate = (%q, %g, v%d, %q), want size 20 at a real version", algo, size, version, joinOrder)
	}

	// EXPLAIN surfaces the plan text.
	var plan string
	if err := db.QueryRow("EXPLAIN SELECT COUNT(*) FROM R").Scan(&plan); err != nil {
		t.Fatal(err)
	}
	if plan == "" {
		t.Error("empty plan text")
	}
}

func TestDriverDeclareStats(t *testing.T) {
	db, err := sql.Open("els", startServer(t, "acme", ""))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	res, err := db.Exec("DECLARE STATS T 1000 a=10,b=25")
	if err != nil {
		t.Fatal(err)
	}
	version, err := res.LastInsertId()
	if err != nil || version == 0 {
		t.Fatalf("declare acknowledged version %d, %v", version, err)
	}

	var size float64
	var algo, joinOrder string
	var v int64
	if err := db.QueryRow("ESTIMATE SELECT COUNT(*) FROM T").Scan(&algo, &size, &v, &joinOrder); err != nil {
		t.Fatal(err)
	}
	if size != 1000 {
		t.Errorf("estimate over declared stats = %g, want 1000", size)
	}

	// Exec accepts nothing else.
	if _, err := db.Exec("DROP TABLE T"); !errors.Is(err, els.ErrParse) {
		t.Errorf("non-declare Exec = %v, want ErrParse", err)
	}
}

// Server-side failures surface as errors classifiable with errors.Is
// against the public els sentinels, exactly as in-process.
func TestDriverTypedErrors(t *testing.T) {
	db, err := sql.Open("els", startServer(t, "acme", ""))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if _, err := db.Query("SELEKT nonsense"); !errors.Is(err, els.ErrParse) {
		t.Errorf("parse failure = %v, want ErrParse", err)
	}
	if _, err := db.Query("SELECT COUNT(*) FROM R WHERE R.a = 1", 7); !errors.Is(err, els.ErrParse) {
		t.Errorf("bind args = %v, want ErrParse (the dialect has no placeholders)", err)
	}

	// Wrong tenant in the DSN: typed tenant routing error on first use.
	dsn := startServer(t, "real", "")
	wrong, err := sql.Open("els", dsn[:len(dsn)-len("real")]+"ghost")
	if err != nil {
		t.Fatal(err)
	}
	defer wrong.Close()
	if err := wrong.Ping(); !errors.Is(err, els.ErrTenant) {
		t.Errorf("unknown tenant ping = %v, want ErrTenant", err)
	}
}

func TestDriverDSNValidation(t *testing.T) {
	bad := []string{
		"postgres://x/y",   // wrong scheme
		"els://",           // no host
		"els://host:1/",    // no tenant
		"els://host:1/a/b", // nested tenant path
		"els://host:1/a?timeout=banana",
		"els://host:1/a?retries=-2",
	}
	for _, dsn := range bad {
		if _, err := parseDSN(dsn); !errors.Is(err, els.ErrParse) {
			t.Errorf("parseDSN(%q) = %v, want ErrParse", dsn, err)
		}
	}
	cfg, err := parseDSN("els://10.0.0.1:7447/acme?timeout=250ms&algo=sm&retries=3")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != "10.0.0.1:7447" || cfg.tenant != "acme" ||
		cfg.timeout != 250*time.Millisecond || cfg.algo != "sm" || cfg.retries != 3 {
		t.Errorf("parseDSN = %+v", cfg)
	}
}

// The retry budget in the DSN rides out transient overload: a tenant with
// one slot and no queue sheds a concurrent burst, and the retrying
// connection converges instead of surfacing the shed.
func TestDriverRetriesOverload(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, err := server.Start(ctx, server.Config{
		Addr: "127.0.0.1:0",
		Tenants: []server.TenantConfig{{
			Name:   "acme",
			Limits: els.Limits{Timeout: 5 * time.Second, MaxConcurrent: 1, MaxQueue: 1, QueueTimeout: 5 * time.Millisecond},
			Bootstrap: func(sys *els.System) error {
				rows := make([][]int64, 50)
				for i := range rows {
					rows[i] = []int64{int64(i % 5), int64(i % 3)}
				}
				return sys.LoadTable("R", []string{"a", "b"}, rows)
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer scancel()
		srv.Shutdown(sctx)
	}()

	db, err := sql.Open("els", fmt.Sprintf("els://%s/acme?retries=50&timeout=10s", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetMaxOpenConns(8)

	errCh := make(chan error, 24)
	for i := 0; i < 24; i++ {
		go func() {
			var n int64
			errCh <- db.QueryRow("SELECT COUNT(*) FROM R WHERE R.a = 1").Scan(&n)
		}()
	}
	for i := 0; i < 24; i++ {
		if err := <-errCh; err != nil {
			t.Errorf("burst query %d failed despite retries: %v", i, err)
		}
	}
}
