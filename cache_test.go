package els

import (
	"reflect"
	"testing"
)

func cacheTestSystem(t *testing.T) *System {
	t.Helper()
	sys := New()
	mkRows := func(n, dom int) [][]int64 {
		rows := make([][]int64, n)
		for i := range rows {
			rows[i] = []int64{int64(i % dom), int64(i % 7)}
		}
		return rows
	}
	if err := sys.LoadTable("R", []string{"a", "b"}, mkRows(200, 10)); err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadTable("S", []string{"a", "c"}, mkRows(300, 10)); err != nil {
		t.Fatal(err)
	}
	return sys
}

// A repeated estimate is served from cache and is identical field for
// field to the cold one.
func TestCacheHitServesIdenticalEstimate(t *testing.T) {
	sys := cacheTestSystem(t)
	const sql = "SELECT COUNT(*) FROM R, S WHERE R.a = S.a AND R.b < 5"
	cold, err := sys.Estimate(sql, AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := sys.Estimate(sql, AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("cached estimate differs:\ncold %+v\nwarm %+v", cold, warm)
	}
	st := sys.CacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", st.Hits, st.Misses)
	}
	// The hit returned a copy: stamping one estimate must not leak into
	// later serves (replicas stamp lag on their copies).
	warm.ReplicaLag = 99
	again, err := sys.Estimate(sql, AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if again.ReplicaLag != 0 {
		t.Fatal("mutating a served estimate leaked into the cache")
	}
}

// Formatting-only variants of one statement share a cache entry;
// semantically distinct statements and distinct algorithms do not.
func TestCacheKeyNormalizationAndDiscrimination(t *testing.T) {
	sys := cacheTestSystem(t)
	if _, err := sys.Estimate("SELECT COUNT(*) FROM R, S WHERE R.a = S.a AND R.b < 5", AlgorithmELS); err != nil {
		t.Fatal(err)
	}
	for _, variant := range []string{
		"select count(*) from R,S where R.b<5 and R.a=S.a",
		"SELECT COUNT(*) FROM r, s WHERE s.A = r.A AND r.B < 5",
	} {
		if _, err := sys.Estimate(variant, AlgorithmELS); err != nil {
			t.Fatal(err)
		}
	}
	if st := sys.CacheStats(); st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("normalized variants: hits/misses = %d/%d, want 2/1", st.Hits, st.Misses)
	}
	// A different algorithm and a different constant are different keys.
	if _, err := sys.Estimate("SELECT COUNT(*) FROM R, S WHERE R.a = S.a AND R.b < 5", AlgorithmSM); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Estimate("SELECT COUNT(*) FROM R, S WHERE R.a = S.a AND R.b < 6", AlgorithmELS); err != nil {
		t.Fatal(err)
	}
	if st := sys.CacheStats(); st.Misses != 3 {
		t.Fatalf("distinct algo/constant: misses = %d, want 3", st.Misses)
	}
}

// Publishing a new catalog version invalidates — and a query after the
// bump re-plans against the new statistics, never a cached stale estimate.
func TestCacheInvalidationOnPublish(t *testing.T) {
	sys := New()
	sys.MustDeclareStats("V", 1000, map[string]float64{"x": 10})
	const sql = "SELECT COUNT(*) FROM V"
	est, err := sys.Estimate(sql, AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if est.FinalSize != 1000 {
		t.Fatalf("cold estimate %g, want 1000", est.FinalSize)
	}
	if _, err := sys.Estimate(sql, AlgorithmELS); err != nil {
		t.Fatal(err)
	}
	v1 := sys.CatalogVersion()
	sys.MustDeclareStats("V", 2000, map[string]float64{"x": 10})
	est2, err := sys.Estimate(sql, AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if est2.FinalSize != 2000 {
		t.Fatalf("estimate after publish = %g, want 2000 (stale cache serve?)", est2.FinalSize)
	}
	if est2.CatalogVersion != v1+1 {
		t.Fatalf("estimate pinned version %d, want %d", est2.CatalogVersion, v1+1)
	}
	if st := sys.CacheStats(); st.Invalidations == 0 {
		t.Fatalf("publish retired no entries: %+v", st)
	}
}

// Limits.DisableCache bypasses the cache wholesale — no lookups, no
// stores — and results are unchanged.
func TestCacheDisable(t *testing.T) {
	sys := cacheTestSystem(t)
	sys.SetLimits(Limits{DisableCache: true})
	const sql = "SELECT COUNT(*) FROM R, S WHERE R.a = S.a"
	a, err := sys.Estimate(sql, AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.Estimate(sql, AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("estimates differ with the cache disabled")
	}
	if st := sys.CacheStats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("disabled cache was touched: %+v", st)
	}
}

// EstimateOrder caches under an order-suffixed key: the same SQL with
// different forced orders occupies different entries, repeats hit, and
// the best-plan entry is separate from any forced-order one.
func TestCacheOrderSuffix(t *testing.T) {
	sys := cacheTestSystem(t)
	const sql = "SELECT COUNT(*) FROM R, S WHERE R.a = S.a"
	ordRS, err := sys.EstimateOrder(sql, AlgorithmELS, []string{"R", "S"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.EstimateOrder(sql, AlgorithmELS, []string{"S", "R"}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Estimate(sql, AlgorithmELS); err != nil {
		t.Fatal(err)
	}
	if st := sys.CacheStats(); st.Misses != 3 || st.Hits != 0 {
		t.Fatalf("three distinct keys expected: %+v", st)
	}
	warm, err := sys.EstimateOrder(sql, AlgorithmELS, []string{"R", "S"})
	if err != nil {
		t.Fatal(err)
	}
	if st := sys.CacheStats(); st.Hits != 1 {
		t.Fatalf("repeated order was not a hit: %+v", st)
	}
	if !reflect.DeepEqual(ordRS, warm) {
		t.Fatalf("cached ordered estimate differs:\ncold %+v\nwarm %+v", ordRS, warm)
	}
}

// Limits.PlanCacheSize bounds the cache; overflow evicts LRU entries.
func TestCachePlanCacheSizeLimit(t *testing.T) {
	sys := cacheTestSystem(t)
	sys.SetLimits(Limits{PlanCacheSize: 2})
	for _, sql := range []string{
		"SELECT COUNT(*) FROM R WHERE R.b < 1",
		"SELECT COUNT(*) FROM R WHERE R.b < 2",
		"SELECT COUNT(*) FROM R WHERE R.b < 3",
	} {
		if _, err := sys.Estimate(sql, AlgorithmELS); err != nil {
			t.Fatal(err)
		}
	}
	st := sys.CacheStats()
	if st.Capacity != 2 || st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("bounded cache stats = %+v", st)
	}
}

// The cache must be invisible to results: the same workload with the
// cache on (every statement issued twice) and off returns identical
// counts, rows, work counters, and estimates.
func TestDifferentialCacheOnOff(t *testing.T) {
	queries := []string{
		"SELECT COUNT(*) FROM R, S WHERE R.a = S.a AND R.b < 5",
		"SELECT COUNT(*) FROM R, S WHERE R.a = S.a",
		"SELECT COUNT(*) FROM R WHERE R.b < 3",
		"SELECT R.a, COUNT(*) FROM R, S WHERE R.a = S.a GROUP BY R.a",
	}
	run := func(disable bool) []*Result {
		sys := cacheTestSystem(t)
		sys.SetLimits(Limits{DisableCache: disable})
		var out []*Result
		for _, sql := range queries {
			for rep := 0; rep < 2; rep++ {
				res, err := sys.Query(sql, AlgorithmELS)
				if err != nil {
					t.Fatalf("%q: %v", sql, err)
				}
				res.Elapsed = 0 // wall clock is not part of the contract
				res.Estimate.Warnings = nil
				out = append(out, res)
			}
		}
		if !disable {
			if st := sys.CacheStats(); st.Hits < uint64(len(queries)) {
				t.Fatalf("repeated workload hit only %d times: %+v", st.Hits, st)
			}
		}
		return out
	}
	on, off := run(false), run(true)
	for i := range on {
		if !reflect.DeepEqual(on[i], off[i]) {
			t.Fatalf("result %d differs between cache on and off:\non  %+v\noff %+v", i, on[i], off[i])
		}
	}
}
