package els

import (
	"math"
	"strings"
	"testing"
)

func groupBySystem(t *testing.T) *System {
	t.Helper()
	sys := New()
	var rows [][]int64
	// 60 rows: g cycles 0..5, v = i.
	for i := int64(0); i < 60; i++ {
		rows = append(rows, []int64{i % 6, i})
	}
	if err := sys.LoadTable("T", []string{"g", "v"}, rows); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestGroupByQuery(t *testing.T) {
	sys := groupBySystem(t)
	res, err := sys.Query("SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v), AVG(v) FROM T GROUP BY g", AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 6 {
		t.Fatalf("groups = %d, want 6", res.Count)
	}
	if len(res.Columns) != 6 || res.Columns[1] != "COUNT(*)" || res.Columns[2] != "SUM(T.v)" {
		t.Errorf("columns = %v", res.Columns)
	}
	// Group 0 holds v ∈ {0, 6, ..., 54}: count 10, sum 270, min 0, max 54, avg 27.
	row := res.Rows[0]
	want := []string{"0", "10", "270", "0", "54", "27"}
	for i, w := range want {
		if row[i] != w {
			t.Errorf("group 0 col %d = %q, want %q", i, row[i], w)
		}
	}
	// Group estimate: d(g) = 6.
	if res.Estimate.GroupEstimate != 6 {
		t.Errorf("GroupEstimate = %g, want 6", res.Estimate.GroupEstimate)
	}
}

func TestGroupByWithWhereAndJoin(t *testing.T) {
	sys := groupBySystem(t)
	var dims [][]int64
	for i := int64(0); i < 6; i++ {
		dims = append(dims, []int64{i, i * 100})
	}
	if err := sys.LoadTable("D", []string{"g", "label"}, dims); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query(
		"SELECT D.label, COUNT(*) FROM T, D WHERE T.g = D.g AND T.v < 30 GROUP BY D.label",
		AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 6 {
		t.Fatalf("groups = %d, want 6", res.Count)
	}
	// v < 30 keeps 30 rows, 5 per group.
	for _, row := range res.Rows {
		if row[1] != "5" {
			t.Errorf("group %v count = %q, want 5", row[0], row[1])
		}
	}
}

func TestGlobalAggregates(t *testing.T) {
	sys := groupBySystem(t)
	res, err := sys.Query("SELECT COUNT(*), SUM(v), AVG(v) FROM T", AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 1 {
		t.Fatalf("global aggregate rows = %d", res.Count)
	}
	if res.Rows[0][0] != "60" || res.Rows[0][1] != "1770" {
		t.Errorf("global row = %v", res.Rows[0])
	}
	avg, _ := math.Modf(1770.0 / 60)
	_ = avg
	if res.Rows[0][2] != "29.5" {
		t.Errorf("AVG = %q, want 29.5", res.Rows[0][2])
	}
	// No GROUP BY → no group estimate.
	if res.Estimate.GroupEstimate != 0 {
		t.Errorf("GroupEstimate = %g, want 0", res.Estimate.GroupEstimate)
	}
}

func TestCountColumnSkipsNulls(t *testing.T) {
	// COUNT(v) vs COUNT(*): the public int64 loader has no NULLs, so use
	// CSV with a NULL token.
	sys := New()
	csv := "g,v\n1,10\n1,NULL\n2,20\n"
	if err := sys.LoadCSVReader("N", strings.NewReader(csv), true, 0); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query("SELECT g, COUNT(*), COUNT(v) FROM N GROUP BY g", AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][1] != "2" || res.Rows[0][2] != "1" {
		t.Errorf("group 1 counts = %v, want COUNT(*)=2 COUNT(v)=1", res.Rows[0])
	}
}

func TestGroupEstimateCappedByJoinSize(t *testing.T) {
	sys := New()
	sys.MustDeclareStats("R", 100, map[string]float64{"g": 1000, "v": 10})
	// d(g) clamps to 100 in the catalog; with a selective predicate the
	// join estimate caps the group estimate further.
	est, err := sys.Estimate("SELECT g, COUNT(*) FROM R WHERE v = 3 GROUP BY g", AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if est.GroupEstimate > est.FinalSize {
		t.Errorf("group estimate %g must not exceed the size estimate %g", est.GroupEstimate, est.FinalSize)
	}
	if est.GroupEstimate <= 0 {
		t.Errorf("group estimate = %g", est.GroupEstimate)
	}
}

func TestAggregateOnlyCountStarStillFastPath(t *testing.T) {
	sys := groupBySystem(t)
	res, err := sys.Query("SELECT COUNT(*) FROM T", AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	// Fast path: Count is the row count, no materialized columns.
	if res.Count != 60 || len(res.Columns) != 0 {
		t.Errorf("fast path broken: count=%d cols=%v", res.Count, res.Columns)
	}
}
