package els_test

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/chaos"
)

// replicationDirs lays out one primary directory and n replica
// directories with stable base names (the base name becomes the replica
// ID, and the soak's determinism audit depends on it).
func replicationDirs(t *testing.T, n int) (string, []string) {
	t.Helper()
	root := t.TempDir()
	primary := filepath.Join(root, "primary")
	var reps []string
	for i := 0; i < n; i++ {
		reps = append(reps, filepath.Join(root, fmt.Sprintf("r%d", i)))
	}
	return primary, reps
}

// TestReplicationChaos is the replication soak: a primary ships WAL frames
// to a replica fleet while injected faults drop, delay, corrupt, and
// truncate frames on the wire, kill the primary and follower disks
// mid-ship, and silently corrupt a follower's replayed catalog. The
// harness audits the replication contract every round: the digest audit
// catches every injected divergence (quarantining the follower with
// ErrDiverged), acknowledged mutations reach every settled live follower,
// and quiesced reads past Limits.MaxReplicaLag are rejected with
// ErrStaleReplica. Run with -race in CI; CHAOS_LOG captures the event log
// and REPL_DIGEST the per-follower digest artifact.
func TestReplicationChaos(t *testing.T) {
	primary, reps := replicationDirs(t, 3)
	cfg := chaos.ReplicationConfig{
		Seed:              42,
		PrimaryDir:        primary,
		ReplicaDirs:       reps,
		Rounds:            18, // two full passes over the 9-kind fault rotation
		MutationsPerRound: 20,
		MaxReplicaLag:     3,
	}
	if testing.Short() {
		cfg.Rounds = 9 // one full pass
		cfg.MutationsPerRound = 10
	}
	if logF := chaosLog(t); logF != nil {
		cfg.LogW = logF
	}

	before := goroutineCount()
	rep, err := chaos.RunReplication(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Rounds != cfg.Rounds {
		t.Errorf("completed %d rounds, want %d", rep.Rounds, cfg.Rounds)
	}
	if rep.MutationsAcked == 0 {
		t.Error("no mutation was acknowledged")
	}
	if rep.FramesShipped == 0 {
		t.Error("no frame was shipped")
	}
	if rep.DivergencesInjected == 0 {
		t.Error("no divergence was injected — the soak never exercised the digest audit under fire")
	}
	if rep.DivergencesDetected < rep.DivergencesInjected {
		t.Errorf("only %d of %d injected divergences were detected",
			rep.DivergencesDetected, rep.DivergencesInjected)
	}
	if rep.PrimaryCrashes == 0 {
		t.Error("no primary crash landed")
	}
	if rep.FollowerCrashes == 0 {
		t.Error("no follower crash landed")
	}
	if rep.StaleAudits != cfg.Rounds {
		t.Errorf("%d staleness audits ran, want one per round (%d)", rep.StaleAudits, cfg.Rounds)
	}
	if rep.ServedReads == 0 {
		t.Error("no replica read succeeded during the storms")
	}
	if rep.Digest == "" {
		t.Error("no settled-catalog digest produced")
	}
	for id, d := range rep.FollowerDigests {
		if d != rep.Digest {
			t.Errorf("follower %s settled at digest %.12s, primary %.12s", id, d, rep.Digest)
		}
	}
	t.Logf("replication soak: %d rounds, %d acked, %d frames shipped, %d resyncs, %d link drops, "+
		"%d served / %d stale reads, %d/%d divergences detected, %d primary + %d follower crashes, "+
		"%d catch-ups, final v%d digest %.12s",
		rep.Rounds, rep.MutationsAcked, rep.FramesShipped, rep.Resyncs, rep.LinkDrops,
		rep.ServedReads, rep.StaleReads, rep.DivergencesDetected, rep.DivergencesInjected,
		rep.PrimaryCrashes, rep.FollowerCrashes, rep.CatchUps, rep.FinalVersion, rep.Digest)

	// CI archives the settled digests so a replication regression is
	// diffable across runs (REPL_DIGEST names the artifact file).
	if path := os.Getenv("REPL_DIGEST"); path != "" {
		var sb strings.Builder
		fmt.Fprintf(&sb, "seed=%d rounds=%d final_version=%d primary=%s\n",
			cfg.Seed, rep.Rounds, rep.FinalVersion, rep.Digest)
		for id, d := range rep.FollowerDigests {
			fmt.Fprintf(&sb, "replica=%s sha256=%s\n", id, d)
		}
		if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
			t.Errorf("writing REPL_DIGEST: %v", err)
		}
	}

	if after := goroutineCount(); after > before {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutine leak: %d before soak, %d after\n%s",
			before, after, buf[:runtime.Stack(buf, true)])
	}
}

// TestReplicationDeterministic pins that the soak is replayable: two runs
// from the same seed settle the primary and every follower at identical
// catalog digests and versions — the property the CI replication-smoke
// job archives.
func TestReplicationDeterministic(t *testing.T) {
	run := func() *chaos.ReplicationReport {
		primary, reps := replicationDirs(t, 2)
		rep, err := chaos.RunReplication(chaos.ReplicationConfig{
			Seed:              7,
			PrimaryDir:        primary,
			ReplicaDirs:       reps,
			Rounds:            9,
			MutationsPerRound: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
		return rep
	}
	a, b := run(), run()
	if a.Digest == "" || a.Digest != b.Digest {
		t.Errorf("same-seed digests differ: %s vs %s", a.Digest, b.Digest)
	}
	if a.FinalVersion != b.FinalVersion {
		t.Errorf("same-seed final versions differ: %d vs %d", a.FinalVersion, b.FinalVersion)
	}
	if a.MutationsAcked != b.MutationsAcked {
		t.Errorf("same-seed acked counts differ: %d vs %d", a.MutationsAcked, b.MutationsAcked)
	}
}
