package els_test

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/chaos"
)

// TestCrashRecoverySoak is the durability soak: a mutator fleet hammers a
// durable system while simulated process kills land at every durable-layer
// probe point (mid-WAL-record, pre-fsync, mid-checkpoint-write,
// pre-rename, post-rename-pre-truncate); each kill is followed by a
// recovery that the harness audits against the acknowledge contract —
// recovery yields exactly the last acknowledged version (or the one
// allowed in-flight record), acknowledged mutations never vanish, and
// recovered estimates are bit-identical at the same version. Run with
// -race in CI; CHAOS_LOG captures the event log artifact.
func TestCrashRecoverySoak(t *testing.T) {
	cfg := chaos.CrashConfig{
		Seed:                42,
		Dir:                 t.TempDir(),
		Rounds:              15,
		MutationsPerMutator: 25,
	}
	if testing.Short() {
		cfg.Rounds = 6
		cfg.MutationsPerMutator = 12
	}
	if logF := chaosLog(t); logF != nil {
		cfg.LogW = logF
	}

	before := goroutineCount()
	rep, err := chaos.RunCrash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Rounds != cfg.Rounds {
		t.Errorf("completed %d rounds, want %d", rep.Rounds, cfg.Rounds)
	}
	if rep.Crashes == 0 {
		t.Error("no injected crash landed — the soak never exercised recovery under fire")
	}
	if rep.MutationsAcked == 0 {
		t.Error("no mutation was acknowledged")
	}
	if rep.BitIdenticalChecks == 0 {
		t.Error("no bit-identical estimate comparison ran")
	}
	if rep.Digest == "" {
		t.Error("no recovered-catalog digest produced")
	}
	t.Logf("crash soak: %d rounds (%d crashes, %d clean), %d acked, %d torn tails, %d ahead, %d bit-identical checks, final v%d digest %.12s",
		rep.Rounds, rep.Crashes, rep.CleanShutdowns, rep.MutationsAcked,
		rep.TornTails, rep.RecoveredAhead, rep.BitIdenticalChecks, rep.FinalVersion, rep.Digest)

	// CI archives the recovered catalog's digest so a contract regression
	// is diffable across runs (CRASH_DIGEST names the artifact file).
	if path := os.Getenv("CRASH_DIGEST"); path != "" {
		line := fmt.Sprintf("seed=%d rounds=%d final_version=%d sha256=%s\n",
			cfg.Seed, rep.Rounds, rep.FinalVersion, rep.Digest)
		if err := os.WriteFile(path, []byte(line), 0o644); err != nil {
			t.Errorf("writing CRASH_DIGEST: %v", err)
		}
	}

	if after := goroutineCount(); after > before {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutine leak: %d before soak, %d after\n%s",
			before, after, buf[:runtime.Stack(buf, true)])
	}
}

// TestCrashRecoveryDeterministic pins that the deterministic soak mode is
// replayable: two runs from the same seed recover catalogs with identical
// digests at the same final version — the property the CI crash-smoke job
// archives.
func TestCrashRecoveryDeterministic(t *testing.T) {
	run := func() *chaos.CrashReport {
		rep, err := chaos.RunCrash(chaos.CrashConfig{
			Seed:                7,
			Dir:                 t.TempDir(),
			Rounds:              8,
			MutationsPerMutator: 10,
			Deterministic:       true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
		return rep
	}
	a, b := run(), run()
	if a.Digest == "" || a.Digest != b.Digest {
		t.Errorf("same-seed digests differ: %s vs %s", a.Digest, b.Digest)
	}
	if a.FinalVersion != b.FinalVersion {
		t.Errorf("same-seed final versions differ: %d vs %d", a.FinalVersion, b.FinalVersion)
	}
}
