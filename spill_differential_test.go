package els

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/catalog"
	"repro/internal/durable"
	"repro/internal/executor"
	"repro/internal/governor"
	"repro/internal/optimizer"
	"repro/internal/querygen"
)

// spillBudget is the per-query byte budget the spill differential runs
// under: small enough that well over a quarter of the generated joins
// overflow it and take the Grace spill path, large enough that scans and
// probe-side scratch never hard-fail.
const spillBudget = 4096

// execBudgeted runs the plan under the given byte budget with spill runs
// rooted at dir, returning the result, the governor's tuple/row charges,
// and the governor for spill introspection.
func execBudgeted(t *testing.T, cat *catalog.Catalog, plan optimizer.Plan, workers int, budget int64, dir string) (*executor.Result, [2]int64, *governor.Governor) {
	t.Helper()
	gov := governor.New(context.Background(), governor.Limits{Workers: workers, MaxMemory: budget})
	exec := executor.NewGoverned(cat, gov)
	exec.SetSpillDir(dir)
	res, err := exec.Execute(plan)
	if err != nil {
		t.Fatalf("workers=%d budget=%d: %v", workers, budget, err)
	}
	tuples, rows, _ := gov.Usage()
	return res, [2]int64{tuples, rows}, gov
}

// TestDifferentialSpillVsInMemory is the referee the memory-governance
// tentpole is locked down by: 500 seeded random queries planned hash-only,
// each executed unbudgeted in memory (the oracle) and then under a byte
// budget tiny enough to force at least a quarter of them through the
// recursive spill path, at workers 1, 4, and 8. The spilled result must be
// bit-identical — same rows in the same order, same TuplesScanned and
// Comparisons, same governor tuple/row charges — and no *.spill file may
// survive the run. Divergences are appended to the ELS_DIFF_REPORT
// artifact before the test fails.
func TestDifferentialSpillVsInMemory(t *testing.T) {
	queries := differentialQueries(t)
	dir := t.TempDir()
	spilled := int64(0)
	for seed := int64(0); seed < queries; seed++ {
		q := querygen.Generate(seed)
		q.Methods = []optimizer.JoinMethod{optimizer.HashJoin}
		cat, plan := planGenerated(t, q)
		oracle, oracleUsage := execWorkers(t, cat, plan, 1)
		seedSpilled := false
		for _, workers := range []int{1, 4, 8} {
			res, usage, gov := execBudgeted(t, cat, plan, workers, spillBudget, dir)
			if count, _ := gov.SpillStats(); count > 0 {
				seedSpilled = true
			}
			fail := func(field string, got, want any) {
				diffReport(t, map[string]any{
					"harness": "spill-vs-inmemory", "seed": seed, "workers": workers,
					"query": q.String(), "field": field, "spilled": got, "inmemory": want,
				})
				t.Fatalf("seed %d workers %d (%s): %s %v (spilled) vs %v (in-memory)",
					seed, workers, q, field, got, want)
			}
			if res.Stats.RowsProduced != oracle.Stats.RowsProduced {
				fail("rows_produced", res.Stats.RowsProduced, oracle.Stats.RowsProduced)
			}
			if res.Stats.TuplesScanned != oracle.Stats.TuplesScanned {
				fail("tuples_scanned", res.Stats.TuplesScanned, oracle.Stats.TuplesScanned)
			}
			if res.Stats.Comparisons != oracle.Stats.Comparisons {
				fail("comparisons", res.Stats.Comparisons, oracle.Stats.Comparisons)
			}
			if usage != oracleUsage {
				fail("governor_usage", usage, oracleUsage)
			}
			assertSameRows(t, seed, q, oracle.Table, res.Table)
		}
		if seedSpilled {
			spilled++
		}
	}
	if spilled*4 < queries {
		t.Errorf("only %d of %d queries spilled; the acceptance bar is at least 25%%", spilled, queries)
	}
	var leaked []string
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && filepath.Ext(path) == durable.SpillSuffix {
			leaked = append(leaked, path)
		}
		return nil
	})
	if len(leaked) != 0 {
		t.Errorf("spill runs leaked after %d queries: %v", queries, leaked)
	}
	t.Logf("spill differential: %d/%d queries spilled under a %d-byte budget", spilled, queries, spillBudget)
}
