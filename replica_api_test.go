package els_test

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	els "repro"
	"repro/internal/catalog"
	"repro/internal/faultinject"
	"repro/internal/replica"
)

// newReplicationPair opens a durable primary with one declared table and
// an attached replica, both cleaned up with the test.
func newReplicationPair(t *testing.T) (*els.System, *els.Replica) {
	t.Helper()
	sys, err := els.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { closeSystem(t, sys) })
	if err := sys.DeclareStats("orders", 1000, map[string]float64{"id": 100}); err != nil {
		t.Fatal(err)
	}
	rep, err := els.OpenReplica(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachReplica(rep); err != nil {
		t.Fatal(err)
	}
	waitForReplicas(t, sys)
	return sys, rep
}

func closeSystem(t *testing.T, sys *els.System) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	sys.Close(ctx)
}

func waitForReplicas(t *testing.T, sys *els.System) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sys.WaitForReplicas(ctx); err != nil {
		t.Fatal(err)
	}
}

const replicaProbe = "SELECT COUNT(*) FROM orders WHERE id < 50"

// TestReplicaServesStampedReads pins the read path: a caught-up replica
// serves the same estimate as the primary, bit-identical at the same
// catalog version, stamped as a replica read, and Explain reports the lag.
func TestReplicaServesStampedReads(t *testing.T) {
	sys, rep := newReplicationPair(t)

	want, err := sys.Estimate(replicaProbe, els.AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rep.Estimate(replicaProbe, els.AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Replica {
		t.Error("replica estimate not stamped Replica")
	}
	if got.ReplicaLag != 0 {
		t.Errorf("caught-up replica reports lag %d", got.ReplicaLag)
	}
	if want.Replica {
		t.Error("primary estimate stamped as a replica read")
	}
	if got.CatalogVersion != want.CatalogVersion {
		t.Errorf("replica pinned version %d, primary %d", got.CatalogVersion, want.CatalogVersion)
	}
	if math.Float64bits(got.FinalSize) != math.Float64bits(want.FinalSize) {
		t.Errorf("replica estimate %v not bit-identical to primary %v", got.FinalSize, want.FinalSize)
	}

	plan, err := rep.Explain(replicaProbe, els.AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "replica lag: 0") {
		t.Errorf("replica explain missing the lag line:\n%s", plan)
	}
	if pplan, _ := sys.Explain(replicaProbe, els.AlgorithmELS); strings.Contains(pplan, "replica lag") {
		t.Error("primary explain carries a replica lag line")
	}
}

// TestReplicaStaleRejection wedges the replica's link (announcements still
// flow, data frames drop), pushes the primary past MaxReplicaLag, and pins
// the staleness contract: the read is rejected with a typed
// ErrStaleReplica, and a retry policy rides out the staleness once the
// link heals.
func TestReplicaStaleRejection(t *testing.T) {
	sys, rep := newReplicationPair(t)
	rep.SetLimits(els.Limits{MaxReplicaLag: 2})

	link := replica.PointShip + ":" + rep.ID()
	defer faultinject.Reset()
	faultinject.Enable(link, faultinject.Fault{
		Payload: faultinject.LinkFault{Drop: true, CorruptBit: -1, Truncate: -1},
	})
	for i := 0; i < 4; i++ {
		if err := sys.DeclareStats("orders", float64(2000+i), map[string]float64{"id": 100}); err != nil {
			t.Fatal(err)
		}
	}
	if lag := rep.Lag(); lag != 4 {
		t.Fatalf("announcements must survive dropped data frames: lag = %d, want 4", lag)
	}

	_, err := rep.Estimate(replicaProbe, els.AlgorithmELS)
	if !errors.Is(err, els.ErrStaleReplica) {
		t.Fatalf("read at lag 4 under bound 2: got %v, want ErrStaleReplica", err)
	}
	var sre *els.StaleReplicaError
	if !errors.As(err, &sre) || sre.Lag != 4 || sre.MaxLag != 2 {
		t.Fatalf("rejection carries no usable StaleReplicaError: %v", err)
	}

	// Heal the link in the background; a retrying read must ride the
	// staleness out and then pin the caught-up version. Dropped frames
	// are only re-shipped on a nudge (or the next frame's gap), so the
	// healer runs the catch-up barrier after lifting the fault.
	go func() {
		time.Sleep(5 * time.Millisecond)
		faultinject.Disable(link)
		wctx, wcancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer wcancel()
		_ = sys.WaitForReplicas(wctx)
	}()
	rep.SetRetryPolicy(els.RetryPolicy{MaxAttempts: 500, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})
	est, err := rep.Estimate(replicaProbe, els.AlgorithmELS)
	if err != nil {
		t.Fatalf("retrying read never caught up: %v", err)
	}
	if est.CatalogVersion != sys.CatalogVersion() {
		t.Errorf("retried read pinned version %d, primary at %d", est.CatalogVersion, sys.CatalogVersion())
	}
	if rep.RobustnessStats().Retries == 0 {
		t.Error("the stale read succeeded without retrying — the fault never bit")
	}
	if st := rep.Status(); st.StaleReads == 0 {
		t.Error("no stale rejection was counted")
	}
}

// TestReplicaQuarantineAndHeal injects a silent corruption into the
// replica's replay and pins the divergence contract: the digest audit
// quarantines the replica behind ErrDiverged, reads and promotion are
// refused, and re-attaching heals it through a certifying full resync.
func TestReplicaQuarantineAndHeal(t *testing.T) {
	sys, rep := newReplicationPair(t)

	defer faultinject.Reset()
	faultinject.Enable(replica.PointApply+":"+rep.ID(), faultinject.Fault{
		Times: 1,
		Payload: func(cat *catalog.Catalog) {
			if ts := cat.Table("orders"); ts != nil {
				ts.Card++ // silent corruption: only the digest audit can see it
			}
		},
	})
	if err := sys.DeclareStats("orders", 5000, map[string]float64{"id": 100}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for rep.Quarantined() == nil {
		if time.Now().After(deadline) {
			t.Fatal("injected corruption never tripped the digest audit")
		}
		time.Sleep(time.Millisecond)
	}

	_, err := rep.Estimate(replicaProbe, els.AlgorithmELS)
	if !errors.Is(err, els.ErrDiverged) {
		t.Fatalf("read on a quarantined replica: got %v, want ErrDiverged", err)
	}
	var dv *els.DivergenceError
	if !errors.As(err, &dv) || dv.ReplicaID != rep.ID() || dv.Want == dv.Got {
		t.Fatalf("rejection carries no usable DivergenceError: %v", err)
	}
	if _, err := rep.Promote(); !errors.Is(err, els.ErrDiverged) {
		t.Errorf("promoting a quarantined replica: got %v, want a refusal wrapping ErrDiverged", err)
	}
	quarantined := false
	for _, f := range sys.ReplicationStats().Followers {
		if f.ID == rep.ID() && f.Quarantined {
			quarantined = true
		}
	}
	if !quarantined {
		t.Error("primary's replication stats do not report the quarantine")
	}

	// Re-attaching is the operator acknowledging the divergence: the full
	// resync re-certifies the replica.
	if err := sys.AttachReplica(rep); err != nil {
		t.Fatal(err)
	}
	for rep.Quarantined() != nil || rep.CatalogVersion() < sys.CatalogVersion() {
		if time.Now().After(deadline) {
			t.Fatal("heal never completed")
		}
		time.Sleep(time.Millisecond)
	}
	est, err := rep.Estimate(replicaProbe, els.AlgorithmELS)
	if err != nil {
		t.Fatalf("healed replica rejected a read: %v", err)
	}
	if est.CatalogVersion != sys.CatalogVersion() {
		t.Errorf("healed replica pinned version %d, primary at %d", est.CatalogVersion, sys.CatalogVersion())
	}
	pv, pd, _ := sys.CatalogDigest()
	rv, rd, _ := rep.CatalogDigest()
	if pv != rv || pd != rd {
		t.Errorf("healed replica digest (%d, %.12s) != primary (%d, %.12s)", rv, rd, pv, pd)
	}
}

// TestReplicaPromote pins promotion semantics: the promoted replica
// becomes a writable primary serving unstamped reads from its own durable
// directory, and the old replica handle is dead.
func TestReplicaPromote(t *testing.T) {
	sys, rep := newReplicationPair(t)

	promoted, err := rep.Promote()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { closeSystem(t, promoted) })
	if promoted.CatalogVersion() != sys.CatalogVersion() {
		t.Errorf("promoted at version %d, primary at %d", promoted.CatalogVersion(), sys.CatalogVersion())
	}

	// The promoted system writes and serves unstamped reads.
	if err := promoted.DeclareStats("orders", 9000, map[string]float64{"id": 100}); err != nil {
		t.Fatalf("promoted system rejected a write: %v", err)
	}
	est, err := promoted.Estimate(replicaProbe, els.AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if est.Replica {
		t.Error("promoted system still stamps reads as replica reads")
	}

	// The replica handle is dead, and re-attachment is refused.
	if _, err := rep.Estimate(replicaProbe, els.AlgorithmELS); !errors.Is(err, els.ErrClosed) {
		t.Errorf("read through the promoted replica handle: got %v, want ErrClosed", err)
	}
	if err := sys.AttachReplica(rep); !errors.Is(err, els.ErrClosed) {
		t.Errorf("re-attaching a promoted replica: got %v, want ErrClosed", err)
	}

	// Failover completes: the promoted system is itself a shipping primary,
	// so surviving replicas can be re-pointed at it.
	surDir := t.TempDir()
	survivor, err := els.OpenReplica(surDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := promoted.AttachReplica(survivor); err != nil {
		t.Fatalf("promoted primary refused a replica: %v", err)
	}
	waitForReplicas(t, promoted)
	pv, pd, err := promoted.CatalogDigest()
	if err != nil {
		t.Fatal(err)
	}
	sv, sd, err := survivor.CatalogDigest()
	if err != nil {
		t.Fatal(err)
	}
	if sv != pv || sd != pd {
		t.Errorf("survivor settled at v%d %.12s, promoted primary at v%d %.12s", sv, sd, pv, pd)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := survivor.Close(ctx); err != nil {
		t.Errorf("closing survivor: %v", err)
	}
}

// TestReplicaRecovery pins that a follower recovers from its own durable
// directory like a primary: close it, reopen it, and it resumes tailing
// from the version it had persisted.
func TestReplicaRecovery(t *testing.T) {
	sys, _ := newReplicationPair(t)

	repDir := t.TempDir()
	rep2, err := els.OpenReplica(repDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachReplica(rep2); err != nil {
		t.Fatal(err)
	}
	// Let the fresh follower finish its full-frame resync before
	// mutating: contiguous deltas replay through the follower's own WAL
	// (a late resync would cover them with one checkpoint instead).
	waitForReplicas(t, sys)
	for i := 0; i < 5; i++ {
		if err := sys.DeclareStats("orders", float64(3000+i), map[string]float64{"id": 100}); err != nil {
			t.Fatal(err)
		}
	}
	// Poll the version directly rather than WaitForReplicas: the barrier
	// Nudges stragglers into a full resync, and a full frame checkpoints
	// and truncates the very WAL records this test wants to replay.
	deadline := time.Now().Add(5 * time.Second)
	for rep2.CatalogVersion() < sys.CatalogVersion() {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at version %d, primary at %d", rep2.CatalogVersion(), sys.CatalogVersion())
		}
		time.Sleep(2 * time.Millisecond)
	}
	wantVer := rep2.CatalogVersion()
	if stats := rep2.DurabilityStats(); stats.WALBytes == 0 {
		t.Error("follower replay wrote nothing to its own WAL")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	rep2.Close(ctx)
	cancel()

	reopened, err := els.OpenReplica(repDir)
	if err != nil {
		t.Fatal(err)
	}
	if got := reopened.CatalogVersion(); got != wantVer {
		t.Errorf("reopened follower at version %d, had persisted %d", got, wantVer)
	}
	if stats := reopened.DurabilityStats(); stats.ReplayedRecords == 0 {
		t.Error("reopening replayed no WAL records — the follower's own durability is not being exercised")
	}
	if err := sys.AttachReplica(reopened); err != nil {
		t.Fatal(err)
	}
	if err := sys.DeclareStats("orders", 4000, map[string]float64{"id": 100}); err != nil {
		t.Fatal(err)
	}
	waitForReplicas(t, sys)
	pv, pd, _ := sys.CatalogDigest()
	rv, rd, _ := reopened.CatalogDigest()
	if pv != rv || pd != rd {
		t.Errorf("recovered replica digest (%d, %.12s) != primary (%d, %.12s)", rv, rd, pv, pd)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	reopened.Close(ctx2)
	cancel2()
}

// TestAttachRequiresDurablePrimary pins that only a durable primary
// (els.Open) can ship WAL frames.
func TestAttachRequiresDurablePrimary(t *testing.T) {
	sys := els.New()
	t.Cleanup(func() { closeSystem(t, sys) })
	rep, err := els.OpenReplica(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	defer rep.Close(ctx)
	if err := sys.AttachReplica(rep); !errors.Is(err, els.ErrDurability) {
		t.Errorf("attaching to an in-memory system: got %v, want ErrDurability", err)
	}
}
