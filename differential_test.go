package els

import (
	"context"
	"encoding/json"
	"os"
	"reflect"
	"testing"
	"time"

	"repro/internal/cardest"
	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/executor"
	"repro/internal/governor"
	"repro/internal/optimizer"
	"repro/internal/querygen"
	"repro/internal/storage"
)

// differentialQueries is how many seeded random queries the harness runs.
// Short mode trims it so -race CI legs stay fast; the full run satisfies
// the 500-query acceptance bar.
func differentialQueries(t *testing.T) int64 {
	if testing.Short() {
		return 60
	}
	return 500
}

// runGenerated materializes one generated query's tables into a catalog
// and plans it (serially, so the plan under test is fixed).
func planGenerated(t *testing.T, q querygen.Query) (*catalog.Catalog, optimizer.Plan) {
	t.Helper()
	cat := catalog.New()
	for _, spec := range q.Specs {
		tbl, err := datagen.Generate(spec, q.DataSeed+int64(len(spec.Name)))
		if err != nil {
			t.Fatalf("%s: datagen: %v", q, err)
		}
		if _, err := cat.Analyze(tbl, catalog.AnalyzeOptions{}); err != nil {
			t.Fatalf("%s: analyze: %v", q, err)
		}
	}
	est, err := cardest.New(cat, q.Tables, q.Preds, cardest.ELS())
	if err != nil {
		t.Fatalf("%s: cardest: %v", q, err)
	}
	opt, err := optimizer.New(est, optimizer.Options{Methods: q.Methods, Workers: 1})
	if err != nil {
		t.Fatalf("%s: optimizer: %v", q, err)
	}
	plan, err := opt.BestPlan()
	if err != nil {
		t.Fatalf("%s: plan: %v", q, err)
	}
	return cat, plan
}

// execWorkers runs the plan with the given parallelism on a fresh
// governor and returns the result plus the governor's usage counters.
func execWorkers(t *testing.T, cat *catalog.Catalog, plan optimizer.Plan, workers int) (*executor.Result, [2]int64) {
	t.Helper()
	gov := governor.New(context.Background(), governor.Limits{Workers: workers})
	res, err := executor.NewGoverned(cat, gov).Execute(plan)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	tuples, rows, _ := gov.Usage()
	return res, [2]int64{tuples, rows}
}

// TestDifferentialSerialVsParallel is the harness the tentpole is locked
// down by: 500 seeded random queries, each executed serially and with 4
// workers on the same plan. Results must be identical row for row (the
// parallel operators preserve serial order by construction), and the
// deterministic work counters — TuplesScanned, Comparisons, and the
// governor's tuple/row accounting — must match exactly.
func TestDifferentialSerialVsParallel(t *testing.T) {
	queries := differentialQueries(t)
	for seed := int64(0); seed < queries; seed++ {
		q := querygen.Generate(seed)
		cat, plan := planGenerated(t, q)
		serial, serialUsage := execWorkers(t, cat, plan, 1)
		parallel, parallelUsage := execWorkers(t, cat, plan, 4)

		if parallel.Stats.RowsProduced != serial.Stats.RowsProduced {
			t.Fatalf("seed %d (%s): rows %d (parallel) vs %d (serial)",
				seed, q, parallel.Stats.RowsProduced, serial.Stats.RowsProduced)
		}
		if parallel.Stats.TuplesScanned != serial.Stats.TuplesScanned {
			t.Fatalf("seed %d (%s): tuples scanned %d vs %d",
				seed, q, parallel.Stats.TuplesScanned, serial.Stats.TuplesScanned)
		}
		if parallel.Stats.Comparisons != serial.Stats.Comparisons {
			t.Fatalf("seed %d (%s): comparisons %d vs %d",
				seed, q, parallel.Stats.Comparisons, serial.Stats.Comparisons)
		}
		if parallelUsage != serialUsage {
			t.Fatalf("seed %d (%s): governor usage %v vs %v",
				seed, q, parallelUsage, serialUsage)
		}
		assertSameRows(t, seed, q, serial.Table, parallel.Table)
	}
}

func assertSameRows(t *testing.T, seed int64, q querygen.Query, a, b *storage.Table) {
	t.Helper()
	if a.NumRows() != b.NumRows() {
		t.Fatalf("seed %d (%s): %d vs %d result rows", seed, q, a.NumRows(), b.NumRows())
	}
	for r := 0; r < a.NumRows(); r++ {
		for c := 0; c < a.Schema().NumColumns(); c++ {
			if storage.Compare(a.Value(r, c), b.Value(r, c)) != 0 {
				t.Fatalf("seed %d (%s): result differs at row %d col %d: %s vs %s",
					seed, q, r, c, a.Value(r, c), b.Value(r, c))
			}
		}
	}
}

// diffReport appends one JSONL divergence record to the file named by the
// ELS_DIFF_REPORT environment variable — the artifact the CI
// columnar-differential job uploads on failure. Without the variable it is
// a no-op; the t.Fatalf that follows every call carries the same facts.
func diffReport(t *testing.T, fields map[string]any) {
	t.Helper()
	path := os.Getenv("ELS_DIFF_REPORT")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Logf("ELS_DIFF_REPORT: %v", err)
		return
	}
	defer f.Close()
	b, err := json.Marshal(fields)
	if err != nil {
		return
	}
	f.Write(append(b, '\n'))
}

// execEngine runs the plan with the given parallelism and engine (columnar
// or row-at-a-time) on a fresh governor, returning the result plus the
// governor's tuple/row charge counters.
func execEngine(t *testing.T, cat *catalog.Catalog, plan optimizer.Plan, workers int, columnar bool) (*executor.Result, [2]int64) {
	t.Helper()
	gov := governor.New(context.Background(), governor.Limits{Workers: workers})
	exec := executor.NewGoverned(cat, gov)
	exec.SetColumnar(columnar)
	res, err := exec.Execute(plan)
	if err != nil {
		t.Fatalf("workers=%d columnar=%v: %v", workers, columnar, err)
	}
	tuples, rows, _ := gov.Usage()
	return res, [2]int64{tuples, rows}
}

// TestDifferentialColumnarVsRow is the referee the columnar tentpole is
// locked down by: for every seeded random query, the row-at-a-time serial
// result is the oracle, and the columnar engine must reproduce it
// bit-identically at workers 1, 4, and 8 — same rows in the same order,
// same TuplesScanned and Comparisons, and the same governor tuple/row
// charges. Any divergence is appended to the ELS_DIFF_REPORT artifact
// before the test fails.
func TestDifferentialColumnarVsRow(t *testing.T) {
	queries := differentialQueries(t)
	for seed := int64(0); seed < queries; seed++ {
		q := querygen.Generate(seed)
		cat, plan := planGenerated(t, q)
		row, rowUsage := execEngine(t, cat, plan, 1, false)
		for _, workers := range []int{1, 4, 8} {
			col, colUsage := execEngine(t, cat, plan, workers, true)
			fail := func(field string, got, want any) {
				diffReport(t, map[string]any{
					"harness": "columnar-vs-row", "seed": seed, "workers": workers,
					"query": q.String(), "field": field, "columnar": got, "row": want,
				})
				t.Fatalf("seed %d workers %d (%s): %s %v (columnar) vs %v (row)",
					seed, workers, q, field, got, want)
			}
			if col.Stats.RowsProduced != row.Stats.RowsProduced {
				fail("rows_produced", col.Stats.RowsProduced, row.Stats.RowsProduced)
			}
			if col.Stats.TuplesScanned != row.Stats.TuplesScanned {
				fail("tuples_scanned", col.Stats.TuplesScanned, row.Stats.TuplesScanned)
			}
			if col.Stats.Comparisons != row.Stats.Comparisons {
				fail("comparisons", col.Stats.Comparisons, row.Stats.Comparisons)
			}
			if colUsage != rowUsage {
				fail("governor_usage", colUsage, rowUsage)
			}
			assertSameRows(t, seed, q, row.Table, col.Table)
		}
	}
}

// Admission control must be invisible to a single serial client: the same
// SQL with admission off vs MaxConcurrent=1 (every query waits for the one
// slot) returns bit-identical counts and work counters, and the estimates
// agree too. Admission gates *when* a query runs, never *what* it computes.
func TestDifferentialAdmissionOnOff(t *testing.T) {
	queries := []string{
		"SELECT COUNT(*) FROM R, S WHERE R.a = S.a AND R.b < 5",
		"SELECT COUNT(*) FROM R, S WHERE R.a = S.a",
		"SELECT COUNT(*) FROM R WHERE R.b < 3",
	}
	run := func(limits Limits) ([]*Result, []*Estimate) {
		sys := New()
		mkRows := func(n, dom int) [][]int64 {
			rows := make([][]int64, n)
			for i := range rows {
				rows[i] = []int64{int64(i % dom), int64(i % 7)}
			}
			return rows
		}
		if err := sys.LoadTable("R", []string{"a", "b"}, mkRows(200, 10)); err != nil {
			t.Fatal(err)
		}
		if err := sys.LoadTable("S", []string{"a", "c"}, mkRows(300, 10)); err != nil {
			t.Fatal(err)
		}
		sys.SetLimits(limits)
		var results []*Result
		var ests []*Estimate
		for _, sql := range queries {
			res, err := sys.Query(sql, AlgorithmELS)
			if err != nil {
				t.Fatalf("%q: %v", sql, err)
			}
			est, err := sys.Estimate(sql, AlgorithmELS)
			if err != nil {
				t.Fatalf("%q: estimate: %v", sql, err)
			}
			results = append(results, res)
			ests = append(ests, est)
		}
		return results, ests
	}
	off, offEst := run(Limits{})
	on, onEst := run(Limits{MaxConcurrent: 1, MaxQueue: 4, QueueTimeout: time.Minute})
	for i, sql := range queries {
		if on[i].Count != off[i].Count ||
			on[i].TuplesScanned != off[i].TuplesScanned ||
			on[i].Comparisons != off[i].Comparisons ||
			!reflect.DeepEqual(on[i].Rows, off[i].Rows) {
			t.Errorf("%q: admission on (count %d, tuples %d, cmp %d) vs off (%d, %d, %d)",
				sql, on[i].Count, on[i].TuplesScanned, on[i].Comparisons,
				off[i].Count, off[i].TuplesScanned, off[i].Comparisons)
		}
		if onEst[i].FinalSize != offEst[i].FinalSize {
			t.Errorf("%q: estimate %v (admission on) vs %v (off)",
				sql, onEst[i].FinalSize, offEst[i].FinalSize)
		}
	}
}

// The full public pipeline must also be worker-count invariant: the same
// SQL through System.Query with Limits.Workers 1 vs 4 returns the same
// count, tuples, and comparisons (TrueCount parity at the API level).
func TestDifferentialSystemWorkers(t *testing.T) {
	run := func(workers int) *Result {
		sys := New()
		mkRows := func(n, dom int) [][]int64 {
			rows := make([][]int64, n)
			for i := range rows {
				rows[i] = []int64{int64(i % dom), int64(i % 7)}
			}
			return rows
		}
		if err := sys.LoadTable("R", []string{"a", "b"}, mkRows(200, 10)); err != nil {
			t.Fatal(err)
		}
		if err := sys.LoadTable("S", []string{"a", "c"}, mkRows(300, 10)); err != nil {
			t.Fatal(err)
		}
		sys.SetLimits(Limits{Workers: workers})
		res, err := sys.Query("SELECT COUNT(*) FROM R, S WHERE R.a = S.a AND R.b < 5", AlgorithmELS)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, parallel := run(1), run(4)
	if parallel.Count != serial.Count ||
		parallel.TuplesScanned != serial.TuplesScanned ||
		parallel.Comparisons != serial.Comparisons {
		t.Fatalf("System.Query differs by workers: parallel (count %d, tuples %d, cmp %d) vs serial (%d, %d, %d)",
			parallel.Count, parallel.TuplesScanned, parallel.Comparisons,
			serial.Count, serial.TuplesScanned, serial.Comparisons)
	}
}
