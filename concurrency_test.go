package els

import (
	"sync"
	"testing"
)

// A System is safe for concurrent read-only use once loading is complete:
// many goroutines estimating and executing against the same catalog and
// data must not race (verified under -race) and must agree on results.
func TestConcurrentQueries(t *testing.T) {
	sys := New()
	for i, name := range []string{"A", "B", "C"} {
		if err := sys.GenerateTable(name, "k", "uniform", 300, 30, 0, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	sql := "SELECT COUNT(*) FROM A, B, C WHERE A.k = B.k AND B.k = C.k"
	baseline, err := sys.Query(sql, AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*2)
	counts := make(chan int64, workers*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(algo Algorithm) {
			defer wg.Done()
			res, err := sys.Query(sql, algo)
			if err != nil {
				errs <- err
				return
			}
			counts <- res.Count
			if _, err := sys.Estimate(sql, algo); err != nil {
				errs <- err
			}
		}(Algorithms()[w%4])
	}
	wg.Wait()
	close(errs)
	close(counts)
	for err := range errs {
		t.Fatal(err)
	}
	for c := range counts {
		if c != baseline.Count {
			t.Errorf("concurrent count %d != baseline %d", c, baseline.Count)
		}
	}
}
