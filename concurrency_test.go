package els

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// A System is safe for concurrent read-only use once loading is complete:
// many goroutines estimating and executing against the same catalog and
// data must not race (verified under -race) and must agree on results.
func TestConcurrentQueries(t *testing.T) {
	sys := New()
	for i, name := range []string{"A", "B", "C"} {
		if err := sys.GenerateTable(name, "k", "uniform", 300, 30, 0, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	sql := "SELECT COUNT(*) FROM A, B, C WHERE A.k = B.k AND B.k = C.k"
	baseline, err := sys.Query(sql, AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*2)
	counts := make(chan int64, workers*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(algo Algorithm) {
			defer wg.Done()
			res, err := sys.Query(sql, algo)
			if err != nil {
				errs <- err
				return
			}
			counts <- res.Count
			if _, err := sys.Estimate(sql, algo); err != nil {
				errs <- err
			}
		}(Algorithms()[w%4])
	}
	wg.Wait()
	close(errs)
	close(counts)
	for err := range errs {
		t.Fatal(err)
	}
	for c := range counts {
		if c != baseline.Count {
			t.Errorf("concurrent count %d != baseline %d", c, baseline.Count)
		}
	}
}

// Cancelling a context from another goroutine while the executor is mid-join
// must terminate the query promptly with a clean ErrCanceled — no panic, no
// partial-result success — and must not disturb concurrent uncancelled
// queries (verified under -race).
func TestCancelMidExecution(t *testing.T) {
	sys := New()
	// Single-value columns so every join degenerates to a full cross
	// product: 80^3 candidate tuples give cancellation plenty of runway
	// while staying cheap enough for the uncancelled bystander below.
	for _, name := range []string{"X", "Y", "Z"} {
		if err := sys.GenerateTable(name, "k", "uniform", 80, 1, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	sql := "SELECT COUNT(*) FROM X, Y, Z WHERE X.k = Y.k AND Y.k = Z.k"

	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	go func() {
		<-started
		cancel()
	}()

	var wg sync.WaitGroup
	wg.Add(1)
	var bystanderErr error
	go func() {
		defer wg.Done()
		// An ungoverned query on the same system keeps running to completion
		// while its sibling is cancelled.
		_, bystanderErr = sys.Query(sql, AlgorithmELS)
	}()

	close(started)
	_, err := sys.QueryContext(ctx, sql, AlgorithmELS)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	wg.Wait()
	if bystanderErr != nil {
		t.Fatalf("uncancelled sibling query failed: %v", bystanderErr)
	}

	// The system remains fully usable after the cancellation.
	if _, err := sys.Query(sql, AlgorithmELS); err != nil {
		t.Fatalf("query after cancel: %v", err)
	}
}
