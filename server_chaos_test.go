package els_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/chaos"
)

// TestServerChaos is the networked serving soak: a multi-tenant wire
// server hosts durable tenant bulkheads while per-tenant client swarms
// issue estimates, executed queries, mutations, deadline-bounded calls,
// and overload floods; saboteur clients tear frames, corrupt checksums,
// and vanish mid-request; one tenant is poisoned into quarantine by
// injected panics; and the server drains gracefully under live traffic
// before restarting over the same data root. The audits: estimates never
// cross a tenant boundary (every probe lands in its tenant's published
// cardinality band at its pinned version), every client-observed failure
// matches a public taxonomy sentinel, the drain leaks no connection or
// admission slot, and every tenant — including the quarantined one —
// recovers its exact pre-drain catalog identity (version:digest). Run
// with -race in CI; CHAOS_LOG captures the JSONL event log artifact.
func TestServerChaos(t *testing.T) {
	cfg := chaos.ServerConfig{
		Seed:             42,
		DataRoot:         t.TempDir(),
		Tenants:          3,
		WorkersPerTenant: 4,
		OpsPerWorker:     30,
	}
	if testing.Short() {
		cfg.WorkersPerTenant = 3
		cfg.OpsPerWorker = 12
	}
	if logF := chaosLog(t); logF != nil {
		cfg.LogW = logF
	}

	before := goroutineCount()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := chaos.RunServer(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Ops == 0 {
		t.Fatal("the fleet issued no operations")
	}
	if rep.Succeeded == 0 {
		t.Error("no operation succeeded — the storm drowned the server entirely")
	}
	if rep.Observations == 0 {
		t.Error("no isolation observation collected — the cross-tenant audit never ran")
	}
	if rep.PoisonedTenant == "" {
		t.Error("no tenant was poisoned")
	}
	if len(rep.Digests) != cfg.Tenants {
		t.Errorf("recovered %d tenant digests, want %d", len(rep.Digests), cfg.Tenants)
	}
	if rep.ErrorsByClass["overloaded"] == 0 {
		t.Error("no overload shed observed — the swarm never contended the admission queue")
	}
	t.Logf("server chaos: %d ops (%d ok), %d observations, drain %.1fms, poisoned %s, errors %v",
		rep.Ops, rep.Succeeded, rep.Observations, rep.DrainMillis, rep.PoisonedTenant, rep.ErrorsByClass)

	// Let the OS reap closed-connection goroutines before the leak check.
	deadline := time.Now().Add(5 * time.Second)
	for goroutineCount() > before && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if after := goroutineCount(); after > before {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutine leak: %d before storm, %d after\n%s",
			before, after, buf[:runtime.Stack(buf, true)])
	}
}
