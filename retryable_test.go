package els_test

import (
	"fmt"
	"testing"

	els "repro"
)

// Retryable is the single classification shared by the in-process retry
// loop, the database/sql driver, and the wire server's retryable flag:
// transient internal errors, load-dependent overload sheds, and
// stale-replica rejections retry; everything deterministic or sticky does
// not.
func TestRetryablePredicate(t *testing.T) {
	retry := []error{els.ErrInternal, els.ErrOverloaded, els.ErrStaleReplica}
	never := []error{
		els.ErrParse, els.ErrBadStats, els.ErrCanceled, els.ErrBudgetExceeded,
		els.ErrClosed, els.ErrDurability, els.ErrDiverged, els.ErrBadWire, els.ErrTenant,
	}
	for _, err := range retry {
		if !els.Retryable(err) {
			t.Errorf("Retryable(%v) = false, want true", err)
		}
		// Wrapping preserves the classification.
		if !els.Retryable(fmt.Errorf("outer: %w", err)) {
			t.Errorf("Retryable(wrapped %v) = false, want true", err)
		}
	}
	for _, err := range never {
		if els.Retryable(err) {
			t.Errorf("Retryable(%v) = true, want false", err)
		}
	}
	if els.Retryable(nil) {
		t.Error("Retryable(nil) = true")
	}
	// A structured tenant error (quarantine) is sticky until restart.
	if els.Retryable(&els.TenantError{Tenant: "x", Reason: "quarantined", Quarantined: true}) {
		t.Error("Retryable(quarantine) = true, want false")
	}
}
