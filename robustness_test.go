package els

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/cardest"
	"repro/internal/catalog"
	"repro/internal/executor"
	"repro/internal/faultinject"
)

// loadedSystem returns a system with three joinable data tables.
func loadedSystem(t *testing.T) *System {
	t.Helper()
	sys := New()
	for i, name := range []string{"A", "B", "C"} {
		if err := sys.GenerateTable(name, "k", "uniform", 200, 20, 0, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

const joinSQL = "SELECT COUNT(*) FROM A, B, C WHERE A.k = B.k AND B.k = C.k"

// A context that is dead on arrival must yield ErrCanceled from every
// public entry point without doing any work.
func TestPreCancelledContext(t *testing.T) {
	sys := loadedSystem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := sys.QueryContext(ctx, joinSQL, AlgorithmELS); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Query: want ErrCanceled, got %v", err)
	}
	if _, err := sys.EstimateContext(ctx, joinSQL, AlgorithmELS); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Estimate: want ErrCanceled, got %v", err)
	}
	if _, err := sys.ExplainContext(ctx, joinSQL, AlgorithmELS); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Explain: want ErrCanceled, got %v", err)
	}
	if _, err := sys.EstimateOrderContext(ctx, joinSQL, AlgorithmELS, []string{"A", "B", "C"}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("EstimateOrder: want ErrCanceled, got %v", err)
	}
	if _, err := sys.CompareAlgorithmsContext(ctx, joinSQL); !errors.Is(err, ErrCanceled) {
		t.Fatalf("CompareAlgorithms: want ErrCanceled, got %v", err)
	}
}

// A one-tuple budget must abort execution with ErrBudgetExceeded naming
// the tuples resource.
func TestTupleBudget(t *testing.T) {
	sys := loadedSystem(t)
	sys.SetLimits(Limits{MaxTuples: 1})
	_, err := sys.Query(joinSQL, AlgorithmELS)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Resource != "tuples" {
		t.Fatalf("want tuples BudgetError, got %#v", err)
	}
	// Estimation does not scan tuples, so it stays unaffected.
	if _, err := sys.Estimate(joinSQL, AlgorithmELS); err != nil {
		t.Fatalf("estimate under tuple budget: %v", err)
	}
}

// A one-row materialization budget must abort execution.
func TestRowBudget(t *testing.T) {
	sys := loadedSystem(t)
	sys.SetLimits(Limits{MaxRows: 1})
	if _, err := sys.Query(joinSQL, AlgorithmELS); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
}

// A one-plan budget must abort planning, and therefore pure estimation
// too.
func TestPlanBudget(t *testing.T) {
	sys := loadedSystem(t)
	sys.SetLimits(Limits{MaxPlans: 1})
	if _, err := sys.Estimate(joinSQL, AlgorithmELS); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("estimate: want ErrBudgetExceeded, got %v", err)
	}
	if _, err := sys.Query(joinSQL, AlgorithmELS); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("query: want ErrBudgetExceeded, got %v", err)
	}
	sys.SetLimits(Limits{})
	if _, err := sys.Query(joinSQL, AlgorithmELS); err != nil {
		t.Fatalf("zero limits must lift governance: %v", err)
	}
}

// An immediate wall-clock deadline must abort with the wall-clock budget
// error.
func TestWallClockBudget(t *testing.T) {
	sys := loadedSystem(t)
	sys.SetLimits(Limits{Timeout: time.Nanosecond})
	time.Sleep(time.Millisecond)
	err := sysQueryAnyEntry(sys)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Resource != "wall-clock" {
		t.Fatalf("want wall-clock BudgetError, got %#v", err)
	}
}

func sysQueryAnyEntry(sys *System) error {
	_, err := sys.Query(joinSQL, AlgorithmELS)
	return err
}

// A panic injected deep in the executor must be recovered at the API
// boundary as ErrInternal carrying the stack, not crash the caller.
func TestPanicRecovery(t *testing.T) {
	defer faultinject.Reset()
	sys := loadedSystem(t)
	faultinject.Enable(executor.PointScan, faultinject.Fault{PanicValue: "scan exploded", Times: 1})
	_, err := sys.Query(joinSQL, AlgorithmELS)
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("want ErrInternal, got %v", err)
	}
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("want InternalError, got %T", err)
	}
	if ie.Value != "scan exploded" || len(ie.Stack) == 0 {
		t.Fatalf("internal error must carry panic value and stack, got %#v", ie)
	}
	// The system stays usable afterwards.
	if _, err := sys.Query(joinSQL, AlgorithmELS); err != nil {
		t.Fatalf("query after recovered panic: %v", err)
	}
}

// A panic injected during estimator construction is likewise recovered.
func TestPanicRecoveryInEstimator(t *testing.T) {
	defer faultinject.Reset()
	sys := loadedSystem(t)
	faultinject.Enable(cardest.PointNewQuery, faultinject.Fault{PanicValue: "stats exploded", Times: 1})
	if _, err := sys.Estimate(joinSQL, AlgorithmELS); !errors.Is(err, ErrInternal) {
		t.Fatalf("want ErrInternal, got %v", err)
	}
}

// An injected executor failure surfaces as a plain error (no panic, no
// hang), and the injection disarms itself.
func TestInjectedExecutorError(t *testing.T) {
	defer faultinject.Reset()
	sys := loadedSystem(t)
	boom := errors.New("disk on fire")
	faultinject.Enable(executor.PointJoin, faultinject.Fault{Err: boom, Times: 1})
	if _, err := sys.Query(joinSQL, AlgorithmELS); !errors.Is(err, boom) {
		t.Fatalf("want injected error, got %v", err)
	}
	if _, err := sys.Query(joinSQL, AlgorithmELS); err != nil {
		t.Fatalf("after disarm: %v", err)
	}
}

// Corrupt catalog statistics (NaN / negative cardinalities injected at the
// estimator's probe point) must degrade to the documented fallbacks and
// still produce a finite, non-negative estimate with warnings attached.
func TestCorruptStatsEstimateStaysFinite(t *testing.T) {
	defer faultinject.Reset()
	sys := loadedSystem(t)
	faultinject.Enable(cardest.PointNewQuery, faultinject.Fault{
		Payload: func(ts *catalog.TableStats) {
			ts.Card = math.NaN()
			for _, cs := range ts.Columns {
				cs.Distinct = -7
			}
		},
		Times: 1,
	})
	est, err := sys.Estimate(joinSQL, AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(est.FinalSize) || math.IsInf(est.FinalSize, 0) || est.FinalSize < 0 {
		t.Fatalf("estimate %g is not finite and non-negative", est.FinalSize)
	}
	if len(est.Warnings) == 0 {
		t.Fatal("degraded estimate must carry warnings")
	}
	for _, w := range est.Warnings {
		if strings.Contains(w, "invalid") {
			return
		}
	}
	t.Fatalf("warnings do not mention the repair: %v", est.Warnings)
}

// Explain surfaces degradation warnings to humans.
func TestExplainShowsWarnings(t *testing.T) {
	defer faultinject.Reset()
	sys := loadedSystem(t)
	faultinject.Enable(cardest.PointNewQuery, faultinject.Fault{
		Payload: func(ts *catalog.TableStats) { ts.Card = math.NaN() },
		Times:   1,
	})
	out, err := sys.Explain(joinSQL, AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "warning:") {
		t.Fatalf("explain output lacks warnings:\n%s", out)
	}
}

// A catalog-load failure injected at ANALYZE surfaces as a plain typed
// error from the loading API.
func TestInjectedAnalyzeFailure(t *testing.T) {
	defer faultinject.Reset()
	boom := errors.New("stats collector crashed")
	faultinject.Enable(catalog.PointAnalyze, faultinject.Fault{Err: boom, Times: 1})
	sys := New()
	err := sys.LoadTable("T", []string{"x"}, [][]int64{{1}, {2}})
	if !errors.Is(err, boom) {
		t.Fatalf("want injected analyze error, got %v", err)
	}
}

// Declaring garbage statistics is rejected up front with ErrBadStats.
func TestDeclareStatsRejectsGarbage(t *testing.T) {
	sys := New()
	if err := sys.DeclareStats("R", -1, nil); !errors.Is(err, ErrBadStats) {
		t.Fatalf("negative rows: want ErrBadStats, got %v", err)
	}
	if err := sys.DeclareStats("R", math.NaN(), nil); !errors.Is(err, ErrBadStats) {
		t.Fatalf("NaN rows: want ErrBadStats, got %v", err)
	}
	if err := sys.DeclareStats("R", 10, map[string]float64{"x": -2}); !errors.Is(err, ErrBadStats) {
		t.Fatalf("negative distinct: want ErrBadStats, got %v", err)
	}
}

// Malformed SQL fails with ErrParse (and not any other class).
func TestParseErrorsAreTyped(t *testing.T) {
	sys := loadedSystem(t)
	_, err := sys.Query("SELECT FROM WHERE", AlgorithmELS)
	if !errors.Is(err, ErrParse) {
		t.Fatalf("want ErrParse, got %v", err)
	}
	if errors.Is(err, ErrInternal) || errors.Is(err, ErrBudgetExceeded) {
		t.Fatal("parse failure must not match other classes")
	}
}
