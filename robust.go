package els

import (
	"errors"
	"fmt"
	"runtime/debug"

	"repro/internal/admission"
	"repro/internal/durable"
	"repro/internal/governor"
)

// The public error taxonomy. Every failure returned by Query, Estimate,
// Explain, and their context variants matches one of these sentinels under
// errors.Is, so callers can branch on failure class without string
// matching:
//
//	res, err := sys.QueryContext(ctx, sql, els.AlgorithmELS)
//	switch {
//	case errors.Is(err, els.ErrCanceled):       // caller gave up
//	case errors.Is(err, els.ErrBudgetExceeded): // resource limit hit
//	case errors.Is(err, els.ErrMemory):         // byte budget exhausted
//	case errors.Is(err, els.ErrParse):          // bad query
//	case errors.Is(err, els.ErrBadStats):       // rejected statistics
//	case errors.Is(err, els.ErrOverloaded):     // shed; resubmit later
//	case errors.Is(err, els.ErrClosed):         // system draining/closed
//	case errors.Is(err, els.ErrInternal):       // recovered panic (bug)
//	}
//
// Catalog mutations on a durable system (els.Open) can additionally fail
// with ErrDurability: the write-ahead log or checkpoint could not be made
// durable, nothing was published, and the catalog is frozen against
// further writes until the directory is reopened.
//
// Reads on a replica (els.OpenReplica) can additionally fail with
// ErrStaleReplica — the replica trails the primary past
// Limits.MaxReplicaLag; retry or fail over to the primary — or
// ErrDiverged — the replica failed its catalog digest audit and is
// quarantined until re-attached and resynchronized.
//
// errors.As exposes the structured details: *els.BudgetError names the
// exhausted resource and its limit; *els.InternalError carries the panic
// value and stack; *els.OverloadError names why admission shed the query;
// *els.StaleReplicaError carries the observed lag and bound;
// *els.DivergenceError carries the digests that disagreed.
var (
	ErrCanceled       = governor.ErrCanceled
	ErrBudgetExceeded = governor.ErrBudgetExceeded
	ErrBadStats       = governor.ErrBadStats
	ErrParse          = governor.ErrParse
	ErrInternal       = governor.ErrInternal
	ErrOverloaded     = governor.ErrOverloaded
	ErrClosed         = governor.ErrClosed
	ErrDurability     = governor.ErrDurability
	ErrStaleReplica   = governor.ErrStaleReplica
	ErrDiverged       = governor.ErrDiverged
	ErrBadWire        = governor.ErrBadWire
	ErrTenant         = governor.ErrTenant
	ErrMemory         = governor.ErrMemory
)

// Retryable reports whether err names a failure worth retrying: internal
// errors (ErrInternal — this attempt hit a bug or injected fault, the next
// may not), overload sheds (ErrOverloaded — a property of the system's
// load at that instant, not of the query), and stale-replica rejections
// (ErrStaleReplica — replicas catch up). Parse errors, bad statistics,
// cancellation, budget exhaustion (time/tuple/row/plan and memory alike),
// closed systems, durability freezes, divergence quarantines, and tenant
// quarantines are deterministic for the same submission and never retry.
//
// Retryable is the single classification shared by the in-process retry
// loop (SetRetryPolicy), the database/sql driver's resubmission policy,
// and wire responses' retryable flag, so every layer agrees on what "try
// again" means. The wirecover analyzer holds it to that: the declared
// retry set below must match every other //wirecover:retryset in the
// dependency graph.
//
//wirecover:retryset
func Retryable(err error) bool {
	return errors.Is(err, ErrInternal) || errors.Is(err, ErrOverloaded) ||
		errors.Is(err, ErrStaleReplica)
}

// Limits configures per-query resource budgets, the intra-query
// parallelism degree (Limits.Workers; 0 = GOMAXPROCS, 1 = serial — results
// are identical at any setting), and system-wide admission control
// (MaxConcurrent, MaxQueue, QueueTimeout); see SetLimits. The zero value
// enforces nothing.
type Limits = governor.Limits

// BudgetError details which resource budget a query exhausted.
type BudgetError = governor.BudgetError

// InternalError details a panic recovered at the API boundary.
type InternalError = governor.InternalError

// OverloadError details why admission control shed a query: the queue was
// full, the queue deadline elapsed, or the circuit breaker is open.
type OverloadError = governor.OverloadError

// StaleReplicaError details a read rejected on a lagging replica: which
// replica, how far behind it was, and the MaxReplicaLag bound in force.
type StaleReplicaError = governor.StaleReplicaError

// DivergenceError details a failed replica digest audit: which replica,
// at which catalog version, and the hex SHA-256 digests that disagreed.
type DivergenceError = governor.DivergenceError

// TenantError details a request a multi-tenant server (cmd/elsserve)
// refused to route: which tenant it addressed, why it was unavailable, and
// whether a bulkhead quarantine (rather than absence) is the cause.
type TenantError = governor.TenantError

// MemoryError details a query killed by its byte budget: which operator
// needed memory it could not spill its way out of, how much it asked for,
// and the Limits.MaxMemory in force. It is deterministic for the same
// submission and never retried.
type MemoryError = governor.MemoryError

// MemoryPressureError details a query the multi-tenant server's memory
// pool shed before admission: the tenant, the bytes it would have
// reserved, and the share already in use. Unlike MemoryError it unwraps to
// ErrOverloaded — pool pressure is a property of instantaneous load, so
// the shed is retryable and carries a Retry-After hint on the wire.
type MemoryPressureError = governor.MemoryPressureError

// SetLimits installs default resource limits applied to every subsequent
// query on this system (each call gets a fresh budget), and reconfigures
// admission control from the MaxConcurrent/MaxQueue/QueueTimeout fields
// (applying to queries admitted from now on; already-admitted queries are
// never evicted). Concurrent queries are each governed independently. Pass
// the zero Limits to remove them.
func (s *System) SetLimits(l Limits) {
	s.mu.Lock()
	s.limits = l
	s.mu.Unlock()
	s.adm.SetConfig(admission.Config{
		MaxConcurrent: l.MaxConcurrent,
		MaxQueue:      l.MaxQueue,
		QueueTimeout:  l.QueueTimeout,
	})
	if s.dur != nil {
		s.dur.SetOptions(durable.Options{
			CheckpointEvery: l.CheckpointEvery,
			NoFsync:         l.NoFsync,
		})
	}
	if s.cache != nil {
		s.cache.SetCapacity(l.PlanCacheSize)
	}
}

// Limits returns the system's current default resource limits.
func (s *System) Limits() Limits {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.limits
}

// recovered converts a panic captured at the public API boundary into an
// ErrInternal carrying the panic value and stack, so a bug in the pipeline
// surfaces as a typed error instead of killing the process embedding the
// library.
func recovered(err *error) {
	if r := recover(); r != nil {
		*err = governor.NewInternal(r, debug.Stack())
	}
}

// wrapParse tags front-end failures (lexing, parsing, binding) with
// ErrParse while preserving the original error chain.
func wrapParse(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrParse, err)
}
