package els

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cardest"
	"repro/internal/executor"
	"repro/internal/faultinject"
)

// The three structured error types are reachable through errors.As from
// public API failures, and their messages carry the structured details a
// caller would otherwise have to parse out.
func TestStructuredErrorSurface(t *testing.T) {
	t.Run("BudgetError", func(t *testing.T) {
		sys := testServeSystem(t)
		sys.SetLimits(Limits{MaxTuples: 10})
		_, err := sys.Query(serveJoinSQL, AlgorithmELS)
		var be *BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("err = %v, want BudgetError", err)
		}
		if be.Resource != "tuples" || be.Limit != 10 {
			t.Fatalf("BudgetError = %+v", be)
		}
		for _, want := range []string{"tuples", "10"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("message %q missing %q", err.Error(), want)
			}
		}
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Error("BudgetError must unwrap to ErrBudgetExceeded")
		}
	})

	t.Run("InternalError", func(t *testing.T) {
		sys := testServeSystem(t)
		faultinject.Enable(cardest.PointNewQuery, faultinject.Fault{PanicValue: "kaboom-424242"})
		defer faultinject.Reset()
		_, err := sys.Estimate(serveJoinSQL, AlgorithmELS)
		var ie *InternalError
		if !errors.As(err, &ie) {
			t.Fatalf("err = %v, want InternalError", err)
		}
		if ie.Value != "kaboom-424242" || len(ie.Stack) == 0 {
			t.Fatalf("InternalError value %v, stack %d bytes", ie.Value, len(ie.Stack))
		}
		if !strings.Contains(err.Error(), "kaboom-424242") {
			t.Errorf("message %q missing panic value", err.Error())
		}
		if !errors.Is(err, ErrInternal) {
			t.Error("InternalError must unwrap to ErrInternal")
		}
	})

	t.Run("OverloadError", func(t *testing.T) {
		sys := testServeSystem(t)
		sys.SetLimits(Limits{MaxConcurrent: 1, MaxQueue: 1})
		// Occupy the only slot with a query slowed by an injected scan
		// latency, fill the one queue seat with a second query, then
		// assert the third sheds; cancel unblocks the first two.
		ctx, cancel := context.WithCancel(context.Background())
		faultinject.Enable(executor.PointScan, faultinject.Fault{Delay: 10 * time.Second, Times: 1})
		defer faultinject.Reset()
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = sys.QueryContext(ctx, serveJoinSQL, AlgorithmELS)
		}()
		for sys.RobustnessStats().InFlight == 0 {
			time.Sleep(time.Millisecond)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = sys.QueryContext(ctx, serveJoinSQL, AlgorithmELS)
		}()
		for sys.RobustnessStats().Waiting == 0 {
			time.Sleep(time.Millisecond)
		}
		_, err := sys.Query(serveJoinSQL, AlgorithmELS)
		var oe *OverloadError
		if !errors.As(err, &oe) {
			t.Fatalf("err = %v, want OverloadError", err)
		}
		if oe.Reason != "queue full" || oe.MaxConcurrent != 1 {
			t.Fatalf("OverloadError = %+v", oe)
		}
		for _, want := range []string{"overloaded", "queue full", "max-concurrent 1"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("message %q missing %q", err.Error(), want)
			}
		}
		if !errors.Is(err, ErrOverloaded) {
			t.Error("OverloadError must unwrap to ErrOverloaded")
		}
		cancel()
		wg.Wait()
	})
}

// Retry fires only on the transient class: deterministic failures
// (ErrParse, ErrBadStats) and caller-driven aborts (ErrCanceled) run the
// pipeline exactly once — or never — regardless of the retry policy.
func TestRetryNeverFiresOnDeterministicFailures(t *testing.T) {
	const maxAttempts = 4
	cases := []struct {
		name string
		// arm optionally arms a fault; run issues the query.
		arm      func()
		run      func(sys *System) error
		sentinel error
		// wantHits is how many times the estimator pipeline may be entered:
		// 1 for failures inside the pipeline, 0 for failures before it.
		wantHits int64
	}{
		{
			name: "ErrInternal retries to exhaustion (control)",
			arm: func() {
				faultinject.Enable(cardest.PointNewQuery, faultinject.Fault{
					Err: fmt.Errorf("%w: injected", ErrInternal),
				})
			},
			run: func(sys *System) error {
				_, err := sys.Estimate(serveJoinSQL, AlgorithmELS)
				return err
			},
			sentinel: ErrInternal,
			wantHits: maxAttempts,
		},
		{
			name: "ErrBadStats runs once",
			arm: func() {
				faultinject.Enable(cardest.PointNewQuery, faultinject.Fault{
					Err: fmt.Errorf("%w: injected corrupt stats", ErrBadStats),
				})
			},
			run: func(sys *System) error {
				_, err := sys.Estimate(serveJoinSQL, AlgorithmELS)
				return err
			},
			sentinel: ErrBadStats,
			wantHits: 1,
		},
		{
			name: "ErrParse never reaches the pipeline",
			// A no-op fault that only counts pipeline entries.
			arm: func() { faultinject.Enable(cardest.PointNewQuery, faultinject.Fault{}) },
			run: func(sys *System) error {
				_, err := sys.Estimate("SELEC nonsense FROM", AlgorithmELS)
				return err
			},
			sentinel: ErrParse,
			wantHits: 0,
		},
		{
			name: "ErrCanceled aborts without attempts",
			arm:  func() { faultinject.Enable(cardest.PointNewQuery, faultinject.Fault{}) },
			run: func(sys *System) error {
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				_, err := sys.EstimateContext(ctx, serveJoinSQL, AlgorithmELS)
				return err
			},
			sentinel: ErrCanceled,
			wantHits: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			faultinject.Reset()
			defer faultinject.Reset()
			sys := testServeSystem(t)
			sys.SetRetryPolicy(RetryPolicy{MaxAttempts: maxAttempts, BaseDelay: 50 * time.Microsecond, Seed: 1})
			if tc.arm != nil {
				tc.arm()
			}
			err := tc.run(sys)
			if !errors.Is(err, tc.sentinel) {
				t.Fatalf("err = %v, want %v", err, tc.sentinel)
			}
			if hits := faultinject.Hits(cardest.PointNewQuery); hits != tc.wantHits {
				t.Fatalf("pipeline entered %d times, want %d", hits, tc.wantHits)
			}
		})
	}
}
