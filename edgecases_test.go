package els

import (
	"math"
	"strings"
	"testing"
)

// Query caps materialized rows at MaxRows but still counts everything.
func TestQueryRowCap(t *testing.T) {
	sys := New()
	rows := make([][]int64, MaxRows+500)
	for i := range rows {
		rows[i] = []int64{int64(i)}
	}
	if err := sys.LoadTable("Big", []string{"k"}, rows); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query("SELECT Big.k FROM Big", AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != int64(MaxRows+500) {
		t.Errorf("count = %d, want %d", res.Count, MaxRows+500)
	}
	if len(res.Rows) != MaxRows {
		t.Errorf("materialized rows = %d, want cap %d", len(res.Rows), MaxRows)
	}
}

// COUNT(*) queries do not materialize output columns.
func TestCountStarNoMaterialization(t *testing.T) {
	sys := New()
	if err := sys.LoadTable("T", []string{"k"}, [][]int64{{1}, {2}}); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query("SELECT COUNT(*) FROM T", AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 || len(res.Columns) != 0 {
		t.Errorf("COUNT(*) should not materialize: %v %v", res.Columns, res.Rows)
	}
}

// Explain under an algorithm without closure shows no implied predicates.
func TestExplainWithoutClosure(t *testing.T) {
	sys := New()
	sys.MustDeclareStats("A", 100, map[string]float64{"k": 10})
	sys.MustDeclareStats("B", 100, map[string]float64{"k": 10})
	out, err := sys.Explain("SELECT COUNT(*) FROM A, B WHERE A.k = B.k", AlgorithmSM)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "implied by transitive closure") {
		t.Errorf("SM explain should show no implied predicates:\n%s", out)
	}
}

// Self-joins through aliases work end to end.
func TestSelfJoinExecution(t *testing.T) {
	sys := New()
	if err := sys.LoadTable("E", []string{"id", "mgr"}, [][]int64{
		{1, 0}, {2, 1}, {3, 1}, {4, 2},
	}); err != nil {
		t.Fatal(err)
	}
	// Employees whose manager's manager is employee 0: ids 4 (mgr 2 -> mgr 1? no: 2's mgr is 1, 1's mgr is 0)...
	// Count pairs (e, m) where e.mgr = m.id.
	res, err := sys.Query("SELECT COUNT(*) FROM E e, E m WHERE e.mgr = m.id", AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	// e=2→m=1, e=3→m=1, e=4→m=2: 3 pairs.
	if res.Count != 3 {
		t.Errorf("self-join count = %d, want 3", res.Count)
	}
}

// Estimating a query whose predicates contradict yields zero without
// breaking the planner or executor.
func TestContradictoryPredicates(t *testing.T) {
	sys := New()
	if err := sys.LoadTable("T", []string{"k"}, [][]int64{{1}, {2}, {3}}); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query("SELECT COUNT(*) FROM T WHERE k = 1 AND k = 2", AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 0 {
		t.Errorf("contradiction count = %d", res.Count)
	}
	if res.Estimate.FinalSize != 0 {
		t.Errorf("contradiction estimate = %g, want 0", res.Estimate.FinalSize)
	}
}

// Duplicate predicates (ELS step 1) neither change estimates nor results.
func TestDuplicatePredicatesIgnored(t *testing.T) {
	sys := New()
	if err := sys.LoadTable("T", []string{"k"}, [][]int64{{1}, {2}, {3}, {4}}); err != nil {
		t.Fatal(err)
	}
	a, err := sys.Query("SELECT COUNT(*) FROM T WHERE k > 1", AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.Query("SELECT COUNT(*) FROM T WHERE k > 1 AND k > 1 AND k > 1", AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if a.Count != b.Count || a.Estimate.FinalSize != b.Estimate.FinalSize {
		t.Errorf("duplicates changed outcome: %d/%g vs %d/%g",
			a.Count, a.Estimate.FinalSize, b.Count, b.Estimate.FinalSize)
	}
}

// The paper's multi-local-predicate resolution surfaces through the facade:
// a range pair forms the tightest bound; an equality wins over ranges.
func TestMultiplePredicatesPerColumn(t *testing.T) {
	sys := New()
	sys.MustDeclareStats("R", 1000, map[string]float64{"x": 1000})
	est, err := sys.Estimate("SELECT COUNT(*) FROM R WHERE x >= 100 AND x < 300 AND x < 900", AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	// Tightest bound: [100, 300) = 200 of 1000 values (float tolerance for
	// the P(a)+P(b)−1 range intersection).
	if math.Abs(est.FinalSize-200) > 1e-9 {
		t.Errorf("tightest-range estimate = %g, want 200", est.FinalSize)
	}
	est, err = sys.Estimate("SELECT COUNT(*) FROM R WHERE x < 900 AND x = 5", AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if est.FinalSize != 1 {
		t.Errorf("equality-wins estimate = %g, want 1", est.FinalSize)
	}
}

// The j-equivalence machinery surfaces through the facade: joining both of
// a table's columns to the same column elsewhere implies the local equality
// and triggers the Section 6 fold.
func TestSection6ThroughFacade(t *testing.T) {
	sys := New()
	sys.MustDeclareStats("R1", 100, map[string]float64{"x": 100})
	sys.MustDeclareStats("R2", 1000, map[string]float64{"y": 10, "w": 50})
	est, err := sys.Estimate(
		"SELECT COUNT(*) FROM R1, R2 WHERE R1.x = R2.y AND R1.x = R2.w", AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	// ‖R2‖′ = ⌈1000/50⌉ = 20, d′ = 9 (urn), join sel = 1/max(100, 9):
	// 100 × 20 / 100 = 20.
	if est.FinalSize != 20 {
		t.Errorf("Section 6 estimate = %g, want 20", est.FinalSize)
	}
	found := false
	for _, p := range est.ImpliedPredicates {
		if strings.Contains(p, "R2.w") && strings.Contains(p, "R2.y") {
			found = true
		}
	}
	if !found {
		t.Errorf("implied local equality missing: %v", est.ImpliedPredicates)
	}
}
