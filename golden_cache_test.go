package els_test

import (
	"fmt"
	"testing"

	els "repro"
	"repro/internal/experiment"
)

// The golden T1 pin, served twice through the public API: the cold pass
// plans every row from scratch, the second pass — same catalog version —
// must be served entirely from plan-cache hits and still reproduce the
// paper's printed values digit for digit at six significant figures. A
// cache that perturbed so much as the last digit of an estimate would
// fail the same assertions the cold path is pinned by.
func TestGoldenEstimatesServedFromCache(t *testing.T) {
	sys := els.New()
	sys.MustDeclareStats("S", 1000, map[string]float64{"s": 1000})
	sys.MustDeclareStats("M", 10000, map[string]float64{"m": 10000})
	sys.MustDeclareStats("B", 50000, map[string]float64{"b": 50000})
	sys.MustDeclareStats("G", 100000, map[string]float64{"g": 100000})

	pins := []struct {
		algo  els.Algorithm
		order []string
		sizes []string
	}{
		{els.AlgorithmSM, []string{"S", "M", "B", "G"}, []string{"100", "100", "100"}},
		{els.AlgorithmSMPTC, []string{"S", "B", "M", "G"}, []string{"0.2", "4e-08", "4e-21"}},
		{els.AlgorithmSSS, []string{"S", "B", "M", "G"}, []string{"0.2", "0.0004", "4e-07"}},
		{els.AlgorithmELS, []string{"S", "B", "M", "G"}, []string{"100", "100", "100"}},
	}
	check := func(pass string) {
		t.Helper()
		for _, p := range pins {
			est, err := sys.EstimateOrder(experiment.Section8Query, p.algo, p.order)
			if err != nil {
				t.Fatalf("%s pass, %s: %v", pass, p.algo, err)
			}
			if len(est.Steps) != len(p.sizes) {
				t.Fatalf("%s pass, %s: %d steps, want %d", pass, p.algo, len(est.Steps), len(p.sizes))
			}
			for j, want := range p.sizes {
				if got := fmt.Sprintf("%.6g", est.Steps[j].Size); got != want {
					t.Errorf("%s pass, %s step %d = %s, want %s digit-for-digit",
						pass, p.algo, j, got, want)
				}
			}
		}
	}

	check("cold")
	afterCold := sys.CacheStats()
	if afterCold.Misses != uint64(len(pins)) || afterCold.Hits != 0 {
		t.Fatalf("cold pass: stats %+v, want %d misses and 0 hits", afterCold, len(pins))
	}
	check("cached")
	afterWarm := sys.CacheStats()
	if afterWarm.Misses != afterCold.Misses {
		t.Fatalf("second pass missed the cache: %+v", afterWarm)
	}
	if afterWarm.Hits != uint64(len(pins)) {
		t.Fatalf("second pass: %d hits, want %d (every pin served from cache)",
			afterWarm.Hits, len(pins))
	}
}
