// Package els is a Go implementation of Algorithm ELS from "On the
// Estimation of Join Result Sizes" (Swami & Schiefer, EDBT 1994), packaged
// as a small analytical query system: an in-memory relational store, an
// ANALYZE-style statistics collector, a SQL front end for conjunctive
// select-project-join queries, a System-R style optimizer whose cardinality
// estimator is pluggable, and an executor.
//
// The headline API is estimation: given table statistics and a query, the
// system estimates intermediate join result sizes under any of the paper's
// algorithms — the multiplicative Rule M of Selinger et al. (Algorithm SM),
// the smallest-selectivity Rule SS (Algorithm SSS), the
// representative-selectivity proposal, and the paper's Algorithm ELS
// (equivalence classes + effective statistics + largest-selectivity Rule
// LS) — and can then plan and execute the query so the impact of the
// estimates on real plans is observable.
//
// A minimal session:
//
//	sys := els.New()
//	sys.MustDeclareStats("R1", 100, map[string]float64{"x": 10})
//	sys.MustDeclareStats("R2", 1000, map[string]float64{"y": 100})
//	sys.MustDeclareStats("R3", 1000, map[string]float64{"z": 1000})
//	est, _ := sys.Estimate("SELECT COUNT(*) FROM R1, R2, R3 WHERE x = y AND y = z", els.AlgorithmELS)
//	fmt.Println(est.FinalSize) // 1000
package els

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/cardest"
	"repro/internal/catalog"
	"repro/internal/csvload"
	"repro/internal/datagen"
	"repro/internal/durable"
	"repro/internal/plancache"
	"repro/internal/replica"
	"repro/internal/selest"
	"repro/internal/snapshot"
	"repro/internal/storage"
)

// Algorithm selects the estimation algorithm, following the naming of the
// paper's Section 8 experiment.
type Algorithm int

const (
	// AlgorithmELS is the paper's algorithm: transitive closure, effective
	// statistics (local predicates folded per Section 5, single-table
	// j-equivalent columns per Section 6) and largest-selectivity Rule LS.
	AlgorithmELS Algorithm = iota
	// AlgorithmSM is the standard multiplicative algorithm (Selinger):
	// raw column cardinalities, Rule M, no transitive closure.
	AlgorithmSM
	// AlgorithmSMPTC is AlgorithmSM run after predicate transitive closure
	// (the paper's "Orig. + PTC" rows).
	AlgorithmSMPTC
	// AlgorithmSSS is the smallest-selectivity algorithm after transitive
	// closure.
	AlgorithmSSS
	// AlgorithmRepSmallest is the representative-selectivity proposal of
	// Section 3.3 using the smallest pairwise selectivity per class.
	AlgorithmRepSmallest
	// AlgorithmRepLargest is the representative-selectivity proposal using
	// the largest pairwise selectivity per class.
	AlgorithmRepLargest
	// AlgorithmELSHist is Algorithm ELS with histogram-based join
	// selectivities: the uniformity assumption for join columns is relaxed
	// using per-column histograms when available (the paper's Section 9
	// future-work extension). Tables loaded with LoadTableHist or analyzed
	// with histograms benefit; others fall back to Equation 2.
	AlgorithmELSHist
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgorithmELS:
		return "ELS"
	case AlgorithmSM:
		return "SM"
	case AlgorithmSMPTC:
		return "SM+PTC"
	case AlgorithmSSS:
		return "SSS+PTC"
	case AlgorithmRepSmallest:
		return "REP(smallest)"
	case AlgorithmRepLargest:
		return "REP(largest)"
	case AlgorithmELSHist:
		return "ELS+hist"
	default:
		return "unknown"
	}
}

// Config returns the internal estimator configuration for the algorithm.
func (a Algorithm) config() (cardest.Config, error) {
	switch a {
	case AlgorithmELS:
		return cardest.ELS(), nil
	case AlgorithmSM:
		return cardest.SM(), nil
	case AlgorithmSMPTC:
		return cardest.SM().WithClosure(), nil
	case AlgorithmSSS:
		return cardest.SSS().WithClosure(), nil
	case AlgorithmRepSmallest:
		return cardest.Config{Rule: cardest.RuleRepresentative, ApplyClosure: true,
			Rep: cardest.RepSmallest, Sel: selest.DefaultOptions()}, nil
	case AlgorithmRepLargest:
		return cardest.Config{Rule: cardest.RuleRepresentative, ApplyClosure: true,
			Rep: cardest.RepLargest, Sel: selest.DefaultOptions()}, nil
	case AlgorithmELSHist:
		cfg := cardest.ELS()
		cfg.Sel.HistogramJoins = true
		return cfg, nil
	default:
		return cardest.Config{}, fmt.Errorf("%w: unknown algorithm %d", ErrParse, int(a))
	}
}

// Algorithms lists every supported algorithm in a stable order.
func Algorithms() []Algorithm {
	return []Algorithm{AlgorithmELS, AlgorithmSM, AlgorithmSMPTC, AlgorithmSSS,
		AlgorithmRepSmallest, AlgorithmRepLargest, AlgorithmELSHist}
}

// System is a self-contained instance: catalog, optional data tables, and
// the estimation/planning/execution pipeline.
//
// A System serves concurrent callers. Every query pins an immutable
// copy-on-write catalog snapshot at admission, so statistics refresh
// (DeclareStats, ImportStats, LoadTable, ...) never blocks or corrupts
// in-flight estimation: a query sees exactly one published catalog
// version end to end, and Estimate.CatalogVersion reports which. The
// admission fields of Limits (MaxConcurrent, MaxQueue, QueueTimeout)
// bound concurrency and shed load with ErrOverloaded; SetRetryPolicy and
// SetBreaker add opt-in retry and circuit-breaking; Close drains the
// system. RobustnessStats observes all of it.
type System struct {
	store   *snapshot.Store       // versioned COW catalog
	adm     *admission.Controller // concurrency gate + drain
	breaker *admission.Breaker    // consecutive-internal-error circuit breaker
	dur     *durable.Store        // WAL + checkpoints; nil for in-memory systems (New)
	cache   *plancache.Cache      // version-keyed plan/estimate cache

	// Replication. On a primary, shipper streams acknowledged WAL records
	// to attached replicas (created lazily by AttachReplica). On the inner
	// system of an els.Replica, fol gates every read through the staleness
	// and quarantine checks until promoted flips.
	//lockorder:level 24
	shipMu   sync.Mutex
	shipper  *replica.Shipper
	fol      *replica.Follower
	promoted atomic.Bool

	// closing flips at the very start of Close, before the admission drain
	// begins, so AttachReplica and Checkpoint arriving during the drain
	// window fail fast with a typed ErrClosed instead of racing the
	// shipper/WAL teardown (or blocking behind it).
	closing atomic.Bool

	//lockorder:level 20
	mu     sync.RWMutex
	limits Limits // default per-query resource budgets (zero: ungoverned)

	// admObs, when installed, observes every admitted query's queue wait
	// (see SetAdmissionObserver). Guarded by mu.
	admObs func(wait time.Duration)

	retry    RetryPolicy // opt-in transient-error retry (zero: off)
	retryRng *rand.Rand  // seeded jitter source, guarded by retryMu
	//lockorder:level 22
	retryMu sync.Mutex

	retries        atomic.Uint64 // retry attempts performed
	retrySuccesses atomic.Uint64 // queries that succeeded after ≥1 retry

	// spillDir is the parent directory for per-query hash-join spill
	// dirs, guarded by mu. Open sets it to <dir>/spill (and sweeps
	// orphans at startup); empty — the default on in-memory systems —
	// spills under os.TempDir(). See SetSpillDir.
	spillDir string

	// Memory-governance counters, cumulative since New/Open.
	spilledQueries atomic.Uint64 // queries that spilled ≥1 hash-join build
	spilledBytes   atomic.Int64  // run-file bytes written by spills
	peakQueryBytes atomic.Int64  // largest single-query PeakMemoryBytes
}

// SetSpillDir sets the parent directory for per-query hash-join spill
// directories (the spill-to-disk path of Limits.MaxMemory; each query
// creates and removes its own subdirectory). Open defaults it to
// <dir>/spill, which the recovery sweep clears of crash orphans; on an
// in-memory system (New) the default is the operating system's temp
// directory.
func (s *System) SetSpillDir(dir string) {
	s.mu.Lock()
	s.spillDir = dir
	s.mu.Unlock()
}

// spillRoot returns the current spill parent directory.
func (s *System) spillRoot() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.spillDir
}

// noteMemory rolls one finished query's memory outcome into the system's
// cumulative counters (RobustnessStats).
func (s *System) noteMemory(peak, spills, spilled int64) {
	if spills > 0 {
		s.spilledQueries.Add(1)
		s.spilledBytes.Add(spilled)
	}
	for {
		cur := s.peakQueryBytes.Load()
		if peak <= cur || s.peakQueryBytes.CompareAndSwap(cur, peak) {
			return
		}
	}
}

// New creates an empty system.
func New() *System {
	s := &System{
		store:   snapshot.NewStore(catalog.New()),
		adm:     admission.New(admission.Config{}),
		breaker: admission.NewBreaker(admission.BreakerConfig{}),
	}
	s.initCache()
	return s
}

// initCache installs the plan/estimate cache and hangs its eager
// invalidation off every snapshot publication — local mutations, replica
// replay, and post-recovery writes alike. Correctness does not depend on
// this hook: the catalog version is part of every cache key, so an entry
// can never be served against a catalog it was not planned on (see
// internal/plancache); the hook just reclaims space for retired versions
// immediately.
func (s *System) initCache() {
	s.cache = plancache.New(0)
	// The publish hook runs while the snapshot store's writer lock is
	// still held (see snapshot.SetOnPublish), so the invalidation's lock
	// acquisition is ordered under it — invisibly to static call
	// resolution, hence the declared edge.
	//
	//lockorder:edge repro/internal/snapshot.Store.mu repro/internal/plancache.Cache.mu
	s.store.SetOnPublish(func(v uint64) { s.cache.Invalidate(v) })
}

// catalogNow returns the latest published catalog for metadata accessors.
// Queries must not use it: they pin a snapshot at admission instead.
func (s *System) catalogNow() *catalog.Catalog {
	return s.store.Current().Catalog()
}

// CatalogVersion returns the currently published catalog version. Versions
// start at 1 and advance by one on every successful catalog mutation.
func (s *System) CatalogVersion() uint64 { return s.store.Version() }

// mutate routes a catalog mutation through the copy-on-write store: the
// mutation runs on a clone and publishes a new catalog version atomically,
// or publishes nothing at all if it fails. Mutations are rejected once the
// system is closed.
func (s *System) mutate(fn func(*catalog.Catalog) error) error {
	if s.adm.Closed() {
		return fmt.Errorf("%w: catalog is read-only", ErrClosed)
	}
	return s.store.Mutate(fn)
}

// DeclareStats registers a table by statistics only (no data): rows is the
// table cardinality ‖R‖ and distinct maps column names to column
// cardinalities d. Columns are integer-typed with value domain
// [0, d−1], matching the uniformity setup of the paper's examples.
// Estimation works on declared tables; execution requires loaded data.
func (s *System) DeclareStats(name string, rows float64, distinct map[string]float64) error {
	if name == "" {
		return fmt.Errorf("%w: table name required", ErrBadStats)
	}
	if rows < 0 {
		return fmt.Errorf("%w: negative cardinality %g for table %s", ErrBadStats, rows, name)
	}
	return s.mutate(func(cat *catalog.Catalog) error {
		return cat.AddTable(catalog.SimpleTable(name, rows, distinct))
	})
}

// MustDeclareStats is DeclareStats but panics on error.
func (s *System) MustDeclareStats(name string, rows float64, distinct map[string]float64) {
	if err := s.DeclareStats(name, rows, distinct); err != nil {
		panic(err)
	}
}

// LoadTable creates an integer table with the given column names, loads the
// rows, and ANALYZEs it (exact statistics, no histograms). Use
// LoadTableHist to additionally build histograms.
func (s *System) LoadTable(name string, columns []string, rows [][]int64) error {
	return s.loadTable(name, columns, rows, catalog.AnalyzeOptions{})
}

// LoadTableHist is LoadTable with equi-depth histograms of the given bucket
// budget collected per column, enabling distribution statistics for local
// predicate selectivities (Section 5).
func (s *System) LoadTableHist(name string, columns []string, rows [][]int64, buckets int) error {
	return s.loadTable(name, columns, rows, catalog.AnalyzeOptions{
		HistogramBuckets: buckets, HistogramKind: catalog.EquiDepth,
	})
}

func (s *System) loadTable(name string, columns []string, rows [][]int64, opts catalog.AnalyzeOptions) error {
	if name == "" {
		return fmt.Errorf("%w: table name required", ErrBadStats)
	}
	if len(columns) == 0 {
		return fmt.Errorf("%w: at least one column required", ErrBadStats)
	}
	defs := make([]storage.ColumnDef, len(columns))
	for i, c := range columns {
		defs[i] = storage.ColumnDef{Name: c, Type: storage.TypeInt64}
	}
	schema, err := storage.NewSchema(defs...)
	if err != nil {
		return fmt.Errorf("els: %w", err)
	}
	tbl := storage.NewTable(name, schema)
	vals := make([]storage.Value, len(columns))
	for ri, row := range rows {
		if len(row) != len(columns) {
			return fmt.Errorf("%w: row %d has %d values, want %d", ErrBadStats, ri, len(row), len(columns))
		}
		for ci, v := range row {
			vals[ci] = storage.Int64(v)
		}
		if err := tbl.AppendRow(vals...); err != nil {
			return fmt.Errorf("els: %w", err)
		}
	}
	return s.mutate(func(cat *catalog.Catalog) error {
		_, err := cat.Analyze(tbl, opts)
		return err
	})
}

// LoadCSV reads a CSV file into a new table (types inferred per column:
// int64 → float64 → string) and ANALYZEs it; histBuckets > 0 additionally
// builds equi-depth histograms. header consumes the first row as column
// names.
func (s *System) LoadCSV(name, path string, header bool, histBuckets int) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("els: %w", err)
	}
	defer f.Close()
	return s.loadCSVReader(name, f, header, histBuckets, path)
}

// LoadCSVReader is LoadCSV from an arbitrary reader.
func (s *System) LoadCSVReader(name string, r io.Reader, header bool, histBuckets int) error {
	return s.loadCSVReader(name, r, header, histBuckets, "")
}

func (s *System) loadCSVReader(name string, r io.Reader, header bool, histBuckets int, filename string) error {
	tbl, err := csvload.Load(name, r, csvload.Options{Header: header, NullToken: "NULL", Filename: filename})
	if err != nil {
		return err
	}
	opts := catalog.AnalyzeOptions{}
	if histBuckets > 0 {
		opts = catalog.AnalyzeOptions{HistogramBuckets: histBuckets, HistogramKind: catalog.EquiDepth}
	}
	return s.mutate(func(cat *catalog.Catalog) error {
		_, err := cat.Analyze(tbl, opts)
		return err
	})
}

// GenerateTable synthesizes and loads a table whose named column follows
// the given distribution ("uniform", "zipf", "permutation", "sequential")
// over [0, domain); theta is the Zipf skew. A uniform payload column named
// "payload" is added. The table is ANALYZEd after generation.
func (s *System) GenerateTable(name, column, dist string, rows, domain int, theta float64, seed int64) error {
	var d datagen.Distribution
	switch strings.ToLower(dist) {
	case "uniform":
		d = datagen.DistUniform
	case "zipf":
		d = datagen.DistZipf
	case "permutation":
		d = datagen.DistPermutation
		domain = rows
	case "sequential":
		d = datagen.DistSequential
	default:
		return fmt.Errorf("%w: unknown distribution %q", ErrParse, dist)
	}
	tbl, err := datagen.Generate(datagen.TableSpec{
		Name: name,
		Rows: rows,
		Columns: []datagen.ColumnSpec{
			{Name: column, Dist: d, Domain: domain, Theta: theta},
			{Name: "payload", Dist: datagen.DistUniform, Domain: 1 << 20},
		},
	}, seed)
	if err != nil {
		return err
	}
	return s.mutate(func(cat *catalog.Catalog) error {
		_, err := cat.Analyze(tbl, catalog.AnalyzeOptions{})
		return err
	})
}

// BuildIndex constructs an ordered index over a loaded table's column.
// Once any index exists, the optimizer's repertoire grows to include the
// index-nested-loops join method, which probes the index once per outer
// row instead of rescanning the inner table.
func (s *System) BuildIndex(table, column string) error {
	return s.mutate(func(cat *catalog.Catalog) error {
		return cat.BuildIndex(table, column)
	})
}

// ExportStats writes the catalog's statistics as JSON (data and indexes
// are not serialized) — a portable artifact for sharing optimizer
// statistics between runs and tools. The format carries a version header
// and per-table checksums so a truncated or corrupted file is rejected at
// import time.
func (s *System) ExportStats(w io.Writer) error { return s.catalogNow().ExportJSON(w) }

// ImportStats loads statistics previously written by ExportStats,
// replacing same-named tables. The import is all-or-nothing: a truncated
// or corrupted file fails with ErrBadStats and publishes no new catalog
// version, so in-flight and subsequent queries never see a half-imported
// catalog.
func (s *System) ImportStats(r io.Reader) error {
	return s.mutate(func(cat *catalog.Catalog) error {
		return cat.ImportJSON(r)
	})
}

// Tables returns the registered table names in registration order.
func (s *System) Tables() []string { return s.catalogNow().TableNames() }

// hasAnyIndex reports whether any index has been built in cat, which
// switches the optimizer repertoire to include IndexNL.
func hasAnyIndex(cat *catalog.Catalog) bool {
	for _, name := range cat.TableNames() {
		ts := cat.Table(name)
		for _, cs := range ts.Columns {
			if cat.HasIndex(name, cs.Name) {
				return true
			}
		}
	}
	return false
}

// TableCard returns the cardinality statistic of a table.
func (s *System) TableCard(name string) (float64, error) {
	ts := s.catalogNow().Table(name)
	if ts == nil {
		return 0, fmt.Errorf("%w: unknown table %q", ErrParse, name)
	}
	return ts.Card, nil
}

// TableColumns returns the column names of a registered table (sorted).
func (s *System) TableColumns(name string) ([]string, error) {
	ts := s.catalogNow().Table(name)
	if ts == nil {
		return nil, fmt.Errorf("%w: unknown table %q", ErrParse, name)
	}
	out := make([]string, 0, len(ts.Columns))
	for _, cs := range ts.Columns {
		out = append(out, cs.Name)
	}
	sort.Strings(out)
	return out, nil
}

// ColumnDistinct returns the column cardinality statistic d of a column.
func (s *System) ColumnDistinct(table, column string) (float64, error) {
	ts := s.catalogNow().Table(table)
	if ts == nil {
		return 0, fmt.Errorf("%w: unknown table %q", ErrParse, table)
	}
	cs := ts.Column(column)
	if cs == nil {
		return 0, fmt.Errorf("%w: table %q has no column %q", ErrParse, table, column)
	}
	return cs.Distinct, nil
}
