package els

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/admission"
	"repro/internal/durable"
	"repro/internal/snapshot"
)

// Open creates a System backed by a durable catalog directory: every
// published catalog version is written ahead to a checksummed WAL and
// fsynced before the mutation returns, so a mutation that returned nil is
// recoverable after a crash ("publish acknowledges durability"). Opening
// an existing directory recovers it — the checkpoint is loaded, the WAL
// suffix replayed, and a torn trailing record (the writer died mid-append)
// is truncated, landing exactly on the last acknowledged version.
//
// Durability covers statistics, the input to estimation: recovered
// estimates are bit-identical to pre-crash estimates at the same catalog
// version. Data tables and indexes are in-memory artifacts and must be
// reloaded (LoadCSV, BuildIndex) before the recovered system can execute
// queries; Estimate and Explain work immediately.
//
// A durability failure (failed append, fsync, or checkpoint) rejects the
// mutation with ErrDurability, publishes nothing, and freezes the catalog
// against further writes — reads continue, and recovery is another Open.
// Tune the WAL with Limits.CheckpointEvery and Limits.NoFsync.
func Open(dir string) (*System, error) {
	d, err := durable.Open(dir)
	if err != nil {
		return nil, err
	}
	s := &System{
		store:   snapshot.NewStoreAt(d.Catalog(), d.Version()),
		adm:     admission.New(admission.Config{}),
		breaker: admission.NewBreaker(admission.BreakerConfig{}),
		dur:     d,
		// Hash-join spills land under the durable directory so the Open
		// recovery sweep (durable.SweepSpills, run just above by
		// durable.Open) collects any *.spill runs a crash mid-spill left
		// behind.
		spillDir: filepath.Join(dir, durable.SpillDirName),
	}
	s.store.SetDurability(d)
	s.initCache()
	return s, nil
}

// Durable reports whether the system is backed by a durable catalog
// directory (created with Open rather than New).
func (s *System) Durable() bool { return s.dur != nil }

// Checkpoint compacts the durable store's write-ahead log into an atomic
// checkpoint of the current catalog version (temp file + fsync + rename),
// then truncates the WAL. Recovery cost is proportional to the WAL suffix,
// so long-running systems should checkpoint periodically — either
// explicitly or automatically via Limits.CheckpointEvery. On a system
// without a durable store it fails with ErrDurability.
func (s *System) Checkpoint() error {
	if s.dur == nil {
		return fmt.Errorf("%w: system has no durable store (use els.Open)", ErrDurability)
	}
	// Checkpoints are refused for the whole drain window (not merely after
	// the WAL closes): Close's final state is the drained WAL, and a
	// checkpoint racing the teardown would contend with it for the store's
	// files. The durable store itself also rejects use after Close, so
	// this check failing to observe an in-progress Close is still safe —
	// the inner call returns a typed durability error instead.
	if s.closing.Load() {
		return fmt.Errorf("%w: draining, not checkpointing", ErrClosed)
	}
	return s.store.Locked(func(snap *snapshot.Snapshot) error {
		return s.dur.Checkpoint(snap.Catalog(), snap.Version())
	})
}

// DurabilityStats is a point-in-time snapshot of the durable store's
// state: WAL size, checkpoint version, records since the last checkpoint,
// and whether a durability failure has frozen the catalog.
type DurabilityStats = durable.Stats

// DurabilityStats snapshots the durable store's counters. The zero Stats
// (empty Dir) is returned for a system without a durable store.
func (s *System) DurabilityStats() DurabilityStats {
	if s.dur == nil {
		return DurabilityStats{}
	}
	return s.dur.Stats()
}

// ExportStatsFile writes the catalog's statistics to path crash-atomically
// (temp file + fsync + rename): a reader — or a crash mid-export — sees
// either the previous file or the complete new one, never a torn prefix,
// and no *.tmp artifact survives a failure.
func (s *System) ExportStatsFile(path string) error {
	var buf bytes.Buffer
	if err := s.ExportStats(&buf); err != nil {
		return err
	}
	return durable.AtomicWriteFile(path, buf.Bytes(), 0o644)
}

// ImportStatsFile loads statistics from a file written by ExportStatsFile
// (or any ExportStats output). Like ImportStats it is all-or-nothing: a
// corrupted file fails with ErrBadStats and publishes no catalog version.
func (s *System) ImportStatsFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("%w: opening stats file: %w", ErrBadStats, err)
	}
	defer f.Close()
	return s.ImportStats(f)
}
