package els

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultinject"
)

// TestOpenRoundTrip pins the headline durability contract: a system opened
// on a directory, mutated, and closed comes back at the same catalog
// version with bit-identical estimates.
func TestOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sys, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Durable() {
		t.Fatal("Open returned a non-durable system")
	}
	sys.MustDeclareStats("S", 1000, map[string]float64{"s": 1000})
	sys.MustDeclareStats("M", 10000, map[string]float64{"m": 10000})
	sql := "SELECT COUNT(*) FROM S, M WHERE s = m AND s < 100"
	want, err := sys.Estimate(sql, AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	version := sys.CatalogVersion()
	if err := sys.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close(context.Background())
	if re.CatalogVersion() != version {
		t.Fatalf("recovered at version %d, want %d", re.CatalogVersion(), version)
	}
	got, err := re.Estimate(sql, AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.FinalSize) != math.Float64bits(want.FinalSize) {
		t.Fatalf("recovered estimate %v not bit-identical to %v", got.FinalSize, want.FinalSize)
	}
	if got.CatalogVersion != version {
		t.Fatalf("recovered estimate pinned version %d, want %d", got.CatalogVersion, version)
	}
}

// TestOpenCrashMidMutation injects a crash into the WAL append and checks
// the acknowledge semantics end to end: the failed mutation vanishes, the
// catalog freezes with ErrDurability, and reopening recovers the last
// acknowledged version.
func TestOpenCrashMidMutation(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	sys, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sys.MustDeclareStats("S", 1000, map[string]float64{"s": 1000})
	acked := sys.CatalogVersion()

	faultinject.Enable("durable.wal.append", faultinject.Fault{
		Payload: faultinject.DiskFault{ShortWrite: 5},
	})
	err = sys.DeclareStats("M", 10000, map[string]float64{"m": 10000})
	if !errors.Is(err, ErrDurability) {
		t.Fatalf("crashed mutation returned %v, want ErrDurability", err)
	}
	if sys.CatalogVersion() != acked {
		t.Fatalf("unacknowledged mutation was published: version %d, want %d", sys.CatalogVersion(), acked)
	}
	// The catalog is frozen; reads still work.
	if err := sys.DeclareStats("T", 5, map[string]float64{"t": 5}); !errors.Is(err, ErrDurability) {
		t.Fatalf("frozen catalog accepted a mutation: %v", err)
	}
	if st := sys.DurabilityStats(); st.Poisoned == nil {
		t.Fatal("DurabilityStats does not report the freeze")
	}
	if _, err := sys.Estimate("SELECT COUNT(*) FROM S WHERE s < 10", AlgorithmELS); err != nil {
		t.Fatalf("reads failed on a frozen catalog: %v", err)
	}
	sys.Close(context.Background())
	faultinject.Reset()

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close(context.Background())
	if re.CatalogVersion() != acked {
		t.Fatalf("recovered version %d, want last acknowledged %d", re.CatalogVersion(), acked)
	}
	if tables := re.Tables(); len(tables) != 1 || tables[0] != "S" {
		t.Fatalf("recovered tables %v, want [S]", tables)
	}
	// The recovered system accepts mutations again.
	if err := re.DeclareStats("M", 10000, map[string]float64{"m": 10000}); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointAndAutoCheckpoint exercises the compaction path through
// the public API, including the Limits knob.
func TestCheckpointAndAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	sys, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sys.MustDeclareStats("A", 10, map[string]float64{"a": 2})
	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := sys.DurabilityStats()
	if st.CheckpointVersion != sys.CatalogVersion() || st.WALSizeBytes != 0 {
		t.Fatalf("post-checkpoint stats %+v at version %d", st, sys.CatalogVersion())
	}

	sys.SetLimits(Limits{CheckpointEvery: 2})
	sys.MustDeclareStats("B", 10, map[string]float64{"b": 2})
	sys.MustDeclareStats("C", 10, map[string]float64{"c": 2})
	st = sys.DurabilityStats()
	if st.CheckpointVersion != sys.CatalogVersion() || st.RecordsSinceCheckpoint != 0 {
		t.Fatalf("auto-checkpoint did not fire: %+v at version %d", st, sys.CatalogVersion())
	}
	if err := sys.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close(context.Background())
	if got, want := re.Tables(), []string{"A", "B", "C"}; strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("recovered tables %v, want %v", got, want)
	}
}

// TestCheckpointWithoutDurableStore pins the in-memory behavior.
func TestCheckpointWithoutDurableStore(t *testing.T) {
	sys := New()
	if sys.Durable() {
		t.Fatal("New reported durable")
	}
	if err := sys.Checkpoint(); !errors.Is(err, ErrDurability) {
		t.Fatalf("Checkpoint on in-memory system: %v, want ErrDurability", err)
	}
	if st := sys.DurabilityStats(); st.Dir != "" {
		t.Fatalf("in-memory DurabilityStats %+v, want zero", st)
	}
}

// TestExportImportStatsFile pins the atomic stats-file satellite: the
// export is all-or-nothing on disk and leaves no temp artifacts.
func TestExportImportStatsFile(t *testing.T) {
	dir := t.TempDir()
	src := New()
	src.MustDeclareStats("S", 1000, map[string]float64{"s": 1000})
	path := filepath.Join(dir, "stats.json")
	if err := src.ExportStatsFile(path); err != nil {
		t.Fatal(err)
	}
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) != 0 {
		t.Fatalf("stray temp files after export: %v", tmps)
	}
	dst := New()
	if err := dst.ImportStatsFile(path); err != nil {
		t.Fatal(err)
	}
	if card, err := dst.TableCard("S"); err != nil || card != 1000 {
		t.Fatalf("imported card %g err %v", card, err)
	}
	if err := dst.ImportStatsFile(filepath.Join(dir, "missing.json")); !errors.Is(err, ErrBadStats) {
		t.Fatalf("missing stats file: %v, want ErrBadStats", err)
	}
}

// TestOpenSweepsOrphanedSpills pins the crash-recovery contract for the
// spill path: *.spill runs a crash mid-spill left behind — whether a
// stray run at the directory root or a whole per-query temp dir under
// spill/ — are collected by the next Open, and a budgeted query through
// the reopened system spills and cleans up after itself.
func TestOpenSweepsOrphanedSpills(t *testing.T) {
	dir := t.TempDir()
	sys, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Plant orphans the way a crash would leave them.
	qdir := filepath.Join(dir, "spill", "q12345")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, orphan := range []string{
		filepath.Join(qdir, "b0-0.spill"),
		filepath.Join(dir, "stray.spill"),
	} {
		if err := os.WriteFile(orphan, []byte("torn run"), 0o644); err != nil { //atomicwrite:allow test plants crash orphans
			t.Fatal(err)
		}
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close(context.Background())
	if leaked := findSpillFiles(t, dir); len(leaked) != 0 {
		t.Fatalf("Open left crash orphans behind: %v", leaked)
	}

	// A budgeted join big enough to overflow its budget spills under
	// <dir>/spill and removes its runs on completion.
	mkRows := func(n, dom int) [][]int64 {
		rows := make([][]int64, n)
		for i := range rows {
			rows[i] = []int64{int64(i % dom)}
		}
		return rows
	}
	if err := re.LoadTable("H1", []string{"k"}, mkRows(900, 40)); err != nil {
		t.Fatal(err)
	}
	if err := re.LoadTable("H2", []string{"k"}, mkRows(1100, 40)); err != nil {
		t.Fatal(err)
	}
	re.SetLimits(Limits{MaxMemory: 4096})
	res, err := re.Query("SELECT COUNT(*) FROM H1, H2 WHERE H1.k = H2.k", AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpillCount == 0 {
		t.Fatal("the 4 KiB budget did not force the join to spill")
	}
	if leaked := findSpillFiles(t, dir); len(leaked) != 0 {
		t.Fatalf("completed spilled query leaked runs: %v", leaked)
	}
}

// findSpillFiles returns every *.spill path under dir at any depth.
func findSpillFiles(t *testing.T, dir string) []string {
	t.Helper()
	var files []string
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(path, ".spill") {
			files = append(files, path)
		}
		return nil
	})
	return files
}
