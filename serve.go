package els

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/admission"
	"repro/internal/governor"
	"repro/internal/snapshot"
)

// RetryPolicy configures opt-in retry of transient failures. Only internal
// errors (ErrInternal — recovered panics and injected faults, the "this
// attempt hit a bug, the next may not" class) are retried; parse errors,
// bad statistics, cancellation, budget exhaustion, and overload are
// deterministic or load-dependent and never retry. The zero value disables
// retry.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts (first try included);
	// values ≤ 1 disable retry.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// retry (capped exponential backoff). 0 defaults to 1ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; 0 means uncapped.
	MaxDelay time.Duration
	// Seed seeds the deterministic jitter applied to each backoff delay
	// (a multiplier in [0.5, 1.0)), so retry schedules are reproducible.
	Seed int64
}

// Enabled reports whether the policy retries anything.
func (p RetryPolicy) Enabled() bool { return p.MaxAttempts > 1 }

// BreakerPolicy configures the opt-in circuit breaker: after Threshold
// consecutive internal errors the breaker opens and queries fail fast with
// ErrOverloaded; after Cooldown it half-opens and lets one probe query
// through. The zero value disables the breaker.
type BreakerPolicy = admission.BreakerConfig

// SetRetryPolicy installs (or, with the zero policy, removes) the retry
// policy applied to every subsequent query.
func (s *System) SetRetryPolicy(p RetryPolicy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retry = p
	s.retryMu.Lock()
	s.retryRng = rand.New(rand.NewSource(p.Seed))
	s.retryMu.Unlock()
}

// retryPolicy returns the current retry policy.
func (s *System) retryPolicy() RetryPolicy {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.retry
}

// SetBreaker installs (or, with the zero policy, removes) the circuit
// breaker. Installing a policy resets the breaker to closed.
func (s *System) SetBreaker(p BreakerPolicy) {
	s.breaker.SetConfig(p)
}

// SetAdmissionObserver installs (or, with nil, removes) a callback invoked
// with every admitted query's queue wait, at admission time. Serving
// layers above the library (the wire server) use it to build wait
// distributions — p99 admission wait is an SLO — without polling
// cumulative counters. The callback runs on the query's serving goroutine
// before the query starts, so it must be fast and must not call back into
// the System.
func (s *System) SetAdmissionObserver(obs func(wait time.Duration)) {
	s.mu.Lock()
	s.admObs = obs
	s.mu.Unlock()
}

// admissionObserver returns the installed observer, or nil.
func (s *System) admissionObserver() func(time.Duration) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.admObs
}

// RobustnessStats is a point-in-time snapshot of the serving layer's
// counters: admission, shedding, queueing, retries, and the circuit
// breaker. Counters are cumulative since New.
type RobustnessStats struct {
	// CatalogVersion is the currently published catalog version.
	CatalogVersion uint64
	// Admitted counts queries that got an execution slot.
	Admitted uint64
	// ShedQueueFull and ShedQueueTimeout count queries shed with
	// ErrOverloaded because the admission queue was full or the queue
	// deadline elapsed.
	ShedQueueFull, ShedQueueTimeout uint64
	// RejectedClosed counts queries refused with ErrClosed after Close.
	RejectedClosed uint64
	// QueueWait is the cumulative time admitted queries waited for a slot.
	QueueWait time.Duration
	// InFlight and Waiting are current gauges.
	InFlight, Waiting int
	// Retries counts retry attempts; RetrySuccesses counts queries that
	// succeeded after at least one retry.
	Retries, RetrySuccesses uint64
	// BreakerState is "closed", "open", or "half-open".
	BreakerState string
	// BreakerOpens, BreakerRejections, and BreakerProbes count breaker
	// transitions to open, queries failed fast while open, and half-open
	// probe queries admitted.
	BreakerOpens, BreakerRejections, BreakerProbes uint64
	// SpilledQueries counts queries that spilled at least one hash-join
	// build side to disk under Limits.MaxMemory; SpilledBytes is the
	// cumulative run-file bytes they wrote.
	SpilledQueries uint64
	SpilledBytes   int64
	// PeakQueryBytes is the largest single-query working-memory high-water
	// mark observed since the system started (see Result.PeakMemoryBytes).
	PeakQueryBytes int64
}

// RobustnessStats snapshots the serving layer's counters.
func (s *System) RobustnessStats() RobustnessStats {
	adm := s.adm.Snapshot()
	brk := s.breaker.Snapshot()
	return RobustnessStats{
		CatalogVersion:    s.store.Version(),
		Admitted:          adm.Admitted,
		ShedQueueFull:     adm.ShedQueueFull,
		ShedQueueTimeout:  adm.ShedQueueTimeout,
		RejectedClosed:    adm.RejectedClosed,
		QueueWait:         adm.QueueWait,
		InFlight:          adm.InFlight,
		Waiting:           adm.Waiting,
		Retries:           s.retries.Load(),
		RetrySuccesses:    s.retrySuccesses.Load(),
		BreakerState:      brk.State.String(),
		BreakerOpens:      brk.Opens,
		BreakerRejections: brk.Rejections,
		BreakerProbes:     brk.Probes,
		SpilledQueries:    s.spilledQueries.Load(),
		SpilledBytes:      s.spilledBytes.Load(),
		PeakQueryBytes:    s.peakQueryBytes.Load(),
	}
}

// Close drains the system: it stops admitting (new queries fail fast with
// ErrClosed and the catalog becomes read-only), waits for in-flight
// queries to finish, and if ctx expires first cancels the stragglers'
// serving contexts — they abort with ErrCanceled — and keeps waiting until
// every slot is released. After Close returns there are zero in-flight
// queries. On a durable system (els.Open) the write-ahead log is then
// flushed and closed; everything acknowledged before Close is recoverable
// by reopening the directory. Close is idempotent and returns ctx.Err()
// when the drain deadline was hit, nil on a fully graceful drain.
func (s *System) Close(ctx context.Context) error {
	// Refuse AttachReplica and Checkpoint for the whole drain window
	// before stopping admission: both touch the shipper and the WAL that
	// this function is about to tear down.
	s.closing.Store(true)
	err := s.adm.Close(ctx)
	s.shipMu.Lock()
	sh := s.shipper
	s.shipper = nil
	s.shipMu.Unlock()
	if sh != nil {
		// Stop shipping before the WAL closes: link workers drain and
		// exit; followers keep serving at whatever version they reached.
		sh.Close()
	}
	if s.dur != nil {
		if derr := s.dur.Close(); derr != nil && err == nil {
			err = derr
		}
	}
	return err
}

// serve wraps one public query call with the serving layer: the circuit
// breaker gate, admission (concurrency cap, queue deadline, shedding),
// catalog snapshot pinning, per-attempt governance and panic recovery, and
// the opt-in retry loop. fn runs each attempt with the attempt's governor
// and the snapshot pinned at admission; it must route every catalog read
// through that snapshot.
//
// Breaker ordering matters: Precheck fails fast before the query queues,
// but the half-open probe is only booked by Allow once the query holds an
// admission slot, and every successful Allow is balanced by exactly one
// Record of the query's final outcome. Booking the probe before admission
// would strand the breaker half-open forever whenever the would-be probe
// was shed (queue full, queue timeout, canceled while queued, or closed).
func (s *System) serve(ctx context.Context, fn func(gov *governor.Governor, snap *snapshot.Snapshot) error) error {
	if err := s.breaker.Precheck(); err != nil {
		return err
	}
	slot, err := s.adm.Acquire(ctx)
	if err != nil {
		return err
	}
	defer slot.Release()
	if obs := s.admissionObserver(); obs != nil {
		obs(slot.Waited())
	}
	if err := s.breaker.Allow(); err != nil {
		return err
	}
	err = s.attempts(slot, fn)
	s.breaker.Record(err)
	return err
}

// attempts runs the retry loop for one admitted query: the first try plus
// up to MaxAttempts-1 retries of transient (internal) failures, with
// seeded backoff between attempts. It returns the query's final outcome.
func (s *System) attempts(slot *admission.Slot, fn func(gov *governor.Governor, snap *snapshot.Snapshot) error) error {
	snap := s.store.Current()
	policy := s.retryPolicy()
	for attempt := 1; ; attempt++ {
		err := s.replicaGate(&snap)
		if err == nil {
			err = s.attempt(slot.Context(), slot.Waited(), snap, fn)
		}
		if err == nil {
			if attempt > 1 {
				s.retrySuccesses.Add(1)
			}
			return nil
		}
		if !Retryable(err) || attempt >= policy.MaxAttempts {
			return err
		}
		s.retries.Add(1)
		if werr := s.backoff(slot.Context(), policy, attempt); werr != nil {
			return werr
		}
	}
}

// attempt runs fn once under a fresh governor, converting panics into
// ErrInternal so the breaker and retry loop see them as transient
// failures.
func (s *System) attempt(ctx context.Context, queueWait time.Duration, snap *snapshot.Snapshot,
	fn func(gov *governor.Governor, snap *snapshot.Snapshot) error) (err error) {
	defer recovered(&err)
	gov := governor.New(ctx, s.Limits())
	if err := gov.Err(); err != nil {
		return err
	}
	gov.RecordQueueWait(queueWait)
	return fn(gov, snap)
}

// replicaGate enforces the replica staleness contract on the inner system
// of an els.Replica (a no-op everywhere else, including after promotion):
// a quarantined replica rejects the attempt with its divergence error, a
// replica lagging past Limits.MaxReplicaLag rejects with ErrStaleReplica,
// and an admitted attempt re-pins the freshest replayed snapshot — so a
// retry after a stale rejection serves the version the replica caught up
// to, not the one it was behind at.
func (s *System) replicaGate(snap **snapshot.Snapshot) error {
	if s.fol == nil || s.promoted.Load() {
		return nil
	}
	if _, err := s.fol.ReadCheck(s.Limits().MaxReplicaLag); err != nil {
		return err
	}
	*snap = s.store.Current()
	return nil
}

// The retry loop fires on exactly the failures the public Retryable
// predicate names (robust.go): internal errors (transient by definition),
// overload sheds (load-dependent), and stale-replica rejections (replicas
// catch up; each retry re-pins the freshest replayed version). Inside the
// loop only the internal and stale classes can actually occur — admission
// happens before the loop, so an in-slot attempt never sheds — but using
// the shared predicate keeps the in-process loop, the database/sql
// driver, and the wire server's retryable flag classifying identically.
// ErrParse, ErrBadStats, ErrCanceled, ErrBudgetExceeded, ErrClosed, and
// ErrDiverged (sticky until resync) never retry.

// backoff sleeps the capped, jittered exponential delay before retry
// number attempt, aborting early (with a taxonomy error) if the serving
// context dies.
func (s *System) backoff(ctx context.Context, policy RetryPolicy, attempt int) error {
	d := policy.BaseDelay
	if d <= 0 {
		d = time.Millisecond
	}
	for i := 1; i < attempt && i < 20; i++ {
		d *= 2
		if policy.MaxDelay > 0 && d >= policy.MaxDelay {
			break
		}
	}
	if policy.MaxDelay > 0 && d > policy.MaxDelay {
		d = policy.MaxDelay
	}
	s.retryMu.Lock()
	if s.retryRng == nil {
		s.retryRng = rand.New(rand.NewSource(policy.Seed))
	}
	jitter := 0.5 + 0.5*s.retryRng.Float64()
	s.retryMu.Unlock()
	d = time.Duration(float64(d) * jitter)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("%w: %w", ErrCanceled, ctx.Err())
	}
}
