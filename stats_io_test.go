package els

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// Statistics survive an export/import round trip, and the imported system
// estimates identically — the workflow of sharing optimizer statistics
// without sharing data.
func TestExportImportStats(t *testing.T) {
	src := New()
	src.MustDeclareStats("S", 1000, map[string]float64{"s": 1000})
	src.MustDeclareStats("M", 10000, map[string]float64{"m": 10000})
	sql := "SELECT COUNT(*) FROM S, M WHERE s = m AND s < 100"
	want, err := src.Estimate(sql, AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := src.ExportStats(&buf); err != nil {
		t.Fatal(err)
	}
	dst := New()
	if err := dst.ImportStats(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := dst.Estimate(sql, AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if got.FinalSize != want.FinalSize {
		t.Errorf("imported estimate %g != original %g", got.FinalSize, want.FinalSize)
	}
	if err := dst.ImportStats(strings.NewReader("{bad")); err == nil {
		t.Error("malformed import should error")
	}
}

// A truncated or corrupted stats file fails with ErrBadStats and a
// diagnostic, and the failed import is all-or-nothing: no table from the
// bad file appears and the catalog version does not advance.
func TestImportStatsRejectsCorruption(t *testing.T) {
	src := New()
	src.MustDeclareStats("S", 1000, map[string]float64{"s": 1000})
	src.MustDeclareStats("M", 10000, map[string]float64{"m": 10000})
	var buf bytes.Buffer
	if err := src.ExportStats(&buf); err != nil {
		t.Fatal(err)
	}
	exported := buf.String()

	dst := New()
	version := dst.CatalogVersion()

	// Truncated file: ErrBadStats with a line diagnostic.
	err := dst.ImportStats(strings.NewReader(exported[:len(exported)-40]))
	if !errors.Is(err, ErrBadStats) {
		t.Fatalf("truncated import err = %v, want ErrBadStats", err)
	}
	if !strings.Contains(err.Error(), "line ") {
		t.Fatalf("truncated import should carry a line diagnostic: %v", err)
	}

	// Corrupted section: ErrBadStats naming the table.
	corrupt := strings.Replace(exported, `"card": 1000`, `"card": 1001`, 1)
	if corrupt == exported {
		t.Fatal("corruption did not apply")
	}
	err = dst.ImportStats(strings.NewReader(corrupt))
	if !errors.Is(err, ErrBadStats) || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("corrupted import err = %v, want checksum-mismatch ErrBadStats", err)
	}

	// Nothing was imported, nothing was published.
	if got := dst.CatalogVersion(); got != version {
		t.Fatalf("failed imports advanced the catalog version %d -> %d", version, got)
	}
	if tables := dst.Tables(); len(tables) != 0 {
		t.Fatalf("failed imports left tables behind: %v", tables)
	}
}

func TestExplainDot(t *testing.T) {
	sys := New()
	sys.MustDeclareStats("A", 100, map[string]float64{"k": 10})
	sys.MustDeclareStats("B", 200, map[string]float64{"k": 10})
	dot, err := sys.ExplainDot("SELECT COUNT(*) FROM A, B WHERE A.k = B.k", AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot, "digraph plan") || !strings.Contains(dot, "->") {
		t.Errorf("dot output:\n%s", dot)
	}
	if _, err := sys.ExplainDot("garbage(", AlgorithmELS); err == nil {
		t.Error("bad SQL should error")
	}
}
