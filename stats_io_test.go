package els

import (
	"bytes"
	"strings"
	"testing"
)

// Statistics survive an export/import round trip, and the imported system
// estimates identically — the workflow of sharing optimizer statistics
// without sharing data.
func TestExportImportStats(t *testing.T) {
	src := New()
	src.MustDeclareStats("S", 1000, map[string]float64{"s": 1000})
	src.MustDeclareStats("M", 10000, map[string]float64{"m": 10000})
	sql := "SELECT COUNT(*) FROM S, M WHERE s = m AND s < 100"
	want, err := src.Estimate(sql, AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := src.ExportStats(&buf); err != nil {
		t.Fatal(err)
	}
	dst := New()
	if err := dst.ImportStats(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := dst.Estimate(sql, AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if got.FinalSize != want.FinalSize {
		t.Errorf("imported estimate %g != original %g", got.FinalSize, want.FinalSize)
	}
	if err := dst.ImportStats(strings.NewReader("{bad")); err == nil {
		t.Error("malformed import should error")
	}
}

func TestExplainDot(t *testing.T) {
	sys := New()
	sys.MustDeclareStats("A", 100, map[string]float64{"k": 10})
	sys.MustDeclareStats("B", 200, map[string]float64{"k": 10})
	dot, err := sys.ExplainDot("SELECT COUNT(*) FROM A, B WHERE A.k = B.k", AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot, "digraph plan") || !strings.Contains(dot, "->") {
		t.Errorf("dot output:\n%s", dot)
	}
	if _, err := sys.ExplainDot("garbage(", AlgorithmELS); err == nil {
		t.Error("bad SQL should error")
	}
}
