package els

import (
	"math"
	"strings"
	"testing"
)

// paperSystem declares the Example 1b statistics.
func paperSystem(t *testing.T) *System {
	t.Helper()
	sys := New()
	sys.MustDeclareStats("R1", 100, map[string]float64{"x": 10})
	sys.MustDeclareStats("R2", 1000, map[string]float64{"y": 100})
	sys.MustDeclareStats("R3", 1000, map[string]float64{"z": 1000})
	return sys
}

const example1bSQL = "SELECT COUNT(*) FROM R1, R2, R3 WHERE x = y AND y = z"

func TestAlgorithmStrings(t *testing.T) {
	names := map[Algorithm]string{
		AlgorithmELS:         "ELS",
		AlgorithmSM:          "SM",
		AlgorithmSMPTC:       "SM+PTC",
		AlgorithmSSS:         "SSS+PTC",
		AlgorithmRepSmallest: "REP(smallest)",
		AlgorithmRepLargest:  "REP(largest)",
		AlgorithmELSHist:     "ELS+hist",
		Algorithm(99):        "unknown",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), want)
		}
	}
	if len(Algorithms()) != 7 {
		t.Errorf("Algorithms() = %v", Algorithms())
	}
}

func TestDeclareStatsValidation(t *testing.T) {
	sys := New()
	if err := sys.DeclareStats("", 10, nil); err == nil {
		t.Error("empty name should error")
	}
	if err := sys.DeclareStats("t", -1, nil); err == nil {
		t.Error("negative rows should error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustDeclareStats should panic on error")
		}
	}()
	sys.MustDeclareStats("", 1, nil)
}

func TestStatsAccessors(t *testing.T) {
	sys := paperSystem(t)
	if got := sys.Tables(); len(got) != 3 || got[0] != "R1" {
		t.Errorf("Tables = %v", got)
	}
	card, err := sys.TableCard("R2")
	if err != nil || card != 1000 {
		t.Errorf("TableCard = %g, %v", card, err)
	}
	d, err := sys.ColumnDistinct("R1", "x")
	if err != nil || d != 10 {
		t.Errorf("ColumnDistinct = %g, %v", d, err)
	}
	if _, err := sys.TableCard("zz"); err == nil {
		t.Error("unknown table should error")
	}
	if _, err := sys.ColumnDistinct("R1", "zz"); err == nil {
		t.Error("unknown column should error")
	}
	if _, err := sys.ColumnDistinct("zz", "x"); err == nil {
		t.Error("unknown table should error")
	}
}

func TestEstimateExample1b(t *testing.T) {
	sys := paperSystem(t)
	est, err := sys.Estimate(example1bSQL, AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if est.FinalSize != 1000 {
		t.Errorf("ELS final size = %g, want 1000", est.FinalSize)
	}
	if len(est.JoinOrder) != 3 || len(est.Steps) != 2 {
		t.Errorf("estimate shape: %+v", est)
	}
	if len(est.ImpliedPredicates) != 1 {
		t.Errorf("implied = %v, want the transitive J3", est.ImpliedPredicates)
	}
	if !strings.Contains(est.PlanText, "Scan(") {
		t.Errorf("plan text:\n%s", est.PlanText)
	}
}

func TestEstimateOrderPaperExamples(t *testing.T) {
	sys := paperSystem(t)
	cases := []struct {
		algo Algorithm
		want float64
	}{
		{AlgorithmSMPTC, 1},
		{AlgorithmSSS, 100},
		{AlgorithmELS, 1000},
		{AlgorithmRepLargest, 10000},
		{AlgorithmRepSmallest, 100},
	}
	for _, c := range cases {
		est, err := sys.EstimateOrder(example1bSQL, c.algo, []string{"R2", "R3", "R1"})
		if err != nil {
			t.Fatalf("%s: %v", c.algo, err)
		}
		if math.Abs(est.FinalSize-c.want) > 1e-6 {
			t.Errorf("%s along R2,R3,R1 = %g, want %g", c.algo, est.FinalSize, c.want)
		}
	}
}

func TestEstimateErrors(t *testing.T) {
	sys := paperSystem(t)
	if _, err := sys.Estimate("not sql", AlgorithmELS); err == nil {
		t.Error("bad SQL should error")
	}
	if _, err := sys.Estimate("SELECT COUNT(*) FROM nope", AlgorithmELS); err == nil {
		t.Error("unknown table should error")
	}
	if _, err := sys.Estimate(example1bSQL, Algorithm(99)); err == nil {
		t.Error("unknown algorithm should error")
	}
	if _, err := sys.EstimateOrder(example1bSQL, AlgorithmELS, []string{"zz"}); err == nil {
		t.Error("bad order should error")
	}
	if _, err := sys.EstimateOrder(example1bSQL, Algorithm(99), nil); err == nil {
		t.Error("unknown algorithm should error")
	}
	if _, err := sys.EstimateOrder("bad(", AlgorithmELS, nil); err == nil {
		t.Error("bad SQL should error")
	}
}

func TestExplain(t *testing.T) {
	sys := paperSystem(t)
	out, err := sys.Explain(example1bSQL, AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"algorithm: ELS", "implied by transitive closure", "estimated result size: 1000"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
	if _, err := sys.Explain("junk", AlgorithmELS); err == nil {
		t.Error("bad SQL should error")
	}
}

func TestLoadTableAndQuery(t *testing.T) {
	sys := New()
	if err := sys.LoadTable("A", []string{"k", "v"}, [][]int64{
		{1, 10}, {2, 20}, {3, 30}, {3, 31},
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadTable("B", []string{"k", "w"}, [][]int64{
		{2, 200}, {3, 300},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query("SELECT COUNT(*) FROM A, B WHERE A.k = B.k", AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 3 {
		t.Errorf("count = %d, want 3", res.Count)
	}
	// Deterministic work counters only — wall-clock may round to zero on
	// coarse clocks.
	if res.TuplesScanned <= 0 || res.Comparisons <= 0 {
		t.Error("work counters missing")
	}
	// Projection query materializes rows.
	res, err = sys.Query("SELECT A.k, B.w FROM A, B WHERE A.k = B.k AND A.v > 25", AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 2 || len(res.Rows) != 2 || len(res.Columns) != 2 {
		t.Errorf("projection result: %+v", res)
	}
	if res.Columns[0] != "A.k" {
		t.Errorf("columns = %v", res.Columns)
	}
	// SELECT * materializes all columns.
	res, err = sys.Query("SELECT * FROM B", AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 2 || len(res.Rows) != 2 {
		t.Errorf("star result: %+v", res)
	}
}

func TestLoadTableValidation(t *testing.T) {
	sys := New()
	if err := sys.LoadTable("", []string{"k"}, nil); err == nil {
		t.Error("empty name should error")
	}
	if err := sys.LoadTable("t", nil, nil); err == nil {
		t.Error("no columns should error")
	}
	if err := sys.LoadTable("t", []string{"k", "k"}, nil); err == nil {
		t.Error("duplicate columns should error")
	}
	if err := sys.LoadTable("t", []string{"k"}, [][]int64{{1, 2}}); err == nil {
		t.Error("arity mismatch should error")
	}
}

func TestLoadTableHist(t *testing.T) {
	sys := New()
	rows := make([][]int64, 100)
	for i := range rows {
		v := int64(0)
		if i >= 90 {
			v = int64(i)
		}
		rows[i] = []int64{v}
	}
	if err := sys.LoadTableHist("H", []string{"x"}, rows, 8); err != nil {
		t.Fatal(err)
	}
	// With histograms the skewed x=0 predicate should estimate ~90 rows; a
	// pure uniformity estimate would say 100/11 ≈ 9.
	est, err := sys.Estimate("SELECT COUNT(*) FROM H WHERE x = 0", AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if est.FinalSize < 50 {
		t.Errorf("histogram estimate = %g, want ~90 (distribution stats in use)", est.FinalSize)
	}
}

func TestGenerateTable(t *testing.T) {
	sys := New()
	if err := sys.GenerateTable("Z", "k", "zipf", 500, 50, 1.0, 7); err != nil {
		t.Fatal(err)
	}
	card, _ := sys.TableCard("Z")
	if card != 500 {
		t.Errorf("generated card = %g", card)
	}
	if err := sys.GenerateTable("P", "k", "permutation", 100, 0, 0, 7); err != nil {
		t.Fatal(err)
	}
	if d, _ := sys.ColumnDistinct("P", "k"); d != 100 {
		t.Errorf("permutation distinct = %g, want 100", d)
	}
	if err := sys.GenerateTable("U", "k", "uniform", 100, 10, 0, 7); err != nil {
		t.Fatal(err)
	}
	if err := sys.GenerateTable("S", "k", "sequential", 100, 10, 0, 7); err != nil {
		t.Fatal(err)
	}
	if err := sys.GenerateTable("X", "k", "bogus", 10, 10, 0, 7); err == nil {
		t.Error("unknown distribution should error")
	}
}

func TestCompareAlgorithms(t *testing.T) {
	sys := New()
	for i, name := range []string{"A", "B", "C"} {
		if err := sys.GenerateTable(name, "k", "uniform", 200, 20, 0, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	sql := "SELECT COUNT(*) FROM A, B, C WHERE A.k = B.k AND B.k = C.k AND A.payload >= 0"
	results, err := sys.CompareAlgorithms(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results[1:] {
		if r.Count != results[0].Count {
			t.Error("all algorithms must compute the same count")
		}
	}
	// Explicit algorithm list.
	two, err := sys.CompareAlgorithms(sql, AlgorithmELS, AlgorithmSM)
	if err != nil || len(two) != 2 {
		t.Errorf("explicit list: %v, %v", two, err)
	}
	if _, err := sys.CompareAlgorithms("junk("); err == nil {
		t.Error("bad SQL should error")
	}
}

func TestQueryWithoutDataErrors(t *testing.T) {
	sys := paperSystem(t) // stats only, no data
	if _, err := sys.Query(example1bSQL, AlgorithmELS); err == nil {
		t.Error("executing a stats-only table should error")
	}
}

// The full Section 8 pipeline through the public API: declared statistics
// reproduce the paper's estimates per algorithm.
func TestPublicAPISection8Estimates(t *testing.T) {
	sys := New()
	sys.MustDeclareStats("S", 1000, map[string]float64{"s": 1000})
	sys.MustDeclareStats("M", 10000, map[string]float64{"m": 10000})
	sys.MustDeclareStats("B", 50000, map[string]float64{"b": 50000})
	sys.MustDeclareStats("G", 100000, map[string]float64{"g": 100000})
	sql := "SELECT COUNT(*) FROM S, M, B, G WHERE s = m AND m = b AND b = g AND s < 100"

	est, err := sys.EstimateOrder(sql, AlgorithmSMPTC, []string{"S", "B", "M", "G"})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.2, 4e-8, 4e-21}
	for i, s := range est.Steps {
		if math.Abs(s.Size-want[i]) > 1e-9*want[i] {
			t.Errorf("SM+PTC step %d = %g, want %g", i, s.Size, want[i])
		}
	}
	est, err = sys.Estimate(sql, AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if est.FinalSize != 100 {
		t.Errorf("ELS final = %g, want 100", est.FinalSize)
	}
	for _, s := range est.Steps {
		if s.Size != 100 {
			t.Errorf("ELS step size = %g, want 100", s.Size)
		}
	}
}
