package els

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cardest"
	"repro/internal/executor"
	"repro/internal/faultinject"
)

func testServeSystem(t *testing.T) *System {
	t.Helper()
	sys := New()
	mkRows := func(n, dom int) [][]int64 {
		rows := make([][]int64, n)
		for i := range rows {
			rows[i] = []int64{int64(i % dom), int64(i % 7)}
		}
		return rows
	}
	if err := sys.LoadTable("R", []string{"a", "b"}, mkRows(200, 10)); err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadTable("S", []string{"a", "c"}, mkRows(300, 10)); err != nil {
		t.Fatal(err)
	}
	return sys
}

const serveJoinSQL = "SELECT COUNT(*) FROM R, S WHERE R.a = S.a AND R.b < 5"

// Every query pins the catalog version current at admission, and the
// version is surfaced through Estimate.CatalogVersion and Explain.
func TestQueriesPinCatalogVersion(t *testing.T) {
	sys := New()
	sys.MustDeclareStats("V", 100, map[string]float64{"x": 10})
	v := sys.CatalogVersion()
	est, err := sys.Estimate("SELECT COUNT(*) FROM V", AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if est.CatalogVersion != v {
		t.Fatalf("estimate pinned version %d, current is %d", est.CatalogVersion, v)
	}
	if est.FinalSize != 100 {
		t.Fatalf("estimate %g, want 100", est.FinalSize)
	}
	// Mutating publishes a new version; new estimates see it.
	sys.MustDeclareStats("V", 500, map[string]float64{"x": 10})
	if got := sys.CatalogVersion(); got != v+1 {
		t.Fatalf("version %d after mutation, want %d", got, v+1)
	}
	est2, err := sys.Estimate("SELECT COUNT(*) FROM V", AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if est2.CatalogVersion != v+1 || est2.FinalSize != 500 {
		t.Fatalf("post-mutation estimate: version %d size %g, want %d/500", est2.CatalogVersion, est2.FinalSize, v+1)
	}
	out, err := sys.Explain("SELECT COUNT(*) FROM V", AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("catalog version: %d", v+1)
	if !strings.Contains(out, want) {
		t.Fatalf("Explain output missing %q:\n%s", want, out)
	}
}

// A failed ImportStats publishes nothing: the catalog version does not
// advance and queries keep estimating against the old statistics.
func TestFailedImportPublishesNothing(t *testing.T) {
	sys := New()
	sys.MustDeclareStats("V", 100, map[string]float64{"x": 10})
	v := sys.CatalogVersion()
	if err := sys.ImportStats(strings.NewReader("{bad")); err == nil {
		t.Fatal("malformed import should error")
	}
	if got := sys.CatalogVersion(); got != v {
		t.Fatalf("failed import advanced version %d -> %d", v, got)
	}
	est, err := sys.Estimate("SELECT COUNT(*) FROM V", AlgorithmELS)
	if err != nil || est.FinalSize != 100 {
		t.Fatalf("estimate after failed import: %v, %v", est, err)
	}
}

// MaxConcurrent=1 serializes queries; a queued query with a QueueTimeout
// sheds with ErrOverloaded and errors.As exposes the OverloadError.
func TestAdmissionShedsUnderLoad(t *testing.T) {
	sys := testServeSystem(t)
	sys.SetLimits(Limits{MaxConcurrent: 1, MaxQueue: 1, QueueTimeout: 10 * time.Millisecond})

	// Occupy the only slot with a query canceled by us later.
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	faultinject.Enable(executor.PointScan, faultinject.Fault{Delay: 300 * time.Millisecond})
	defer faultinject.Reset()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(started)
		_, _ = sys.QueryContext(ctx, serveJoinSQL, AlgorithmELS)
	}()
	<-started
	// Wait for the slot to be taken.
	for sys.RobustnessStats().InFlight == 0 {
		time.Sleep(time.Millisecond)
	}
	_, err := sys.QueryContext(context.Background(), serveJoinSQL, AlgorithmELS)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queued query err = %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "queue timeout" {
		t.Fatalf("err = %v, want queue-timeout OverloadError", err)
	}
	cancel()
	wg.Wait()
	st := sys.RobustnessStats()
	if st.ShedQueueTimeout != 1 || st.InFlight != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.QueueWait <= 0 {
		t.Fatalf("no queue wait recorded: %+v", st)
	}
}

// Close drains gracefully: in-flight queries finish, subsequent queries
// fail fast with ErrClosed, and the catalog becomes read-only.
func TestCloseDrainsSystem(t *testing.T) {
	sys := testServeSystem(t)
	sys.SetLimits(Limits{MaxConcurrent: 4})
	var inFlightErrs atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := sys.Query(serveJoinSQL, AlgorithmELS); err != nil {
				inFlightErrs.Add(1)
			}
		}()
	}
	// Let some queries get admitted, then drain.
	time.Sleep(2 * time.Millisecond)
	if err := sys.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	st := sys.RobustnessStats()
	if st.InFlight != 0 {
		t.Fatalf("in-flight after Close: %+v", st)
	}
	if _, err := sys.Query(serveJoinSQL, AlgorithmELS); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close query err = %v, want ErrClosed", err)
	}
	if err := sys.DeclareStats("T", 10, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close mutation err = %v, want ErrClosed", err)
	}
}

// A straggler that outlives Close's deadline is canceled mid-drain and
// Close still returns with zero in flight.
func TestCloseCancelsStragglerMidDrain(t *testing.T) {
	sys := testServeSystem(t)
	sys.SetLimits(Limits{MaxConcurrent: 2})
	// The straggler: a query slowed by an injected latency fault so it is
	// still running when the drain deadline expires. The executor sleeps
	// the delay interruptibly against the serving context, so the
	// mid-drain cancellation aborts it immediately.
	faultinject.Enable(executor.PointScan, faultinject.Fault{Delay: 2 * time.Second})
	defer faultinject.Reset()
	errCh := make(chan error, 1)
	go func() {
		_, err := sys.QueryContext(context.Background(), serveJoinSQL, AlgorithmELS)
		errCh <- err
	}()
	for sys.RobustnessStats().InFlight == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := sys.Close(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Close took %v; straggler was not canceled", elapsed)
	}
	if st := sys.RobustnessStats(); st.InFlight != 0 {
		t.Fatalf("in-flight after forced drain: %+v", st)
	}
	qerr := <-errCh
	if !errors.Is(qerr, ErrCanceled) {
		t.Fatalf("straggler err = %v, want ErrCanceled", qerr)
	}
}

// The retry policy retries injected internal faults with seeded backoff
// and succeeds once the fault schedule is exhausted.
func TestRetryRecoversFromTransientFaults(t *testing.T) {
	sys := testServeSystem(t)
	sys.SetRetryPolicy(RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Microsecond, Seed: 7})
	faultinject.Enable(cardest.PointNewQuery, faultinject.Fault{
		Err:   fmt.Errorf("%w: injected transient", ErrInternal),
		Times: 2, // first two attempts fail, third succeeds
	})
	defer faultinject.Reset()
	res, err := sys.Query(serveJoinSQL, AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count == 0 {
		t.Fatal("retried query returned no rows")
	}
	st := sys.RobustnessStats()
	if st.Retries != 2 || st.RetrySuccesses != 1 {
		t.Fatalf("stats %+v, want 2 retries, 1 retry success", st)
	}
}

// Retry gives up after MaxAttempts and returns the internal error.
func TestRetryExhaustsAttempts(t *testing.T) {
	sys := testServeSystem(t)
	sys.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Microsecond, Seed: 7})
	faultinject.Enable(cardest.PointNewQuery, faultinject.Fault{
		Err: fmt.Errorf("%w: injected persistent", ErrInternal),
	})
	defer faultinject.Reset()
	_, err := sys.Query(serveJoinSQL, AlgorithmELS)
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	if hits := faultinject.Hits(cardest.PointNewQuery); hits != 3 {
		t.Fatalf("pipeline entered %d times, want 3 (MaxAttempts)", hits)
	}
}

// Panics inside the pipeline are retried too: recovery happens per
// attempt, so a transient panic behaves like a transient error.
func TestRetryRecoversFromTransientPanic(t *testing.T) {
	sys := testServeSystem(t)
	sys.SetRetryPolicy(RetryPolicy{MaxAttempts: 2, BaseDelay: 100 * time.Microsecond, Seed: 3})
	faultinject.Enable(cardest.PointNewQuery, faultinject.Fault{PanicValue: "transient boom", Times: 1})
	defer faultinject.Reset()
	res, err := sys.Query(serveJoinSQL, AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count == 0 {
		t.Fatal("no rows after panic retry")
	}
}

// The breaker opens after the configured run of internal errors, rejects
// with ErrOverloaded while open, and half-opens to a probe that closes it.
func TestBreakerOpensAndRecovers(t *testing.T) {
	sys := testServeSystem(t)
	sys.SetBreaker(BreakerPolicy{Threshold: 2, Cooldown: 20 * time.Millisecond})
	faultinject.Enable(cardest.PointNewQuery, faultinject.Fault{
		Err: fmt.Errorf("%w: injected", ErrInternal), Times: 2,
	})
	defer faultinject.Reset()
	for i := 0; i < 2; i++ {
		if _, err := sys.Query(serveJoinSQL, AlgorithmELS); !errors.Is(err, ErrInternal) {
			t.Fatalf("query %d err = %v, want ErrInternal", i, err)
		}
	}
	st := sys.RobustnessStats()
	if st.BreakerState != "open" || st.BreakerOpens != 1 {
		t.Fatalf("stats %+v, want open breaker", st)
	}
	if _, err := sys.Query(serveJoinSQL, AlgorithmELS); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("open-breaker query err = %v, want ErrOverloaded", err)
	}
	time.Sleep(25 * time.Millisecond)
	// Cooldown over: this query is the half-open probe; the fault schedule
	// is exhausted, so it succeeds and closes the breaker.
	if _, err := sys.Query(serveJoinSQL, AlgorithmELS); err != nil {
		t.Fatalf("probe failed: %v", err)
	}
	st = sys.RobustnessStats()
	if st.BreakerState != "closed" || st.BreakerProbes != 1 || st.BreakerRejections != 1 {
		t.Fatalf("stats after probe %+v", st)
	}
}
