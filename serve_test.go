package els

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cardest"
	"repro/internal/executor"
	"repro/internal/faultinject"
)

func testServeSystem(t *testing.T) *System {
	t.Helper()
	sys := New()
	mkRows := func(n, dom int) [][]int64 {
		rows := make([][]int64, n)
		for i := range rows {
			rows[i] = []int64{int64(i % dom), int64(i % 7)}
		}
		return rows
	}
	if err := sys.LoadTable("R", []string{"a", "b"}, mkRows(200, 10)); err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadTable("S", []string{"a", "c"}, mkRows(300, 10)); err != nil {
		t.Fatal(err)
	}
	return sys
}

const serveJoinSQL = "SELECT COUNT(*) FROM R, S WHERE R.a = S.a AND R.b < 5"

// Every query pins the catalog version current at admission, and the
// version is surfaced through Estimate.CatalogVersion and Explain.
func TestQueriesPinCatalogVersion(t *testing.T) {
	sys := New()
	sys.MustDeclareStats("V", 100, map[string]float64{"x": 10})
	v := sys.CatalogVersion()
	est, err := sys.Estimate("SELECT COUNT(*) FROM V", AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if est.CatalogVersion != v {
		t.Fatalf("estimate pinned version %d, current is %d", est.CatalogVersion, v)
	}
	if est.FinalSize != 100 {
		t.Fatalf("estimate %g, want 100", est.FinalSize)
	}
	// Mutating publishes a new version; new estimates see it.
	sys.MustDeclareStats("V", 500, map[string]float64{"x": 10})
	if got := sys.CatalogVersion(); got != v+1 {
		t.Fatalf("version %d after mutation, want %d", got, v+1)
	}
	est2, err := sys.Estimate("SELECT COUNT(*) FROM V", AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if est2.CatalogVersion != v+1 || est2.FinalSize != 500 {
		t.Fatalf("post-mutation estimate: version %d size %g, want %d/500", est2.CatalogVersion, est2.FinalSize, v+1)
	}
	out, err := sys.Explain("SELECT COUNT(*) FROM V", AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("catalog version: %d", v+1)
	if !strings.Contains(out, want) {
		t.Fatalf("Explain output missing %q:\n%s", want, out)
	}
}

// A failed ImportStats publishes nothing: the catalog version does not
// advance and queries keep estimating against the old statistics.
func TestFailedImportPublishesNothing(t *testing.T) {
	sys := New()
	sys.MustDeclareStats("V", 100, map[string]float64{"x": 10})
	v := sys.CatalogVersion()
	if err := sys.ImportStats(strings.NewReader("{bad")); err == nil {
		t.Fatal("malformed import should error")
	}
	if got := sys.CatalogVersion(); got != v {
		t.Fatalf("failed import advanced version %d -> %d", v, got)
	}
	est, err := sys.Estimate("SELECT COUNT(*) FROM V", AlgorithmELS)
	if err != nil || est.FinalSize != 100 {
		t.Fatalf("estimate after failed import: %v, %v", est, err)
	}
}

// MaxConcurrent=1 serializes queries; a queued query with a QueueTimeout
// sheds with ErrOverloaded and errors.As exposes the OverloadError.
func TestAdmissionShedsUnderLoad(t *testing.T) {
	sys := testServeSystem(t)
	sys.SetLimits(Limits{MaxConcurrent: 1, MaxQueue: 1, QueueTimeout: 10 * time.Millisecond})

	// Occupy the only slot with a query canceled by us later.
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	faultinject.Enable(executor.PointScan, faultinject.Fault{Delay: 300 * time.Millisecond})
	defer faultinject.Reset()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(started)
		_, _ = sys.QueryContext(ctx, serveJoinSQL, AlgorithmELS)
	}()
	<-started
	// Wait for the slot to be taken.
	for sys.RobustnessStats().InFlight == 0 {
		time.Sleep(time.Millisecond)
	}
	_, err := sys.QueryContext(context.Background(), serveJoinSQL, AlgorithmELS)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queued query err = %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "queue timeout" {
		t.Fatalf("err = %v, want queue-timeout OverloadError", err)
	}
	cancel()
	wg.Wait()
	st := sys.RobustnessStats()
	if st.ShedQueueTimeout != 1 || st.InFlight != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.QueueWait <= 0 {
		t.Fatalf("no queue wait recorded: %+v", st)
	}
}

// Close drains gracefully: in-flight queries finish, subsequent queries
// fail fast with ErrClosed, and the catalog becomes read-only.
func TestCloseDrainsSystem(t *testing.T) {
	sys := testServeSystem(t)
	sys.SetLimits(Limits{MaxConcurrent: 4})
	var inFlightErrs atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := sys.Query(serveJoinSQL, AlgorithmELS); err != nil {
				inFlightErrs.Add(1)
			}
		}()
	}
	// Let some queries get admitted, then drain.
	time.Sleep(2 * time.Millisecond)
	if err := sys.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	st := sys.RobustnessStats()
	if st.InFlight != 0 {
		t.Fatalf("in-flight after Close: %+v", st)
	}
	if _, err := sys.Query(serveJoinSQL, AlgorithmELS); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close query err = %v, want ErrClosed", err)
	}
	if err := sys.DeclareStats("T", 10, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close mutation err = %v, want ErrClosed", err)
	}
}

// A straggler that outlives Close's deadline is canceled mid-drain and
// Close still returns with zero in flight.
func TestCloseCancelsStragglerMidDrain(t *testing.T) {
	sys := testServeSystem(t)
	sys.SetLimits(Limits{MaxConcurrent: 2})
	// The straggler: a query slowed by an injected latency fault so it is
	// still running when the drain deadline expires. The executor sleeps
	// the delay interruptibly against the serving context, so the
	// mid-drain cancellation aborts it immediately.
	faultinject.Enable(executor.PointScan, faultinject.Fault{Delay: 2 * time.Second})
	defer faultinject.Reset()
	errCh := make(chan error, 1)
	go func() {
		_, err := sys.QueryContext(context.Background(), serveJoinSQL, AlgorithmELS)
		errCh <- err
	}()
	for sys.RobustnessStats().InFlight == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := sys.Close(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Close took %v; straggler was not canceled", elapsed)
	}
	if st := sys.RobustnessStats(); st.InFlight != 0 {
		t.Fatalf("in-flight after forced drain: %+v", st)
	}
	qerr := <-errCh
	if !errors.Is(qerr, ErrCanceled) {
		t.Fatalf("straggler err = %v, want ErrCanceled", qerr)
	}
}

// The retry policy retries injected internal faults with seeded backoff
// and succeeds once the fault schedule is exhausted.
func TestRetryRecoversFromTransientFaults(t *testing.T) {
	sys := testServeSystem(t)
	sys.SetRetryPolicy(RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Microsecond, Seed: 7})
	faultinject.Enable(cardest.PointNewQuery, faultinject.Fault{
		Err:   fmt.Errorf("%w: injected transient", ErrInternal),
		Times: 2, // first two attempts fail, third succeeds
	})
	defer faultinject.Reset()
	res, err := sys.Query(serveJoinSQL, AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count == 0 {
		t.Fatal("retried query returned no rows")
	}
	st := sys.RobustnessStats()
	if st.Retries != 2 || st.RetrySuccesses != 1 {
		t.Fatalf("stats %+v, want 2 retries, 1 retry success", st)
	}
}

// Retry gives up after MaxAttempts and returns the internal error.
func TestRetryExhaustsAttempts(t *testing.T) {
	sys := testServeSystem(t)
	sys.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Microsecond, Seed: 7})
	faultinject.Enable(cardest.PointNewQuery, faultinject.Fault{
		Err: fmt.Errorf("%w: injected persistent", ErrInternal),
	})
	defer faultinject.Reset()
	_, err := sys.Query(serveJoinSQL, AlgorithmELS)
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	if hits := faultinject.Hits(cardest.PointNewQuery); hits != 3 {
		t.Fatalf("pipeline entered %d times, want 3 (MaxAttempts)", hits)
	}
}

// Panics inside the pipeline are retried too: recovery happens per
// attempt, so a transient panic behaves like a transient error.
func TestRetryRecoversFromTransientPanic(t *testing.T) {
	sys := testServeSystem(t)
	sys.SetRetryPolicy(RetryPolicy{MaxAttempts: 2, BaseDelay: 100 * time.Microsecond, Seed: 3})
	faultinject.Enable(cardest.PointNewQuery, faultinject.Fault{PanicValue: "transient boom", Times: 1})
	defer faultinject.Reset()
	res, err := sys.Query(serveJoinSQL, AlgorithmELS)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count == 0 {
		t.Fatal("no rows after panic retry")
	}
}

// Regression for the probe-leak bug: a probe candidate that passes the
// breaker but is then shed by admission must not strand the breaker with a
// phantom in-flight probe — once capacity frees, the next query probes and
// closes it. (The probe is booked only after a slot is acquired, so a shed
// between the breaker gate and admission leaves the breaker untouched.)
func TestBreakerProbeSurvivesAdmissionShed(t *testing.T) {
	sys := testServeSystem(t)
	sys.SetBreaker(BreakerPolicy{Threshold: 1, Cooldown: time.Millisecond})
	// Two slow occupiers admitted while the breaker is closed.
	faultinject.Enable(executor.PointScan, faultinject.Fault{Delay: 300 * time.Millisecond})
	defer faultinject.Reset()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = sys.QueryContext(ctx, serveJoinSQL, AlgorithmELS)
		}()
	}
	for sys.RobustnessStats().InFlight != 2 {
		time.Sleep(time.Millisecond)
	}
	// Trip the breaker with an injected internal error on a third slot.
	// The query uses a distinct constant so it misses the plan cache (the
	// occupiers warmed serveJoinSQL) and actually reaches the estimator
	// where the fault is injected.
	faultinject.Enable(cardest.PointNewQuery, faultinject.Fault{
		Err: fmt.Errorf("%w: injected", ErrInternal), Times: 1,
	})
	const trippingSQL = "SELECT COUNT(*) FROM R, S WHERE R.a = S.a AND R.b < 4"
	if _, err := sys.Query(trippingSQL, AlgorithmELS); !errors.Is(err, ErrInternal) {
		t.Fatalf("tripping query err = %v, want ErrInternal", err)
	}
	if st := sys.RobustnessStats(); st.BreakerState != "open" {
		t.Fatalf("breaker not open: %+v", st)
	}
	time.Sleep(5 * time.Millisecond) // cooldown over: next query is the probe candidate
	// Saturate admission so the probe candidate is shed after passing the
	// breaker gate.
	sys.SetLimits(Limits{MaxConcurrent: 2, MaxQueue: 1, QueueTimeout: 5 * time.Millisecond})
	_, err := sys.Query(serveJoinSQL, AlgorithmELS)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "queue timeout" {
		t.Fatalf("probe candidate err = %v, want queue-timeout OverloadError (it must pass the breaker and be shed by admission)", err)
	}
	// Free the slots; the next query must still get to probe and close the
	// breaker instead of failing fast forever on a leaked probe.
	cancel()
	wg.Wait()
	faultinject.Reset()
	if _, err := sys.Query(serveJoinSQL, AlgorithmELS); err != nil {
		t.Fatalf("post-shed probe failed: %v", err)
	}
	if st := sys.RobustnessStats(); st.BreakerState != "closed" {
		t.Fatalf("breaker did not recover after a shed probe candidate: %+v", st)
	}
}

// The breaker counts queries, not attempts: a single query whose retries
// all fail internally contributes one failure to the consecutive run, so
// it cannot trip a Threshold > 1 by itself.
func TestBreakerCountsQueriesNotAttempts(t *testing.T) {
	sys := testServeSystem(t)
	sys.SetBreaker(BreakerPolicy{Threshold: 2, Cooldown: time.Minute})
	sys.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Microsecond, Seed: 5})
	faultinject.Enable(cardest.PointNewQuery, faultinject.Fault{
		Err: fmt.Errorf("%w: injected persistent", ErrInternal),
	})
	defer faultinject.Reset()
	if _, err := sys.Query(serveJoinSQL, AlgorithmELS); !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	if st := sys.RobustnessStats(); st.BreakerState != "closed" {
		t.Fatalf("one query's 3 failed attempts tripped Threshold=2: %+v", st)
	}
	if _, err := sys.Query(serveJoinSQL, AlgorithmELS); !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	if st := sys.RobustnessStats(); st.BreakerState != "open" || st.BreakerOpens != 1 {
		t.Fatalf("second failed query must open the breaker: %+v", st)
	}
}

// A probe whose first attempt fails but whose retry succeeds closes the
// breaker: only the query's final outcome is recorded.
func TestBreakerProbeClosesAfterRetrySuccess(t *testing.T) {
	sys := testServeSystem(t)
	sys.SetBreaker(BreakerPolicy{Threshold: 1, Cooldown: time.Millisecond})
	faultinject.Enable(cardest.PointNewQuery, faultinject.Fault{
		Err: fmt.Errorf("%w: injected", ErrInternal), Times: 1,
	})
	if _, err := sys.Query(serveJoinSQL, AlgorithmELS); !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	time.Sleep(5 * time.Millisecond)
	// The probe's first attempt hits a fresh transient fault; its retry
	// succeeds, and that final success must close the breaker.
	sys.SetRetryPolicy(RetryPolicy{MaxAttempts: 2, BaseDelay: 100 * time.Microsecond, Seed: 9})
	faultinject.Enable(cardest.PointNewQuery, faultinject.Fault{
		Err: fmt.Errorf("%w: injected transient", ErrInternal), Times: 1,
	})
	defer faultinject.Reset()
	if _, err := sys.Query(serveJoinSQL, AlgorithmELS); err != nil {
		t.Fatalf("probe with successful retry failed: %v", err)
	}
	if st := sys.RobustnessStats(); st.BreakerState != "closed" {
		t.Fatalf("successful probe retry did not close the breaker: %+v", st)
	}
}

// ExplainDot is governed like every other serve path: cancellation and the
// plan-enumeration budget abort it with typed errors.
func TestExplainDotGoverned(t *testing.T) {
	sys := testServeSystem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.ExplainDotContext(ctx, serveJoinSQL, AlgorithmELS); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled ExplainDot err = %v, want ErrCanceled", err)
	}
	sys.SetLimits(Limits{MaxPlans: 1})
	if _, err := sys.ExplainDot(serveJoinSQL, AlgorithmELS); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("plan-budget ExplainDot err = %v, want ErrBudgetExceeded", err)
	}
}

// The breaker opens after the configured run of internal errors, rejects
// with ErrOverloaded while open, and half-opens to a probe that closes it.
func TestBreakerOpensAndRecovers(t *testing.T) {
	sys := testServeSystem(t)
	sys.SetBreaker(BreakerPolicy{Threshold: 2, Cooldown: 20 * time.Millisecond})
	faultinject.Enable(cardest.PointNewQuery, faultinject.Fault{
		Err: fmt.Errorf("%w: injected", ErrInternal), Times: 2,
	})
	defer faultinject.Reset()
	for i := 0; i < 2; i++ {
		if _, err := sys.Query(serveJoinSQL, AlgorithmELS); !errors.Is(err, ErrInternal) {
			t.Fatalf("query %d err = %v, want ErrInternal", i, err)
		}
	}
	st := sys.RobustnessStats()
	if st.BreakerState != "open" || st.BreakerOpens != 1 {
		t.Fatalf("stats %+v, want open breaker", st)
	}
	if _, err := sys.Query(serveJoinSQL, AlgorithmELS); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("open-breaker query err = %v, want ErrOverloaded", err)
	}
	time.Sleep(25 * time.Millisecond)
	// Cooldown over: this query is the half-open probe; the fault schedule
	// is exhausted, so it succeeds and closes the breaker.
	if _, err := sys.Query(serveJoinSQL, AlgorithmELS); err != nil {
		t.Fatalf("probe failed: %v", err)
	}
	st = sys.RobustnessStats()
	if st.BreakerState != "closed" || st.BreakerProbes != 1 || st.BreakerRejections != 1 {
		t.Fatalf("stats after probe %+v", st)
	}
}
