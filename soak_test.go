package els_test

import (
	"os"
	"runtime"
	"testing"
	"time"

	els "repro"
	"repro/internal/chaos"
)

// chaosLog opens the event-log sink named by the CHAOS_LOG environment
// variable (the artifact CI uploads), or returns nil for no logging. The
// file is opened in append mode so every soak test in the run contributes
// to one log.
func chaosLog(t *testing.T) *os.File {
	path := os.Getenv("CHAOS_LOG")
	if path == "" {
		return nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("CHAOS_LOG: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// goroutineCount waits for the runtime's goroutine count to settle and
// returns it, so storms that finished a moment ago don't read as leaks.
func goroutineCount() int {
	n := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		time.Sleep(10 * time.Millisecond)
		m := runtime.NumGoroutine()
		if m >= n {
			return m
		}
		n = m
	}
	return n
}

// TestChaosSoak storms the serving layer — concurrent workers, catalog
// mutation, and fault injection (errors, panics, latency) — and asserts
// the audited contracts: taxonomy-complete errors, version-consistent
// estimates, a clean drain, and no goroutine leaks. Run with -race in CI.
func TestChaosSoak(t *testing.T) {
	cfg := chaos.Config{
		Seed:         42,
		Workers:      8,
		OpsPerWorker: 60,
		Retry:        els.RetryPolicy{MaxAttempts: 3, BaseDelay: 200 * time.Microsecond, Seed: 42},
	}
	if testing.Short() {
		cfg.Workers = 4
		cfg.OpsPerWorker = 25
	}
	var logF *os.File
	if logF = chaosLog(t); logF != nil {
		cfg.LogW = logF
	}

	before := goroutineCount()
	rep, err := chaos.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Ops != cfg.Workers*cfg.OpsPerWorker {
		t.Errorf("ops %d, want %d", rep.Ops, cfg.Workers*cfg.OpsPerWorker)
	}
	if rep.Succeeded == 0 {
		t.Error("no operation succeeded — the storm drowned the system")
	}
	if rep.Observations == 0 {
		t.Error("no version-consistency observations collected")
	}
	if rep.VersionsPublished < 2 {
		t.Errorf("mutator published only %d versions", rep.VersionsPublished)
	}
	t.Logf("storm: %d ops, %d ok, %d versions, %d observations, errors %v",
		rep.Ops, rep.Succeeded, rep.VersionsPublished, rep.Observations, rep.ErrorsByClass)

	if after := goroutineCount(); after > before {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutine leak: %d before storm, %d after\n%s",
			before, after, buf[:runtime.Stack(buf, true)])
	}
}

// TestChaosCacheSoak storms the plan cache: workers re-issue a Zipf-skewed
// statement pool while the mutator publishes catalog versions mid-flight.
// The torn-read audit proves no query was ever served a plan or estimate
// from a version other than its pinned Estimate.CatalogVersion, and the
// quiesced warm-path audit proves repeats actually hit the cache with
// bit-identical estimates.
func TestChaosCacheSoak(t *testing.T) {
	cfg := chaos.Config{
		Seed:         19,
		Workers:      8,
		OpsPerWorker: 80,
	}
	if testing.Short() {
		cfg.Workers = 4
		cfg.OpsPerWorker = 30
	}
	if logF := chaosLog(t); logF != nil {
		cfg.LogW = logF
	}
	rep, err := chaos.RunCacheSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Succeeded == 0 {
		t.Error("no operation succeeded")
	}
	if rep.Observations == 0 {
		t.Error("no version-consistency observations collected")
	}
	if rep.VersionsPublished < 2 {
		t.Errorf("mutator published only %d versions", rep.VersionsPublished)
	}
	if rep.Cache.Hits == 0 {
		t.Error("storm produced no cache hits despite a repeated workload")
	}
	if rep.Cache.Invalidations == 0 {
		t.Error("version bumps retired no cache entries")
	}
	t.Logf("cache storm: %d ops, %d ok, %d versions, cache %+v",
		rep.Ops, rep.Succeeded, rep.VersionsPublished, rep.Cache)
}

// TestChaosSoakWithBreaker repeats the storm with the circuit breaker
// armed: injected internal-error bursts trip it, and shed queries must
// still classify as overloaded — never as unclassified leaks.
func TestChaosSoakWithBreaker(t *testing.T) {
	cfg := chaos.Config{
		Seed:         7,
		Workers:      6,
		OpsPerWorker: 40,
		Breaker:      els.BreakerPolicy{Threshold: 2, Cooldown: 2 * time.Millisecond},
	}
	if testing.Short() {
		cfg.Workers = 3
		cfg.OpsPerWorker = 20
	}
	rep, err := chaos.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Succeeded == 0 {
		t.Error("no operation succeeded")
	}
	t.Logf("storm: %d ops, %d ok, errors %v, breaker opens %d",
		rep.Ops, rep.Succeeded, rep.ErrorsByClass, rep.Stats.BreakerOpens)
}
