package els_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/chaos"
)

// TestChaosMemoryPressure is the memory-governance soak: three durable
// tenants share one wire server and one process-wide memory pool; the
// hog tenant hammers an oversized join under a per-query byte budget far
// below its build side, with a swarm big enough to overflow its pool
// share, while two neighbor tenants run a steady light workload
// throughout. The audits: the hog both sheds (typed, retryable, with a
// Retry-After hint) and spills to disk; every neighbor query succeeds
// with zero pool sheds and zero spills — degradation stays inside the
// hog's bulkhead; the pool returns to zero reservation; and no *.spill
// file survives the drain anywhere under the data root. Run with -race
// in CI; CHAOS_LOG captures the JSONL event log artifact.
func TestChaosMemoryPressure(t *testing.T) {
	cfg := chaos.MemoryConfig{
		Seed:            42,
		DataRoot:        t.TempDir(),
		HogWorkers:      6,
		NeighborWorkers: 2,
		OpsPerWorker:    12,
	}
	if testing.Short() {
		cfg.HogWorkers = 5
		cfg.OpsPerWorker = 8
	}
	if logF := chaosLog(t); logF != nil {
		cfg.LogW = logF
	}

	before := goroutineCount()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := chaos.RunMemoryPressure(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.HogOps == 0 {
		t.Fatal("the hog swarm issued no queries")
	}
	if rep.HogSucceeded == 0 {
		t.Error("no hog query completed — the budget starved the tenant entirely instead of spilling")
	}
	if rep.NeighborOps == 0 {
		t.Fatal("the neighbor swarms issued no queries")
	}
	t.Logf("memory pressure: hog %d ops (%d ok, %d shed, %d spilled); neighbors %d ops, p99 %.1fms",
		rep.HogOps, rep.HogSucceeded, rep.HogShed, rep.HogSpilled,
		rep.NeighborOps, rep.NeighborP99Millis)

	// Let the OS reap closed-connection goroutines before the leak check.
	deadline := time.Now().Add(5 * time.Second)
	for goroutineCount() > before && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if after := goroutineCount(); after > before {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutine leak: %d before storm, %d after\n%s",
			before, after, buf[:runtime.Stack(buf, true)])
	}
}
