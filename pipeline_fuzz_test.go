package els

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// randomWorkload builds a random schema, loads random data, and composes a
// random conjunctive query (chain or star joins, optional range predicate,
// optional OR-group, optional GROUP BY) against it.
type randomWorkload struct {
	sys    *System
	sql    string
	hasAgg bool
}

func buildRandomWorkload(t *testing.T, rng *rand.Rand) randomWorkload {
	t.Helper()
	sys := New()
	n := 1 + rng.Intn(3)
	domain := 5 + rng.Intn(20)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("W%d", i)
		rows := make([][]int64, 15+rng.Intn(80))
		for r := range rows {
			rows[r] = []int64{int64(rng.Intn(domain)), int64(rng.Intn(50))}
		}
		if err := sys.LoadTable(names[i], []string{"k", "v"}, rows); err != nil {
			t.Fatal(err)
		}
		if rng.Intn(3) == 0 {
			if err := sys.BuildIndex(names[i], "k"); err != nil {
				t.Fatal(err)
			}
		}
	}
	from := names[0]
	where := ""
	star := rng.Intn(2) == 0
	for i := 1; i < n; i++ {
		from += ", " + names[i]
		anchor := names[0]
		if !star {
			anchor = names[i-1]
		}
		if where != "" {
			where += " AND "
		}
		where += fmt.Sprintf("%s.k = %s.k", names[i], anchor)
	}
	if rng.Intn(2) == 0 {
		if where != "" {
			where += " AND "
		}
		where += fmt.Sprintf("%s.v < %d", names[rng.Intn(n)], rng.Intn(60))
	}
	if rng.Intn(3) == 0 {
		victim := names[rng.Intn(n)]
		if where != "" {
			where += " AND "
		}
		where += fmt.Sprintf("(%s.v = %d OR %s.v = %d)", victim, rng.Intn(50), victim, rng.Intn(50))
	}
	hasAgg := false
	sel := "COUNT(*)"
	groupBy := ""
	if rng.Intn(3) == 0 {
		hasAgg = true
		g := names[rng.Intn(n)]
		sel = fmt.Sprintf("%s.k, COUNT(*), SUM(%s.v)", g, names[0])
		groupBy = fmt.Sprintf(" GROUP BY %s.k", g)
	}
	sql := "SELECT " + sel + " FROM " + from
	if where != "" {
		sql += " WHERE " + where
	}
	sql += groupBy
	return randomWorkload{sys: sys, sql: sql, hasAgg: hasAgg}
}

// The whole pipeline under fuzz: every estimation algorithm must plan and
// execute every random query to the same result, estimates must be finite
// and non-negative, and EXPLAIN ANALYZE roots must match the pre-aggregation
// output.
func TestPipelineFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 40; trial++ {
		w := buildRandomWorkload(t, rng)
		var baseline int64 = -1
		for _, algo := range []Algorithm{AlgorithmELS, AlgorithmSM, AlgorithmSMPTC, AlgorithmSSS, AlgorithmELSHist} {
			res, err := w.sys.Query(w.sql, algo)
			if err != nil {
				t.Fatalf("trial %d algo %s sql %q: %v", trial, algo, w.sql, err)
			}
			if baseline < 0 {
				baseline = res.Count
			} else if res.Count != baseline {
				t.Fatalf("trial %d: %s counted %d, baseline %d (sql %q)",
					trial, algo, res.Count, baseline, w.sql)
			}
			est := res.Estimate.FinalSize
			if est < 0 || math.IsNaN(est) || math.IsInf(est, 0) {
				t.Fatalf("trial %d: bad estimate %g (sql %q)", trial, est, w.sql)
			}
			if len(res.Nodes) == 0 {
				t.Fatalf("trial %d: missing node stats", trial)
			}
			if !w.hasAgg && res.Nodes[0].ActualRows != res.Count {
				t.Fatalf("trial %d: root actual %d != count %d", trial, res.Nodes[0].ActualRows, res.Count)
			}
			if w.hasAgg && res.Count > 0 && len(res.Rows) == 0 {
				t.Fatalf("trial %d: aggregate produced no rows (count %d)", trial, res.Count)
			}
		}
	}
}

// Estimation-only fuzz over declared statistics: estimates never crash and
// LS stays order-independent.
func TestEstimateFuzzDeclaredStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		sys := New()
		n := 2 + rng.Intn(3)
		names := make([]string, n)
		from := ""
		where := ""
		for i := 0; i < n; i++ {
			names[i] = fmt.Sprintf("S%d", i)
			card := float64(1 + rng.Intn(100000))
			d := float64(1 + rng.Intn(int(card)))
			sys.MustDeclareStats(names[i], card, map[string]float64{"k": d})
			if i > 0 {
				from += ", "
				if where != "" {
					where += " AND "
				}
				where += fmt.Sprintf("%s.k = %s.k", names[i], names[i-1])
			}
			from += names[i]
		}
		sql := "SELECT COUNT(*) FROM " + from + " WHERE " + where
		ref := -1.0
		for rep := 0; rep < 3; rep++ {
			order := make([]string, n)
			for i, p := range rng.Perm(n) {
				order[i] = names[p]
			}
			est, err := sys.EstimateOrder(sql, AlgorithmELS, order)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if ref < 0 {
				ref = est.FinalSize
			} else if math.Abs(est.FinalSize-ref) > 1e-6*math.Max(1, ref) {
				t.Fatalf("trial %d: ELS order-dependent: %g vs %g", trial, est.FinalSize, ref)
			}
		}
	}
}
