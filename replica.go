package els

import (
	"context"
	"encoding/hex"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/catalog"
	"repro/internal/durable"
	"repro/internal/replica"
	"repro/internal/snapshot"
)

// Replica is a read-only follower of a durable primary (els.Open): the
// primary ships every acknowledged catalog mutation to it as a
// checksummed, digest-certified WAL frame, and the replica replays frames
// into its own durable store and copy-on-write snapshot catalog, serving
// Estimate/Explain from whatever version it has reached.
//
// The staleness contract: every result carries the pinned catalog version
// and a ReplicaLag (how many versions the pinned snapshot trailed the
// primary), and when Limits.MaxReplicaLag is set, a read on a replica
// lagging further is rejected with ErrStaleReplica before estimation
// starts — callers get a typed signal to retry (replicas catch up) or
// fail over to the primary. With a retry policy installed, stale reads
// retry automatically, re-pinning the freshest replayed version each
// attempt.
//
// The divergence contract: after every replayed delta the replica's
// catalog is digest-audited against the primary's at the same version; a
// mismatch quarantines the replica with ErrDiverged — every read fails
// typed — until the primary re-attaches it and re-certifies it from a
// full catalog frame.
//
// A replica recovers exactly like a primary: OpenReplica replays its
// checkpoint + WAL (torn-tail truncation, stale-record skip included) and
// resumes tailing from its last applied version when re-attached.
type Replica struct {
	//lockorder:level 26
	mu       sync.Mutex
	sys      *System
	fol      *replica.Follower
	id       string
	attached *System // the primary currently shipping to this replica
	promoted bool
}

// OpenReplica recovers (or initializes) a follower's durable catalog
// directory, exactly as els.Open recovers a primary's, and returns a
// Replica serving read-only estimation at the recovered version. It
// serves — ever more stale — even before it is attached to a primary with
// System.AttachReplica.
func OpenReplica(dir string) (*Replica, error) {
	id := filepath.Base(filepath.Clean(dir))
	d, err := durable.OpenScoped(dir, "replica:"+id+":")
	if err != nil {
		return nil, err
	}
	store := snapshot.NewStoreAt(d.Catalog(), d.Version())
	store.SetDurability(d)
	fol := replica.NewFollower(id, d, store)
	sys := &System{
		store:   store,
		adm:     admission.New(admission.Config{}),
		breaker: admission.NewBreaker(admission.BreakerConfig{}),
		dur:     d,
		fol:     fol,
	}
	sys.initCache()
	return &Replica{sys: sys, fol: fol, id: id}, nil
}

// ID returns the replica's identifier: its data directory base name.
func (r *Replica) ID() string { return r.id }

// serving returns the inner system while the replica is still a replica.
func (r *Replica) serving() (*System, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.promoted {
		return nil, fmt.Errorf("%w: replica %s was promoted; use the promoted System", ErrClosed, r.id)
	}
	return r.sys, nil
}

// Estimate is EstimateContext with a background context.
func (r *Replica) Estimate(sql string, algo Algorithm) (*Estimate, error) {
	return r.EstimateContext(context.Background(), sql, algo) //ctxflow:allow context-less compatibility wrapper
}

// EstimateContext estimates against the replica's current replayed
// catalog version, with the same governance, admission control, and typed
// errors as the primary's EstimateContext. Results are stamped with
// Replica=true and the ReplicaLag of the pinned version; a read beyond
// Limits.MaxReplicaLag fails with ErrStaleReplica, and a quarantined
// replica fails with ErrDiverged.
func (r *Replica) EstimateContext(ctx context.Context, sql string, algo Algorithm) (*Estimate, error) {
	sys, err := r.serving()
	if err != nil {
		return nil, err
	}
	est, err := sys.EstimateContext(ctx, sql, algo)
	if err != nil {
		return nil, err
	}
	r.stamp(est)
	return est, nil
}

// Explain is ExplainContext with a background context.
func (r *Replica) Explain(sql string, algo Algorithm) (string, error) {
	return r.ExplainContext(context.Background(), sql, algo) //ctxflow:allow context-less compatibility wrapper
}

// ExplainContext renders the Explain report from the replica, including
// the pinned catalog version and the replica lag it was served at. The
// staleness and quarantine contracts of EstimateContext apply.
func (r *Replica) ExplainContext(ctx context.Context, sql string, algo Algorithm) (string, error) {
	est, err := r.EstimateContext(ctx, sql, algo)
	if err != nil {
		return "", err
	}
	return formatExplain(est), nil
}

// stamp marks an estimate as replica-served and computes the lag of its
// pinned version against the highest primary version announced.
func (r *Replica) stamp(est *Estimate) {
	est.Replica = true
	if known := r.fol.Known(); known > est.CatalogVersion {
		est.ReplicaLag = known - est.CatalogVersion
	}
}

// SetLimits installs the replica's serving limits; MaxReplicaLag is the
// replication-specific knob (see Limits).
func (r *Replica) SetLimits(l Limits) { r.sys.SetLimits(l) }

// Limits returns the replica's current limits.
func (r *Replica) Limits() Limits { return r.sys.Limits() }

// SetRetryPolicy installs the replica's retry policy. Stale reads
// (ErrStaleReplica) are retryable: each retry re-pins the freshest
// replayed catalog version, so a briefly-lagging replica serves after a
// backoff instead of failing.
func (r *Replica) SetRetryPolicy(p RetryPolicy) { r.sys.SetRetryPolicy(p) }

// CatalogVersion returns the replica's current applied catalog version.
func (r *Replica) CatalogVersion() uint64 { return r.fol.Version() }

// Lag returns how many versions the replica currently trails the highest
// announced primary version.
func (r *Replica) Lag() uint64 { return r.fol.Lag() }

// Quarantined returns the replica's sticky divergence error (matching
// ErrDiverged), or nil while it is a certified copy of the primary.
func (r *Replica) Quarantined() error { return r.fol.Quarantined() }

// Status snapshots the replica's replication counters.
func (r *Replica) Status() ReplicaStats { return r.fol.Stats() }

// DurabilityStats snapshots the replica's own durable store (it has a
// WAL and checkpoints exactly like a primary).
func (r *Replica) DurabilityStats() DurabilityStats { return r.sys.DurabilityStats() }

// RobustnessStats snapshots the replica's serving-layer counters.
func (r *Replica) RobustnessStats() RobustnessStats { return r.sys.RobustnessStats() }

// Close detaches the replica from its primary (if attached) and drains
// its serving layer; the replica's durable state remains on disk for a
// later OpenReplica.
func (r *Replica) Close(ctx context.Context) error {
	r.mu.Lock()
	primary := r.attached
	r.attached = nil
	promoted := r.promoted
	r.mu.Unlock()
	if primary != nil {
		primary.DetachReplica(r)
	}
	if promoted {
		return nil // the promoted System owns the serving layer now
	}
	return r.sys.Close(ctx)
}

// Promote converts the replica into a standalone primary at its current
// version and returns the now-writable System: the replica is detached
// from its old primary, stops being lag-checked, and subsequent catalog
// mutations append to its own WAL from the version it had reached —
// failover. A quarantined replica refuses to promote (its state is
// provably not the primary's); resync it first by re-attaching. After
// Promote the Replica handle is dead: its read methods fail with
// ErrClosed.
func (r *Replica) Promote() (*System, error) {
	r.mu.Lock()
	if r.promoted {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: replica %s already promoted", ErrClosed, r.id)
	}
	if q := r.fol.Quarantined(); q != nil {
		r.mu.Unlock()
		return nil, fmt.Errorf("els: refusing to promote replica %s: %w", r.id, q)
	}
	primary := r.attached
	r.attached = nil
	r.promoted = true
	r.mu.Unlock()
	// Detach outside r.mu: DetachReplica re-takes it to clear r.attached.
	if primary != nil {
		primary.DetachReplica(r)
	}
	r.sys.promoted.Store(true) // lifts the per-read replica gate
	return r.sys, nil
}

// ReplicaStats is a point-in-time snapshot of one follower's replication
// state: applied/known versions, lag, frame and read counters, and the
// quarantine/down flags.
type ReplicaStats = replica.FollowerStats

// ReplicationStats is a point-in-time snapshot of a primary's shipping
// layer: per-follower state plus the shipper's frame, resync, and drop
// counters. The zero value is returned by a system with no replicas
// attached.
type ReplicationStats struct {
	// Followers lists every attached follower in sorted-id order.
	Followers []ReplicaStats
	// FramesShipped counts delta frames delivered to and applied by
	// followers; Resyncs counts full-catalog resynchronizations.
	FramesShipped, Resyncs uint64
	// QueueDrops counts frames dropped on a follower's full queue;
	// LinkDrops counts frames lost to injected link faults. Both are
	// self-healing (gap detection triggers a resync).
	QueueDrops, LinkDrops uint64
}

// CatalogDigest returns the version and hex SHA-256 digest of the
// system's current published catalog — the self-certifying identity
// replication ships with every frame and audits compare across primary
// and replicas: two systems whose digests agree at a version hold
// byte-identical statistics and produce bit-identical estimates.
func (s *System) CatalogDigest() (uint64, string, error) {
	snap := s.store.Current()
	d, err := replica.CatalogDigest(snap.Catalog(), snap.Version())
	if err != nil {
		return 0, "", fmt.Errorf("%w: digesting catalog at version %d: %w", ErrInternal, snap.Version(), err)
	}
	return snap.Version(), hex.EncodeToString(d[:]), nil
}

// CatalogDigest returns the replica's current version and catalog digest.
func (r *Replica) CatalogDigest() (uint64, string, error) { return r.sys.CatalogDigest() }

// AttachReplica starts shipping this primary's acknowledged mutations to
// r: the replica is first resynchronized to the primary's current catalog
// (a digest-certified full frame) and then tails every subsequent WAL
// record. Re-attaching a quarantined replica is the explicit heal path —
// it lifts the quarantine by re-certifying the replica from a full frame.
// Only a durable primary (els.Open) can ship, and replicas cannot cascade.
func (s *System) AttachReplica(r *Replica) error {
	if s.dur == nil {
		return fmt.Errorf("%w: replication requires a durable primary (use els.Open)", ErrDurability)
	}
	if s.fol != nil && !s.promoted.Load() {
		return fmt.Errorf("%w: a replica cannot ship to followers (promote it first)", ErrDurability)
	}
	r.mu.Lock()
	if r.promoted {
		r.mu.Unlock()
		return fmt.Errorf("%w: replica %s was promoted and cannot re-attach", ErrClosed, r.id)
	}
	r.attached = s
	r.mu.Unlock()

	s.shipMu.Lock()
	// The closing check lives under shipMu so it orders against Close's
	// shipper teardown: an attach that observes closing fails fast with
	// the typed drain error; one that raced just ahead of Close installs
	// its shipper before the teardown acquires shipMu, so Close still
	// finds and stops it — either way nothing leaks and nothing blocks.
	if s.closing.Load() {
		s.shipMu.Unlock()
		r.mu.Lock()
		if r.attached == s {
			r.attached = nil
		}
		r.mu.Unlock()
		return fmt.Errorf("%w: draining, not attaching replicas", ErrClosed)
	}
	if s.shipper == nil {
		s.shipper = replica.NewShipper(func() (*catalog.Catalog, uint64) {
			snap := s.store.Current()
			return snap.Catalog(), snap.Version()
		})
		s.dur.SetSink(s.shipper)
	}
	sh := s.shipper
	s.shipMu.Unlock()
	return sh.Attach(r.fol)
}

// DetachReplica stops shipping to r. The replica keeps serving at the
// version it reached, growing ever more stale (its lag keeps counting
// against the last announced primary version).
func (s *System) DetachReplica(r *Replica) {
	s.shipMu.Lock()
	sh := s.shipper
	s.shipMu.Unlock()
	if sh != nil {
		sh.Detach(r.id)
	}
	r.mu.Lock()
	if r.attached == s {
		r.attached = nil
	}
	r.mu.Unlock()
}

// ReplicationStats snapshots the primary's shipping layer.
func (s *System) ReplicationStats() ReplicationStats {
	s.shipMu.Lock()
	sh := s.shipper
	s.shipMu.Unlock()
	if sh == nil {
		return ReplicationStats{}
	}
	st := sh.Stats()
	return ReplicationStats{
		Followers:     st.Followers,
		FramesShipped: st.FramesShipped,
		Resyncs:       st.Resyncs,
		QueueDrops:    st.QueueDrops,
		LinkDrops:     st.LinkDrops,
	}
}

// WaitForReplicas blocks until every live attached follower (not
// quarantined, not down) has applied the primary's current catalog
// version, nudging stragglers to resync, or until ctx dies (ErrCanceled).
// It is the catch-up barrier benchmarks and tests use; steady-state
// replication does not need it.
func (s *System) WaitForReplicas(ctx context.Context) error {
	s.shipMu.Lock()
	sh := s.shipper
	s.shipMu.Unlock()
	if sh == nil {
		return nil
	}
	for {
		target := s.store.Version()
		caught := true
		for _, f := range sh.Stats().Followers {
			if f.Quarantined || f.Down {
				continue
			}
			if f.Version < target {
				caught = false
				break
			}
		}
		if caught {
			return nil
		}
		sh.Nudge()
		t := time.NewTimer(2 * time.Millisecond)
		select {
		case <-ctx.Done():
			t.Stop()
			return fmt.Errorf("%w: waiting for replicas: %w", ErrCanceled, ctx.Err())
		case <-t.C:
		}
	}
}
