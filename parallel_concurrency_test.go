package els

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/executor"
	"repro/internal/faultinject"
)

// parallelSystem builds a system whose tables are big enough that every
// scan and join crosses the executor's parallel-chunk threshold, with
// limits requesting 4 workers.
func parallelSystem(t *testing.T) *System {
	t.Helper()
	sys := New()
	for i, name := range []string{"A", "B", "C"} {
		if err := sys.GenerateTable(name, "k", "uniform", 400, 20, 0, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	sys.SetLimits(Limits{Workers: 4})
	return sys
}

const parallelSQL = "SELECT COUNT(*) FROM A, B, C WHERE A.k = B.k AND B.k = C.k"

// crossSQL has no join predicate, so the optimizer's only applicable
// method is nested loops — the plan that drives the parallel join chunks
// (the chain query above plans as serial sort-merge under the paper
// repertoire).
const crossSQL = "SELECT COUNT(*) FROM A, B"

// Cancelling from another goroutine while worker goroutines are inside a
// parallel join must end the query with a clean typed ErrCanceled: the
// workers poll the shared governor, the pool stops dispatch, and Execute
// returns after every worker exits.
func TestParallelCancelMidJoin(t *testing.T) {
	sys := New()
	// Single-valued join columns: the query is a 120³ cross product, so
	// there is ample runway for the cancel to land mid-join.
	for _, name := range []string{"X", "Y", "Z"} {
		if err := sys.GenerateTable(name, "k", "uniform", 120, 1, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	sys.SetLimits(Limits{Workers: 4})
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	_, err := sys.QueryContext(ctx, "SELECT COUNT(*) FROM X, Y, Z WHERE X.k = Y.k AND Y.k = Z.k", AlgorithmELS)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

// A panic injected inside a parallel worker goroutine must cross the pool
// (captured in the worker, re-raised on the caller) and surface as the
// public API's typed ErrInternal — not kill the process.
func TestParallelWorkerPanicBecomesErrInternal(t *testing.T) {
	sys := parallelSystem(t)
	faultinject.Enable(executor.PointJoinChunk, faultinject.Fault{PanicValue: "worker blew up", Times: 1})
	defer faultinject.Reset()
	_, err := sys.Query(crossSQL, AlgorithmELS)
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("want ErrInternal from a worker panic, got %v", err)
	}
	// The system stays usable afterwards.
	if _, err := sys.Query(crossSQL, AlgorithmELS); err != nil {
		t.Fatalf("query after worker panic: %v", err)
	}
}

// Errors injected at the parallel chunk probes (inside worker goroutines)
// must propagate as clean failures through the public API.
func TestParallelWorkerFaultPropagates(t *testing.T) {
	sys := parallelSystem(t)
	for _, tc := range []struct {
		point string
		sql   string
	}{
		{executor.PointScanChunk, parallelSQL},
		{executor.PointJoinChunk, crossSQL},
	} {
		boom := errors.New("injected: " + tc.point)
		faultinject.Enable(tc.point, faultinject.Fault{Err: boom, Times: 1})
		_, err := sys.Query(tc.sql, AlgorithmELS)
		faultinject.Reset()
		if !errors.Is(err, boom) {
			t.Fatalf("point %s: want injected error, got %v", tc.point, err)
		}
	}
}

// The goroutine-leak fence: after a storm of parallel queries — successes,
// cancellations, budget trips, injected faults, injected panics — the
// process must return to its baseline goroutine count. A worker leaked by
// any abort path would hold the count up.
func TestParallelNoGoroutineLeaks(t *testing.T) {
	sys := parallelSystem(t)
	// Warm up once so lazily started runtime goroutines don't count as leaks.
	if _, err := sys.Query(parallelSQL, AlgorithmELS); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 3 {
			case 0: // success
				if _, err := sys.Query(parallelSQL, AlgorithmELS); err != nil {
					t.Errorf("query %d: %v", i, err)
				}
			case 1: // immediate cancellation
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				if _, err := sys.QueryContext(ctx, parallelSQL, AlgorithmELS); !errors.Is(err, ErrCanceled) {
					t.Errorf("query %d: want ErrCanceled, got %v", i, err)
				}
			case 2: // tuple budget trip inside the parallel operators
				gsys := parallelSystem(t)
				gsys.SetLimits(Limits{Workers: 4, MaxTuples: 50})
				if _, err := gsys.Query(parallelSQL, AlgorithmELS); !errors.Is(err, ErrBudgetExceeded) {
					t.Errorf("query %d: want ErrBudgetExceeded, got %v", i, err)
				}
			}
		}(i)
	}
	wg.Wait()

	// Injected fault and panic, serially, for the abort paths not covered
	// above.
	faultinject.Enable(executor.PointJoinChunk, faultinject.Fault{Err: fmt.Errorf("fence fault"), Times: 1})
	sys.Query(parallelSQL, AlgorithmELS)
	faultinject.Reset()
	faultinject.Enable(executor.PointScanChunk, faultinject.Fault{PanicValue: "fence panic", Times: 1})
	sys.Query(parallelSQL, AlgorithmELS)
	faultinject.Reset()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		runtime.Gosched()
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d before, %d after storm", before, runtime.NumGoroutine())
}
