package els_test

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	els "repro"
)

// TestCloseAttachCheckpointRace is the regression test for the drain
// races: Close(ctx) racing concurrent AttachReplica and Checkpoint calls
// must neither block nor leak — every racer returns promptly, and a racer
// that loses to the drain gets a typed closing (or durability-frozen)
// error, never a raw one. Run with -race: the bug class here is lock
// ordering between Close's teardown and the attach/checkpoint paths.
func TestCloseAttachCheckpointRace(t *testing.T) {
	for round := 0; round < 10; round++ {
		round := round
		t.Run(fmt.Sprintf("round%d", round), func(t *testing.T) {
			root := t.TempDir()
			sys, err := els.Open(filepath.Join(root, "primary"))
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.DeclareStats("T", 1000, map[string]float64{"a": 10}); err != nil {
				t.Fatal(err)
			}

			var wg sync.WaitGroup
			start := make(chan struct{})
			errCh := make(chan error, 32)

			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				errCh <- sys.Close(ctx)
			}()
			for i := 0; i < 4; i++ {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					rep, err := els.OpenReplica(filepath.Join(root, fmt.Sprintf("r%d-%d", round, i)))
					if err != nil {
						errCh <- err
						return
					}
					<-start
					errCh <- sys.AttachReplica(rep)
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					defer cancel()
					rep.Close(ctx)
				}()
			}
			for i := 0; i < 4; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					<-start
					errCh <- sys.Checkpoint()
				}()
			}

			close(start)
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("Close vs AttachReplica/Checkpoint deadlocked")
			}
			close(errCh)
			for err := range errCh {
				if err == nil {
					continue // the racer won against the drain
				}
				// Losing the race must yield the typed closing error — or
				// the durable store's own typed rejection when the call
				// slipped past the gate into a closed store.
				if !errors.Is(err, els.ErrClosed) && !errors.Is(err, els.ErrDurability) {
					t.Errorf("racer got untyped error %v", err)
				}
			}

			// Close is idempotent, and everything after it stays typed.
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			if err := sys.Close(ctx); err != nil {
				t.Errorf("second Close: %v", err)
			}
			if err := sys.Checkpoint(); !errors.Is(err, els.ErrClosed) && !errors.Is(err, els.ErrDurability) {
				t.Errorf("Checkpoint after Close = %v, want a typed closing error", err)
			}
		})
	}
}
