package els

import "repro/internal/plancache"

// CacheStats is a point-in-time snapshot of the plan/estimate cache:
// hit/miss/eviction/invalidation counters and current occupancy. The
// cache is keyed by (canonical normalized query, algorithm, catalog
// version) — see the "Columnar execution & plan cache" section of the
// README — so semantically identical query texts (whitespace, predicate
// order, alias case) share one entry, and no entry can ever be served
// against a catalog version other than the one it was planned on.
type CacheStats = plancache.Stats

// CacheStats snapshots the system's plan-cache counters. Every Estimate,
// EstimateOrder, Explain, ExplainDot, and Query consults the cache unless
// Limits.DisableCache is set; capacity follows Limits.PlanCacheSize
// (0 selects the default).
func (s *System) CacheStats() CacheStats {
	if s.cache == nil {
		return CacheStats{}
	}
	return s.cache.Stats()
}

// CacheStats snapshots the replica's plan-cache counters. A replica
// caches like a primary: every replayed frame publishes a new catalog
// version, which retires cached plans from older versions exactly as a
// local mutation would on the primary.
func (r *Replica) CacheStats() CacheStats { return r.sys.CacheStats() }
